"""Partitioned embedding tables: entity parameters in P independently paged buckets.

The scale ceiling after out-of-core *data* (PR 4) is the dense entity table:
every trainer replica and the serving engine still materialised all
``(n_entities, d)`` rows.  :class:`PartitionedEmbedding` removes that ceiling
by range-partitioning the entity rows into ``P`` buckets, each backed by its
own ``entities.bucket<k>.npy`` file:

* a bucket is **faulted in** (one ``np.load``) the first time anything touches
  its rows and **evicted** (one ``np.save`` write-back when dirty) once the
  LRU-bounded resident set overflows ``max_resident`` buckets — peak RAM is
  ``max_resident`` bucket slabs, never the full table;
* each bucket is its own :class:`BucketParameter`, so row-sparse gradients,
  optimiser state (Adam/Adagrad moment slabs), and the multiprocess trainer's
  gradient exchange are all naturally bucket-granular: optimiser state pages
  out *with* its bucket (see :meth:`attach_optimizer`), and untouched buckets
  contribute nothing to the DDP wire volume;
* relations stay a small always-resident dense parameter.

Initialisation draws the same Xavier stream a
:class:`~repro.nn.embedding.StackedEmbedding` of the stacked ``(N + R, d)``
shape would draw — bucket by bucket, entities first, relations last — so a
partitioned model starts from bit-identical weights and (with the compacted
SpMM scoring path in :class:`~repro.models.transe.SpTransE`) follows the
bit-identical training trajectory of its unpartitioned twin.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import tempfile
import time
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import init
from repro.nn import quantize as quantize_lib
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.nn.table import (
    DEFAULT_BLOCK_ROWS,
    EmbeddingTable,
    block_rows_for,
    renormalize_block_,
)
from repro.partition import EntityPartition
from repro.sparse.rowsparse import RowSparseGrad
from repro.utils.seeding import new_rng

#: Manifest filename written next to the bucket files.
PARTITION_MANIFEST = "partition.json"

#: Current manifest schema version.
PARTITION_MANIFEST_VERSION = 1


def bucket_filename(bucket: int) -> str:
    """On-disk name of entity bucket ``bucket`` (``entities.bucket<k>.npy``)."""
    return f"entities.bucket{int(bucket)}.npy"


class BucketParameter(Parameter):
    """One bucket of entity rows, resident only while its slab is loaded.

    ``.data`` is a faulting property: reading it while the bucket is evicted
    makes the owning :class:`PartitionedEmbedding` load the slab from disk
    (possibly evicting another bucket), so optimizers and autograd code that
    were written for plain dense parameters keep working unchanged.  Shape
    metadata (``shape``/``size``/``nbytes``) is answered without faulting.
    """

    def __init__(self, owner: "PartitionedEmbedding", bucket: int,
                 rows: int, dim: int, name: str) -> None:
        self._owner = owner
        self._bucket = int(bucket)
        self._bucket_shape = (int(rows), int(dim))
        self._slab: Optional[np.ndarray] = None
        super().__init__(np.empty((0, int(dim)), dtype=np.float64),
                         requires_grad=True, name=name)
        self._slab = None  # constructed evicted; the owner faults on demand

    # ``data`` shadows the Tensor slot with a faulting property.
    @property
    def data(self) -> np.ndarray:  # type: ignore[override]
        if self._slab is None:
            self._owner._fault(self._bucket)
        self._owner._touch(self._bucket)
        return self._slab

    @data.setter
    def data(self, value) -> None:
        self._slab = value

    @property
    def resident(self) -> bool:
        """Whether the bucket's slab is currently in memory."""
        return self._slab is not None

    @property
    def bucket(self) -> int:
        return self._bucket

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._bucket_shape

    @property
    def ndim(self) -> int:
        return 2

    @property
    def size(self) -> int:
        return self._bucket_shape[0] * self._bucket_shape[1]

    @property
    def dtype(self):
        return self._owner.slab_dtype

    @property
    def nbytes(self) -> int:
        return self.size * self._owner.slab_dtype.itemsize

    def restore_opt_state(self, optimizer, state: Dict[str, object]) -> None:
        """Hook called by ``Optimizer._param_state`` on first (re-)use.

        Refills ``state`` with this bucket's paged-out buffers, so a bucket
        whose optimiser state was evicted to disk resumes mid-decay instead of
        silently restarting from fresh zeros.
        """
        self._owner._load_optimizer_state(self._bucket, state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "resident" if self.resident else "evicted"
        return (f"BucketParameter(bucket={self._bucket}, "
                f"shape={self._bucket_shape}, {status})")


class PartitionedEmbedding(Module, EmbeddingTable):
    """Entity/relation embeddings with the entity table in ``P`` paged buckets.

    Parameters
    ----------
    n_entities, n_relations, embedding_dim:
        Table geometry (entity rows are partitioned; relations stay dense).
    partitions:
        Number of entity buckets ``P``.
    rng:
        Seed or generator; the draw order matches a
        :class:`~repro.nn.embedding.StackedEmbedding` of the same stacked
        shape bit for bit.
    directory:
        Where the bucket files live; a private temporary directory (removed on
        :meth:`close`) is created when omitted.  Under
        :func:`repro.nn.init.skip_init` no files are created — call
        :meth:`attach_storage` to bind existing bucket files instead.
    max_resident:
        LRU bound on simultaneously resident buckets (``None`` keeps every
        bucket resident once touched).  ``2`` — the default — is exactly what
        the bucket-pair batch schedule needs.
    read_only:
        Serving mode: evictions never write back and mutation raises.
    """

    def __init__(self, n_entities: int, n_relations: int, embedding_dim: int,
                 partitions: int, rng=None, directory: Optional[str] = None,
                 max_resident: Optional[int] = 2, read_only: bool = False) -> None:
        super().__init__()
        if n_entities <= 0 or n_relations <= 0 or embedding_dim <= 0:
            raise ValueError("n_entities, n_relations, and embedding_dim must be positive")
        self.n_entities = int(n_entities)
        self.n_relations = int(n_relations)
        self._embedding_dim = int(embedding_dim)
        self.partition = EntityPartition(self.n_entities, int(partitions))
        if max_resident is None:
            max_resident = self.partition.n_partitions
        if max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.max_resident = int(max_resident)
        self.read_only = bool(read_only)

        self._optimizer = None
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self._dirty: set = set()
        self._attached = False
        self._owns_dir = False
        self._directory: Optional[str] = None
        self._quantized: Optional[str] = None
        self._base_max_resident = self.max_resident
        self._resident_bytes = 0
        self.counters: Dict[str, float] = {
            "faults": 0, "evictions": 0, "writebacks": 0,
            "bytes_loaded": 0, "bytes_written": 0,
            "fault_seconds": 0.0, "writeback_seconds": 0.0,
            "peak_resident": 0, "peak_resident_bytes": 0,
            "exact_row_reads": 0,
        }

        # Relations: small, dense, always resident.
        self.relations = Parameter(np.empty((self.n_relations, self._embedding_dim),
                                            dtype=np.float64),
                                   name="relations")
        # Bucket parameters (attribute registration keeps them in
        # named_parameters for optimizers, digests, and the DDP wire format).
        self._buckets: List[BucketParameter] = []
        for k in range(self.partition.n_partitions):
            param = BucketParameter(self, k, self.partition.bucket_rows(k),
                                    self._embedding_dim, name=f"bucket{k}")
            setattr(self, f"bucket{k}", param)
            self._buckets.append(param)

        if init.skipping_init():
            # Attach-to-existing-storage path: no allocation, no files.
            return
        self._directory = directory if directory is not None else tempfile.mkdtemp(
            prefix="sptransx-partitioned-")
        os.makedirs(self._directory, exist_ok=True)
        self._owns_dir = directory is None
        self._initialize(new_rng(rng))
        self._attached = True

    # ------------------------------------------------------------------ #
    # Construction / storage lifecycle
    # ------------------------------------------------------------------ #
    def _initialize(self, rng: np.random.Generator) -> None:
        """Xavier init drawn in StackedEmbedding order (entities, then relations).

        The bound comes from the *stacked* ``(N + R, d)`` shape and the
        uniform stream is consumed bucket by bucket in row order, so every row
        receives exactly the floats the equivalent
        :class:`~repro.nn.embedding.StackedEmbedding` would give it.
        """
        stacked_rows = self.n_entities + self.n_relations
        bound = math.sqrt(6.0 / (self._embedding_dim + stacked_rows))
        for k, param in enumerate(self._buckets):
            rows = self.partition.bucket_rows(k)
            slab = rng.uniform(-bound, bound, size=(rows, self._embedding_dim))
            np.save(self._bucket_path(k), slab)
        self.relations.data[...] = rng.uniform(
            -bound, bound, size=(self.n_relations, self._embedding_dim))

    def _bucket_path(self, bucket: int) -> str:
        if self._directory is None:
            raise RuntimeError(
                "partitioned embedding has no storage attached; construct it "
                "outside skip_init() or call attach_storage(directory)"
            )
        return os.path.join(self._directory, bucket_filename(bucket))

    def _state_path(self, bucket: int, buffer: str) -> str:
        return self._bucket_path(bucket) + f".state.{buffer}.npy"

    def _state_meta_path(self, bucket: int) -> str:
        return self._bucket_path(bucket) + ".state.json"

    def manifest(self) -> Dict[str, object]:
        """The ``partition.json`` payload describing the bucket layout."""
        return {
            "version": PARTITION_MANIFEST_VERSION,
            "n_entities": self.n_entities,
            "n_relations": self.n_relations,
            "embedding_dim": self._embedding_dim,
            "partitions": self.partition.n_partitions,
            "bucket_size": self.partition.bucket_size,
            "buckets": [
                {"file": bucket_filename(k), "start": lo, "rows": hi - lo}
                for k, (lo, hi) in enumerate(self.partition.ranges())
            ],
            "entity_param_prefix": "bucket",
            "relations_param": "relations",
        }

    def write_manifest(self, directory: Optional[str] = None) -> str:
        """Write ``partition.json`` into ``directory`` (default: own storage)."""
        directory = directory if directory is not None else self._directory
        path = os.path.join(directory, PARTITION_MANIFEST)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.manifest(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def attach_storage(self, directory: str, read_only: bool = True,
                       quantized: Optional[object] = None) -> None:
        """Bind this table to existing bucket files (serving / reload path).

        The directory must carry a compatible ``partition.json``; any resident
        slabs are dropped (not written back) so subsequent faults read the
        attached files.

        ``quantized`` selects which bucket files back the resident set:
        ``None``/``False`` faults the exact float64 buckets; ``"fp16"`` /
        ``"int8"`` faults the quantized twins written by
        :func:`repro.nn.quantize.quantize_weight_files` (raising if the
        manifest carries no matching ``"quantized"`` entry); ``"auto"`` (or
        ``True``) uses the manifest's quantized mode when present and falls
        back to full precision otherwise.  Quantized attachment is serve-only
        (``read_only`` must stay true) and automatically scales
        ``max_resident`` by the mode's compression factor — the memory budget
        buys 2× (int8) / 4× (fp16) more resident buckets.
        """
        manifest_path = os.path.join(directory, PARTITION_MANIFEST)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(
                f"no {PARTITION_MANIFEST} in {directory}; not a partitioned "
                "weights directory"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        for key, expected in (("n_entities", self.n_entities),
                              ("embedding_dim", self._embedding_dim),
                              ("partitions", self.partition.n_partitions)):
            if int(manifest.get(key, -1)) != expected:
                raise ValueError(
                    f"partition manifest mismatch for {key!r}: manifest has "
                    f"{manifest.get(key)!r}, table expects {expected}"
                )
        for entry in manifest["buckets"]:
            path = os.path.join(directory, entry["file"])
            if not os.path.exists(path):
                raise FileNotFoundError(f"bucket file missing: {path}")
        mode = self._resolve_quantized(manifest, quantized)
        if mode is not None:
            if not read_only:
                raise ValueError(
                    "quantized buckets are serve-only; attach_storage with "
                    "read_only=True or use the exact float64 buckets"
                )
            for k in range(self.partition.n_partitions):
                for name in quantize_lib.quantized_filenames(k, mode):
                    path = os.path.join(directory, name)
                    if not os.path.exists(path):
                        raise FileNotFoundError(f"quantized bucket file missing: {path}")
        self._drop_resident()
        if self._owns_dir and self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
        self._directory = directory
        self._owns_dir = False
        self._attached = True
        self.read_only = bool(read_only)
        self._quantized = mode
        if mode is not None:
            self.max_resident = min(
                self.partition.n_partitions,
                self._base_max_resident * quantize_lib.compression_factor(mode))
        else:
            self.max_resident = self._base_max_resident

    @staticmethod
    def _resolve_quantized(manifest: Dict[str, object],
                           quantized: Optional[object]) -> Optional[str]:
        entry = manifest.get("quantized")
        available = entry.get("mode") if isinstance(entry, dict) else None
        if quantized in (None, False):
            return None
        if quantized in (True, "auto"):
            return available
        mode = quantize_lib.check_mode(str(quantized))
        if available != mode:
            raise ValueError(
                f"weights directory is not quantized as {mode!r} "
                f"(manifest has {available!r}); re-export the artifact with "
                f"save_weight_files(..., quantize={mode!r})"
            )
        return mode

    def rehome(self, directory: Optional[str] = None) -> str:
        """Move the backing storage to a private directory (fork isolation).

        A forked worker replica shares the parent's bucket *files*; rehoming
        copies them (resident slabs are written from memory) into a directory
        this process owns, so concurrent replicas never write back into each
        other's storage.  Returns the new directory.
        """
        # The current directory belongs to the parent process the moment we
        # decide to rehome: disown it FIRST, so a failure mid-copy (and the
        # close() that follows in the worker's cleanup) can never rmtree the
        # parent's live bucket storage.
        self._owns_dir = False
        new_dir = directory if directory is not None else tempfile.mkdtemp(
            prefix="sptransx-partitioned-")
        os.makedirs(new_dir, exist_ok=True)
        for k, param in enumerate(self._buckets):
            target = os.path.join(new_dir, bucket_filename(k))
            if param.resident:
                np.save(target, param._slab)
            else:
                shutil.copyfile(self._bucket_path(k), target)
        self._directory = new_dir
        self._owns_dir = directory is None
        self._dirty.clear()
        return new_dir

    def close(self) -> None:
        """Drop resident slabs and delete owned storage."""
        self._drop_resident()
        if self._owns_dir and self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None
            self._owns_dir = False

    def __del__(self) -> None:  # pragma: no cover - best effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def _drop_resident(self) -> None:
        for param in self._buckets:
            param._slab = None
        self._resident.clear()
        self._dirty.clear()
        self._resident_bytes = 0

    # ------------------------------------------------------------------ #
    # Residency management
    # ------------------------------------------------------------------ #
    def _touch(self, bucket: int) -> None:
        if bucket in self._resident:
            self._resident.move_to_end(bucket)
            if not self.read_only:
                # ``.data`` is the only doorway to in-place mutation
                # (optimizer scatter updates), so a touch in training mode
                # conservatively marks the bucket dirty.
                self._dirty.add(bucket)

    def _fault(self, bucket: int) -> None:
        """Load ``bucket``'s slab, evicting LRU buckets beyond the bound."""
        param = self._buckets[bucket]
        if param.resident:
            self._resident.move_to_end(bucket)
            return
        while len(self._resident) >= self.max_resident:
            victim, _ = self._resident.popitem(last=False)
            self._evict(victim)
        t0 = time.perf_counter()
        if self._quantized is not None:
            slab, file_bytes = quantize_lib.load_quantized_bucket(
                self._directory, bucket, self._quantized)
        else:
            slab = np.load(self._bucket_path(bucket))
            file_bytes = slab.nbytes
        param._slab = slab
        self._resident[bucket] = None
        self._resident_bytes += slab.nbytes
        self.counters["faults"] += 1
        self.counters["bytes_loaded"] += file_bytes
        self.counters["fault_seconds"] += time.perf_counter() - t0
        self.counters["peak_resident"] = max(self.counters["peak_resident"],
                                             len(self._resident))
        self.counters["peak_resident_bytes"] = max(
            self.counters["peak_resident_bytes"], self._resident_bytes)

    def _evict(self, bucket: int) -> None:
        param = self._buckets[bucket]
        if not param.resident:
            return
        if not self.read_only and bucket in self._dirty:
            t0 = time.perf_counter()
            np.save(self._bucket_path(bucket), param._slab)
            self.counters["writebacks"] += 1
            self.counters["bytes_written"] += param._slab.nbytes
            self.counters["writeback_seconds"] += time.perf_counter() - t0
        self._dirty.discard(bucket)
        self._page_out_optimizer_state(bucket)
        self._resident_bytes -= param._slab.nbytes
        param._slab = None
        self._resident.pop(bucket, None)
        self.counters["evictions"] += 1

    def flush(self) -> None:
        """Write every dirty resident bucket (and its optimiser state) to disk.

        Leaves residency untouched; used before checkpointing and before the
        bucket files are copied into an artifact directory.
        """
        if self.read_only:
            return
        for bucket in list(self._resident):
            param = self._buckets[bucket]
            if bucket in self._dirty:
                t0 = time.perf_counter()
                np.save(self._bucket_path(bucket), param._slab)
                self.counters["writebacks"] += 1
                self.counters["bytes_written"] += param._slab.nbytes
                self.counters["writeback_seconds"] += time.perf_counter() - t0
                self._dirty.discard(bucket)
            self._save_optimizer_state(bucket, pop=False)

    # ------------------------------------------------------------------ #
    # Optimizer-state paging (per-bucket slabs page with their bucket)
    # ------------------------------------------------------------------ #
    def attach_optimizer(self, optimizer) -> None:
        """Let bucket evictions page this optimiser's per-bucket state slabs.

        Adam/Adagrad keep ``(bucket_rows, d)`` moment slabs per bucket
        parameter; once attached, those slabs are written next to their bucket
        file on eviction and restored (through
        :meth:`BucketParameter.restore_opt_state`) when the optimiser next
        touches the bucket — resident-set memory covers parameters *and*
        optimiser state.
        """
        self._optimizer = optimizer

    def _page_out_optimizer_state(self, bucket: int) -> None:
        if self._optimizer is None:
            return
        self._save_optimizer_state(bucket, pop=True)

    def _save_optimizer_state(self, bucket: int, pop: bool) -> None:
        if self._optimizer is None or self.read_only:
            return
        param = self._buckets[bucket]
        state = self._optimizer.state.get(id(param))
        if not state:
            return
        scalars: Dict[str, object] = {}
        for buffer, value in state.items():
            if isinstance(value, np.ndarray):
                np.save(self._state_path(bucket, buffer), value)
            else:
                scalars[buffer] = value
        with open(self._state_meta_path(bucket), "w", encoding="utf-8") as handle:
            json.dump(scalars, handle)
        if pop:
            self._optimizer.state.pop(id(param), None)

    def _load_optimizer_state(self, bucket: int, state: Dict[str, object]) -> None:
        meta_path = self._state_meta_path(bucket)
        if not os.path.exists(meta_path):
            return  # never paged out: genuinely fresh state
        with open(meta_path, "r", encoding="utf-8") as handle:
            state.update(json.load(handle))
        prefix = bucket_filename(bucket) + ".state."
        for name in os.listdir(self._directory):
            if name.startswith(prefix) and name.endswith(".npy"):
                buffer = name[len(prefix):-len(".npy")]
                state[buffer] = np.load(os.path.join(self._directory, name))

    # ------------------------------------------------------------------ #
    # EmbeddingTable interface (entity rows)
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return self.n_entities

    @property
    def embedding_dim(self) -> int:
        return self._embedding_dim

    @property
    def n_partitions(self) -> int:
        return self.partition.n_partitions

    def _bucket_slices(self, sorted_ids: np.ndarray) -> Iterator[Tuple[int, slice, np.ndarray]]:
        """Yield ``(bucket, slice_into_sorted_ids, local_rows)`` per touched bucket."""
        buckets = self.partition.bucket_of(sorted_ids)
        boundaries = np.flatnonzero(
            np.concatenate(([True], buckets[1:] != buckets[:-1])))
        for i, start in enumerate(boundaries):
            stop = boundaries[i + 1] if i + 1 < boundaries.size else sorted_ids.size
            bucket = int(buckets[start])
            lo, _ = self.partition.bucket_range(bucket)
            yield bucket, slice(int(start), int(stop)), sorted_ids[start:stop] - lo

    def read_rows(self, indices: np.ndarray) -> np.ndarray:
        """Copy of arbitrary entity rows (faulting buckets as needed).

        The rows come back at the resident-slab dtype — float64 normally,
        float16/float32 when serving quantized buckets (no silent upcast).
        """
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_entities):
            raise IndexError("entity index out of range")
        out = np.empty((idx.size, self._embedding_dim), dtype=self.slab_dtype)
        order = np.argsort(idx, kind="stable")
        sorted_ids = idx[order]
        for bucket, sl, local in self._bucket_slices(sorted_ids):
            self._fault(bucket)
            out[order[sl]] = self._buckets[bucket]._slab[local]
            self._resident.move_to_end(bucket)
        return out

    def exact_rows(self, indices: np.ndarray) -> np.ndarray:
        """Full-precision float64 entity rows, even when serving quantized.

        A quantized table keeps the exact ``entities.bucket<k>.npy`` files on
        disk beside their quantized twins; this reads just the requested rows
        from them through a transient memory map — no full bucket is widened
        into RAM and nothing enters the resident set.  Without quantization it
        is simply :meth:`read_rows`.  The two-phase serving path uses this to
        rescore the coarse candidate list exactly.
        """
        if self._quantized is None:
            return self.read_rows(indices)
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_entities):
            raise IndexError("entity index out of range")
        out = np.empty((idx.size, self._embedding_dim), dtype=np.float64)
        order = np.argsort(idx, kind="stable")
        sorted_ids = idx[order]
        for bucket, sl, local in self._bucket_slices(sorted_ids):
            exact = np.load(self._bucket_path(bucket), mmap_mode="r")
            out[order[sl]] = exact[local]
            del exact  # drop the mmap (and its fd) as soon as rows are copied
        self.counters["exact_row_reads"] += int(idx.size)
        return out

    def iter_blocks(self, block_rows: int = DEFAULT_BLOCK_ROWS
                    ) -> Iterator[Tuple[int, np.ndarray]]:
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        for k in range(self.partition.n_partitions):
            lo, hi = self.partition.bucket_range(k)
            self._fault(k)
            slab = self._buckets[k]._slab
            for start in range(0, hi - lo, block_rows):
                stop = min(hi - lo, start + block_rows)
                yield lo + start, slab[start:stop]

    def write_rows(self, indices: np.ndarray, values: np.ndarray) -> None:
        if self.read_only:
            raise RuntimeError("cannot write rows of a read-only partitioned table")
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float64).reshape(idx.size, -1)
        order = np.argsort(idx, kind="stable")
        sorted_ids = idx[order]
        for bucket, sl, local in self._bucket_slices(sorted_ids):
            self._fault(bucket)
            self._buckets[bucket]._slab[local] = values[order[sl]]
            self._dirty.add(bucket)
            self._resident.move_to_end(bucket)

    def renormalize_(self, max_norm: float = 1.0, p: int = 2,
                     block_rows: Optional[int] = None) -> None:
        """Block-wise entity row projection, in place, one bucket at a time."""
        if self.read_only:
            raise RuntimeError("cannot renormalize a read-only partitioned table")
        if block_rows is None:
            block_rows = block_rows_for(self._embedding_dim)
        for k in range(self.partition.n_partitions):
            self._fault(k)
            slab = self._buckets[k]._slab
            for start in range(0, slab.shape[0], block_rows):
                renormalize_block_(slab[start:start + block_rows], max_norm, p)
            self._dirty.add(k)
            self._resident.move_to_end(k)

    # ------------------------------------------------------------------ #
    # Relations + compact gather/scatter (the training hot path)
    # ------------------------------------------------------------------ #
    def relation_rows(self, indices: np.ndarray) -> np.ndarray:
        """Copy of relation rows (always resident)."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_relations):
            raise IndexError("relation index out of range")
        return np.array(self.relations.data[idx], copy=True)

    def gather_stacked(self, entity_ids: np.ndarray, relation_ids: np.ndarray
                       ) -> Tuple[np.ndarray, Tuple[Parameter, ...]]:
        """Compact ``[entities; relations]`` block for a batch's unique ids.

        ``entity_ids``/``relation_ids`` must be sorted and unique (the caller
        gets them from ``np.unique``).  Returns the ``(U_e + U_r, d)`` stacked
        rows plus the parameters gradients must flow to — the touched bucket
        parameters and the relation parameter — for use as autograd parents.
        """
        entity_ids = np.asarray(entity_ids, dtype=np.int64)
        relation_ids = np.asarray(relation_ids, dtype=np.int64)
        out = np.empty((entity_ids.size + relation_ids.size, self._embedding_dim),
                       dtype=np.float64)
        parents: List[Parameter] = []
        for bucket, sl, local in self._bucket_slices(entity_ids):
            self._fault(bucket)
            out[sl] = self._buckets[bucket]._slab[local]
            self._resident.move_to_end(bucket)
            parents.append(self._buckets[bucket])
        out[entity_ids.size:] = self.relations.data[relation_ids]
        parents.append(self.relations)
        return out, tuple(parents)

    def scatter_stacked_grad(self, entity_ids: np.ndarray,
                             relation_ids: np.ndarray,
                             grad: RowSparseGrad) -> None:
        """Split a compact stacked gradient onto bucket / relation parameters.

        ``grad`` indexes the compact rows :meth:`gather_stacked` returned
        (entities first, relations after).  Entity rows become per-bucket
        :class:`~repro.sparse.rowsparse.RowSparseGrad` contributions with
        bucket-local indices; relation rows become one row-sparse gradient on
        the relation parameter.  Buckets receiving gradient are marked dirty —
        the optimiser's scatter update will write them before the next
        eviction can page them out.
        """
        entity_ids = np.asarray(entity_ids, dtype=np.int64)
        relation_ids = np.asarray(relation_ids, dtype=np.int64)
        split = int(np.searchsorted(grad.indices, entity_ids.size))
        ent_rows = entity_ids[grad.indices[:split]]
        ent_vals = grad.values[:split]
        for bucket, sl, local in self._bucket_slices(ent_rows):
            param = self._buckets[bucket]
            param.accumulate_grad(RowSparseGrad(local, ent_vals[sl], param.shape))
            self._dirty.add(bucket)
        rel_rows = relation_ids[grad.indices[split:] - entity_ids.size]
        if rel_rows.size:
            self.relations.accumulate_grad(RowSparseGrad(
                rel_rows, grad.values[split:],
                (self.n_relations, self._embedding_dim)))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Optional[str]:
        """Directory holding the bucket files."""
        return self._directory

    @property
    def quantized(self) -> Optional[str]:
        """Active serving quantization mode (``"fp16"``/``"int8"``) or ``None``."""
        return self._quantized

    @property
    def slab_dtype(self) -> np.dtype:
        """Dtype of the resident bucket slabs under the current attachment."""
        if self._quantized == "fp16":
            return np.dtype(np.float16)
        if self._quantized == "int8":
            return np.dtype(np.float32)
        return np.dtype(np.float64)

    def bucket_parameters(self) -> Sequence[BucketParameter]:
        """The bucket parameters, in bucket order."""
        return tuple(self._buckets)

    def resident_buckets(self) -> Tuple[int, ...]:
        """Currently resident bucket ids (LRU order, oldest first)."""
        return tuple(self._resident)

    def stats(self) -> Dict[str, float]:
        """Fault/eviction/write-back counters plus current residency."""
        out = dict(self.counters)
        out["resident"] = len(self._resident)
        out["resident_bytes"] = self._resident_bytes
        out["max_resident"] = self.max_resident
        out["partitions"] = self.partition.n_partitions
        out["quantized"] = self._quantized
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PartitionedEmbedding(entities={self.n_entities}, "
                f"relations={self.n_relations}, dim={self._embedding_dim}, "
                f"partitions={self.partition.n_partitions}, "
                f"max_resident={self.max_resident})")


def partitioned_tables(module: Module) -> List[PartitionedEmbedding]:
    """Every :class:`PartitionedEmbedding` inside ``module`` (may be empty)."""
    return [m for m in module.modules() if isinstance(m, PartitionedEmbedding)]
