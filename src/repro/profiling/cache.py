"""Cache-behaviour model (Table 7).

The paper measures the CPU cache-miss rate with Linux ``perf``.  Hardware
counters are not available here, so we model the mechanism the paper credits
for the improvement instead:

* every kernel reports, via the op counters, how many bytes it *streamed*
  (total traffic) and how many *unique* parameter bytes it touched;
* unique bytes that exceed the cache capacity necessarily miss at least once
  (compulsory + capacity misses);
* re-streamed bytes hit when the working set fits in the cache and
  progressively miss as the working set grows beyond it.

The model's output is a miss *rate* (misses / accesses), the same quantity
Table 7 reports.  Its purpose is to capture the relative ordering between the
sparse path (each embedding row touched once per batch, regular streaming) and
the gather/scatter path (rows touched redundantly, scattered access) — not to
predict absolute hardware numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.autograd.function import OpCounters, flop_counter
from repro.data.batching import TripletBatch
from repro.losses.margin import MarginRankingLoss
from repro.models.base import KGEModel

#: Cache-line granularity used to convert bytes to accesses.
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class CacheModel:
    """A simple capacity/streaming cache model.

    Attributes
    ----------
    capacity_bytes:
        Modelled last-level cache capacity (default 32 MiB, matching the
        per-CCD L3 of the EPYC 7763 used in the paper).
    line_bytes:
        Cache-line size.
    """

    capacity_bytes: int = 32 * 1024 * 1024
    line_bytes: int = CACHE_LINE_BYTES

    def miss_rate(self, bytes_streamed: int, bytes_unique: int) -> float:
        """Estimated miss rate given total and unique byte traffic.

        ``unique`` lines miss once each (compulsory).  Re-referenced traffic
        (``streamed − unique``) hits while the working set fits in the cache
        and misses with probability growing linearly once it spills.
        """
        if bytes_streamed <= 0:
            return 0.0
        bytes_unique = min(bytes_unique, bytes_streamed)
        total_lines = max(bytes_streamed / self.line_bytes, 1.0)
        unique_lines = bytes_unique / self.line_bytes
        reuse_lines = total_lines - unique_lines
        spill = max(0.0, 1.0 - self.capacity_bytes / max(bytes_unique, 1))
        reuse_miss_fraction = min(1.0, spill)
        misses = unique_lines + reuse_lines * reuse_miss_fraction
        return float(misses / total_lines)


@dataclass
class CacheReport:
    """Modelled cache behaviour of one training step."""

    bytes_streamed: int
    bytes_unique: int
    miss_rate: float
    per_op_flops: Dict[str, int]

    def to_dict(self) -> Dict[str, float]:
        return {
            "bytes_streamed": float(self.bytes_streamed),
            "bytes_unique": float(self.bytes_unique),
            "miss_rate": self.miss_rate,
        }


def measure_cache_behaviour(
    model: KGEModel,
    batch: TripletBatch,
    cache: Optional[CacheModel] = None,
    criterion=None,
) -> CacheReport:
    """Run one forward/backward cycle and model its cache behaviour."""
    cache = cache if cache is not None else CacheModel()
    criterion = criterion if criterion is not None else MarginRankingLoss()
    with flop_counter() as counters:
        loss = model.loss(batch, criterion)
        model.zero_grad()
        loss.backward()
    return report_from_counters(counters, cache)


def report_from_counters(counters: OpCounters, cache: Optional[CacheModel] = None) -> CacheReport:
    """Build a :class:`CacheReport` from already-collected op counters."""
    cache = cache if cache is not None else CacheModel()
    return CacheReport(
        bytes_streamed=counters.bytes_streamed,
        bytes_unique=counters.bytes_unique,
        miss_rate=cache.miss_rate(counters.bytes_streamed, counters.bytes_unique),
        per_op_flops=dict(counters.per_op),
    )
