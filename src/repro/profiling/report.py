"""Function-level CPU profile of a training step (Figure 2).

The paper identifies the top CPU-intensive functions per model/dataset
(``EmbeddingBackward``, norm backward, the torus dissimilarity, ...) with a
profiler.  We reproduce that view with :mod:`cProfile`: run a handful of
training steps, aggregate cumulative time by function, and report each
function's share of the profiled window restricted to this library's code so
the hot spots are directly comparable with the paper's labels.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.batching import TripletBatch
from repro.losses.margin import MarginRankingLoss
from repro.models.base import KGEModel
from repro.optim.optimizer import Optimizer


@dataclass
class FunctionProfile:
    """One row of the function-level profile."""

    function: str
    total_time: float
    share: float
    calls: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "total_time": self.total_time,
            "share": self.share,
            "calls": self.calls,
        }


def profile_training_step(
    model: KGEModel,
    batch: TripletBatch,
    optimizer: Optional[Optimizer] = None,
    criterion=None,
    steps: int = 3,
    top: int = 10,
    restrict_to_library: bool = True,
) -> List[FunctionProfile]:
    """Profile ``steps`` training steps and return the hottest functions.

    Parameters
    ----------
    model, batch, optimizer, criterion:
        Training-step ingredients; the optimiser step is included when an
        optimiser is passed.
    steps:
        Number of repetitions (amortises profiler start-up noise).
    top:
        Number of rows to return.
    restrict_to_library:
        Keep only functions defined in this package (mirrors the paper's
        focus on the KGE training functions rather than interpreter overhead).
    """
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    criterion = criterion if criterion is not None else MarginRankingLoss()

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(steps):
        model.zero_grad()
        loss = model.loss(batch, criterion)
        loss.backward()
        if optimizer is not None:
            optimizer.step()
    profiler.disable()

    stats = pstats.Stats(profiler)
    rows = []
    total_time = 0.0
    for (filename, lineno, func_name), (cc, nc, tottime, cumtime, callers) in stats.stats.items():
        if restrict_to_library and "repro" not in filename:
            continue
        label = f"{func_name}"
        rows.append((label, tottime, nc))
        total_time += tottime
    if total_time <= 0:
        return []
    aggregated: Dict[str, List[float]] = {}
    for label, tottime, calls in rows:
        entry = aggregated.setdefault(label, [0.0, 0])
        entry[0] += tottime
        entry[1] += calls
    ranked = sorted(aggregated.items(), key=lambda kv: kv[1][0], reverse=True)[:top]
    return [
        FunctionProfile(function=label, total_time=tottime, share=tottime / total_time,
                        calls=int(calls))
        for label, (tottime, calls) in ranked
    ]
