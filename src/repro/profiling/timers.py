"""Named wall-clock phase timers."""

from __future__ import annotations

import contextlib
import time
from collections import OrderedDict
from typing import Dict, Iterator


class PhaseTimer:
    """Accumulate wall-clock time per named phase.

    Example
    -------
    >>> timer = PhaseTimer()
    >>> with timer.phase("forward"):
    ...     _ = sum(range(1000))
    >>> timer.total("forward") > 0
    True
    """

    def __init__(self) -> None:
        self._totals: "OrderedDict[str, float]" = OrderedDict()
        self._counts: Dict[str, int] = {}

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring one occurrence of ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to a phase."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._totals[name] = self._totals.get(name, 0.0) + float(seconds)
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds in ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times ``name`` was entered."""
        return self._counts.get(name, 0)

    def totals(self) -> Dict[str, float]:
        """Copy of all phase totals."""
        return dict(self._totals)

    def grand_total(self) -> float:
        """Sum over every phase."""
        return sum(self._totals.values())

    def reset(self) -> None:
        """Clear all accumulated state."""
        self._totals.clear()
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in self._totals.items())
        return f"PhaseTimer({parts})"
