"""Profiling substrate: FLOP counting, device-memory model, cache model, timers.

These modules stand in for the measurement tools the paper uses on its
hardware testbed:

* :mod:`repro.profiling.flops` — analytic FLOP counts per training phase
  (replaces ``perf``'s FLOP counters; Table 6).
* :mod:`repro.profiling.memory` — an analytic device-memory model charging
  every live tensor of a training step to a simulated allocator (replaces
  ``torch.cuda.max_memory_allocated``; Table 5, Figure 6).
* :mod:`repro.profiling.cache` — a cache-behaviour model built from the
  byte-traffic counters of each kernel (replaces ``perf``'s cache-miss rate;
  Table 7).
* :mod:`repro.profiling.timers` — wall-clock phase timers.
* :mod:`repro.profiling.report` — function-level CPU profile of a training
  step (Figure 2).
"""

from repro.profiling.flops import count_training_flops, FlopsBreakdown
from repro.profiling.memory import (
    MemoryReport,
    measure_training_memory,
    estimate_training_memory,
)
from repro.profiling.cache import CacheModel, CacheReport, measure_cache_behaviour
from repro.profiling.timers import PhaseTimer
from repro.profiling.report import profile_training_step, FunctionProfile

__all__ = [
    "count_training_flops",
    "FlopsBreakdown",
    "MemoryReport",
    "measure_training_memory",
    "estimate_training_memory",
    "CacheModel",
    "CacheReport",
    "measure_cache_behaviour",
    "PhaseTimer",
    "profile_training_step",
    "FunctionProfile",
]
