"""Analytic FLOP accounting per training phase (Table 6).

Every primitive op and every sparse kernel registers its floating-point
operation count through :func:`repro.autograd.function.count_flops`; this
module wraps one full training step in those counters, split by phase, so the
Table-6 benchmark can report per-model FLOP totals for the sparse and dense
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.autograd.function import OpCounters, flop_counter
from repro.data.batching import TripletBatch
from repro.losses.margin import MarginRankingLoss
from repro.models.base import KGEModel
from repro.optim.optimizer import Optimizer


@dataclass
class FlopsBreakdown:
    """FLOPs of one training step split by phase."""

    forward: int
    backward: int
    step: int
    per_op: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.forward + self.backward + self.step

    def to_dict(self) -> Dict[str, int]:
        return {
            "forward": self.forward,
            "backward": self.backward,
            "step": self.step,
            "total": self.total,
        }


def count_training_flops(
    model: KGEModel,
    batch: TripletBatch,
    optimizer: Optional[Optimizer] = None,
    criterion=None,
) -> FlopsBreakdown:
    """Count FLOPs of one forward/backward(/step) cycle on ``batch``.

    The optimiser step is included only when an optimiser is supplied (the
    paper's FLOP figures are dominated by forward+backward, but the step term
    matters for Adam on large embedding tables).
    """
    criterion = criterion if criterion is not None else MarginRankingLoss()
    per_op: Dict[str, int] = {}

    with flop_counter() as fwd_counters:
        loss = model.loss(batch, criterion)
    model.zero_grad()
    with flop_counter() as bwd_counters:
        loss.backward()
    step_flops = 0
    if optimizer is not None:
        with flop_counter() as step_counters:
            optimizer.step()
        step_flops = step_counters.flops
        _merge(per_op, step_counters)
    _merge(per_op, fwd_counters)
    _merge(per_op, bwd_counters)

    return FlopsBreakdown(
        forward=fwd_counters.flops,
        backward=bwd_counters.flops,
        step=step_flops,
        per_op=per_op,
    )


def _merge(per_op: Dict[str, int], counters: OpCounters) -> None:
    for name, flops in counters.per_op.items():
        per_op[name] = per_op.get(name, 0) + flops
