"""Analytic device-memory model (Table 5 and Figure 6).

The paper measures ``torch.cuda.max_memory_allocated`` on an A100.  Without a
GPU we charge a simulated allocator with everything that is simultaneously
live during one training step:

* the model parameters;
* one gradient buffer per parameter;
* optimiser state (0, 1, or 2 extra buffers per parameter depending on the
  optimiser);
* every intermediate tensor recorded on the autograd tape of the step's loss
  (these must be retained for the backward pass, exactly like PyTorch's saved
  activations).

The sparse path materialises far fewer and smaller intermediates than the
gather-based path (one ``(B, d)`` SpMM output versus three gathered operand
copies plus their combinations), so the *relative* footprint — which is what
Table 5 and Figure 6 demonstrate — is reproduced faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.autograd.tensor import Tensor
from repro.data.batching import TripletBatch
from repro.losses.margin import MarginRankingLoss
from repro.models.base import KGEModel

#: Extra per-parameter state buffers kept by each optimiser family.
OPTIMIZER_STATE_BUFFERS = {
    "sgd": 0,
    "sgd_momentum": 1,
    "adagrad": 1,
    "adam": 2,
}


@dataclass
class MemoryReport:
    """Byte-level breakdown of one training step's simulated device memory."""

    parameter_bytes: int
    gradient_bytes: int
    optimizer_state_bytes: int
    intermediate_bytes: int
    n_intermediates: int

    @property
    def total_bytes(self) -> int:
        return (self.parameter_bytes + self.gradient_bytes
                + self.optimizer_state_bytes + self.intermediate_bytes)

    @property
    def total_gb(self) -> float:
        """Total in GiB (the unit Table 5 reports)."""
        return self.total_bytes / (1024 ** 3)

    def to_dict(self) -> Dict[str, float]:
        return {
            "parameter_bytes": float(self.parameter_bytes),
            "gradient_bytes": float(self.gradient_bytes),
            "optimizer_state_bytes": float(self.optimizer_state_bytes),
            "intermediate_bytes": float(self.intermediate_bytes),
            "n_intermediates": float(self.n_intermediates),
            "total_bytes": float(self.total_bytes),
            "total_gb": self.total_gb,
        }


def _walk_intermediates(loss: Tensor) -> tuple[Set[int], Dict[int, Tensor]]:
    """Collect every non-leaf tensor reachable from ``loss`` (the saved tape)."""
    seen: Dict[int, Tensor] = {}
    stack = [loss]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        stack.extend(node._parents)
    intermediates = {key for key, node in seen.items() if not node.is_leaf}
    return intermediates, seen


def measure_training_memory(
    model: KGEModel,
    batch: TripletBatch,
    optimizer: str = "adam",
    criterion=None,
) -> MemoryReport:
    """Measure the simulated peak memory of one training step on ``batch``.

    The loss is actually computed so the tape reflects the real operator
    sequence of the model being profiled; the graph is then walked and every
    retained intermediate charged to the report.
    """
    if optimizer not in OPTIMIZER_STATE_BUFFERS:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; expected one of {sorted(OPTIMIZER_STATE_BUFFERS)}"
        )
    criterion = criterion if criterion is not None else MarginRankingLoss()
    loss = model.loss(batch, criterion)

    intermediate_ids, seen = _walk_intermediates(loss)
    intermediate_bytes = sum(seen[key].nbytes for key in intermediate_ids)

    parameter_bytes = sum(p.nbytes for p in model.parameters())
    gradient_bytes = parameter_bytes
    optimizer_state_bytes = OPTIMIZER_STATE_BUFFERS[optimizer] * parameter_bytes

    return MemoryReport(
        parameter_bytes=parameter_bytes,
        gradient_bytes=gradient_bytes,
        optimizer_state_bytes=optimizer_state_bytes,
        intermediate_bytes=intermediate_bytes,
        n_intermediates=len(intermediate_ids),
    )


def estimate_training_memory(
    n_entities: int,
    n_relations: int,
    embedding_dim: int,
    batch_size: int,
    formulation: str = "sparse",
    optimizer: str = "adam",
    dtype_bytes: int = 8,
) -> MemoryReport:
    """Closed-form estimate without building a model (used for large sweeps).

    ``formulation`` is ``"sparse"`` (one (B, d) SpMM output + score vector) or
    ``"dense"`` (three gathered (B, d) blocks, two partial sums, and the score
    vector) — the intermediate counts that drive the Figure-6 curves.
    """
    if formulation not in ("sparse", "dense"):
        raise ValueError(f"formulation must be 'sparse' or 'dense', got {formulation!r}")
    if optimizer not in OPTIMIZER_STATE_BUFFERS:
        raise ValueError(f"unknown optimizer {optimizer!r}")
    table_rows = n_entities + n_relations
    parameter_bytes = table_rows * embedding_dim * dtype_bytes
    gradient_bytes = parameter_bytes
    optimizer_state_bytes = OPTIMIZER_STATE_BUFFERS[optimizer] * parameter_bytes
    # Scores are computed over positives and negatives together (2B rows).
    rows = 2 * batch_size
    block = rows * embedding_dim * dtype_bytes
    score = rows * dtype_bytes
    if formulation == "sparse":
        intermediates = block + score          # SpMM output + per-row score
        n_intermediates = 2
    else:
        intermediates = 5 * block + score      # h, r, t gathers + (h+r) + (h+r-t) + score
        n_intermediates = 6
    return MemoryReport(
        parameter_bytes=parameter_bytes,
        gradient_bytes=gradient_bytes,
        optimizer_state_bytes=optimizer_state_bytes,
        intermediate_bytes=intermediates,
        n_intermediates=n_intermediates,
    )
