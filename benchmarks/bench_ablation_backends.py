"""Ablation: SpMM backend and incidence-format choices inside the sparse path.

Paper reference
---------------
Section 5.5: the framework lets the user plug any high-performance SpMM
(iSpLib with CSR on CPU, DGL g-SpMM with COO on GPU) and automatically builds
the minibatch incidence matrices in the right format.  The choice of kernel is
a design knob of the system rather than a headline result, so this harness is
an *ablation* over our registered backends and formats.

What this harness does
----------------------
* pytest-benchmark entries time a raw SpMM call per backend on an ``hrt``
  incidence matrix;
* ``main()`` trains SpTransE with every (backend, incidence format)
  combination on the same data and prints the total training time, so the cost
  of choosing a naive kernel (the pure-NumPy reference) over a compiled one
  (SciPy CSR) is visible — the gap that motivates the paper's reliance on
  optimized SpMM libraries.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from benchmarks.common import DEFAULT_SCALE, format_table, load_scaled_dataset, paper_training_config
from repro.models import SpTransE
from repro.sparse import available_backends, build_hrt_incidence, get_backend
from repro.training import Trainer

BACKENDS = ["scipy", "fused", "numpy"]
FORMATS = ["csr", "coo"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_raw_spmm_kernel(benchmark, backend):
    """Time one hrt-incidence SpMM per registered backend."""
    kg = load_scaled_dataset("FB15K")
    triples = kg.split.train[: min(8192, kg.n_triples)]
    A = build_hrt_incidence(triples, kg.n_entities, kg.n_relations, fmt="csr")
    E = np.random.default_rng(0).standard_normal((kg.n_entities + kg.n_relations, 64))
    kernel = get_backend(backend)
    benchmark.group = "ablation-spmm-kernel"
    benchmark.extra_info["backend"] = backend
    out = benchmark(kernel, A, E)
    assert out.shape == (triples.shape[0], 64)


def run(scale: float = DEFAULT_SCALE, epochs: int = 2, dim: int = 64,
        batch_size: int = 4096) -> list[dict]:
    """Train SpTransE under every backend/format combination."""
    kg = load_scaled_dataset("FB15K", scale=scale)
    rows = []
    for backend in BACKENDS:
        for fmt in FORMATS:
            model = SpTransE(kg.n_entities, kg.n_relations, dim, backend=backend,
                             fmt=fmt, rng=0)
            result = Trainer(model, kg, paper_training_config(epochs, batch_size)).train()
            rows.append({
                "backend": backend,
                "format": fmt,
                "total_s": result.total_time,
                "final_loss": result.final_loss,
            })
    fastest = min(rows, key=lambda r: r["total_s"])
    for row in rows:
        row["vs_fastest"] = row["total_s"] / fastest["total_s"]
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--dim", type=int, default=64)
    args = parser.parse_args()
    rows = run(scale=args.scale, epochs=args.epochs, dim=args.dim)
    print(format_table(rows, ["backend", "format", "total_s", "final_loss", "vs_fastest"],
                       title="Ablation: SpMM backend and incidence format for SpTransE"))
    losses = {round(r["final_loss"], 6) for r in rows}
    print(f"\nDistinct final losses across configurations: {len(losses)} "
          "(all configurations compute the same math; only speed differs).")


if __name__ == "__main__":
    main()
