"""Figure 6: training time and device-memory allocation versus batch size.

Paper reference
---------------
Figure 6 sweeps the batch size from 2^12 to 2^19 for the four SpTransX models
(dim 128) and shows that the largest batch size both maximises device-memory
utilisation and minimises total training time.

What this harness does
----------------------
* pytest-benchmark entries time one SpTransE epoch at a small and a large
  batch size;
* ``main()`` sweeps batch sizes for every sparse model, measuring epoch
  training time (wall clock) and the simulated device memory of one step
  (autograd-tape walk), and prints both series.  The reproducible shape is
  that per-epoch time falls and memory grows roughly linearly as the batch
  size increases.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import DEFAULT_SCALE, format_table, load_scaled_dataset, make_batch
from repro.models import SpTorusE, SpTransE, SpTransH, SpTransR
from repro.profiling import measure_training_memory
from repro.training import Trainer, TrainingConfig

MODELS = {
    "TransE": (SpTransE, {}),
    "TransR": (SpTransR, {"relation_dim": 32}),
    "TransH": (SpTransH, {}),
    "TorusE": (SpTorusE, {}),
}
DEFAULT_BATCHES = [256, 1024, 4096, 16384]
DIM = 64


def _epoch_time(model_cls, kwargs, kg, batch_size: int) -> float:
    model = model_cls(kg.n_entities, kg.n_relations, DIM, rng=0, **kwargs)
    config = TrainingConfig(epochs=1, batch_size=batch_size, learning_rate=4e-4, seed=0)
    result = Trainer(model, kg, config).train()
    return result.total_time


@pytest.mark.parametrize("batch_size", [1024, 16384])
def test_transe_epoch_at_batch_size(benchmark, batch_size):
    """Time one SpTransE epoch at a small and a large batch size."""
    kg = load_scaled_dataset("FB15K")
    benchmark.group = "fig6-batch-sweep"
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.pedantic(_epoch_time, args=(SpTransE, {}, kg, batch_size),
                       rounds=1, iterations=1)


def run(batch_sizes=None, scale: float = DEFAULT_SCALE) -> list[dict]:
    """Regenerate the time/memory-vs-batch-size sweep."""
    batch_sizes = batch_sizes if batch_sizes is not None else DEFAULT_BATCHES
    kg = load_scaled_dataset("FB15K", scale=scale)
    rows = []
    for model_name, (cls, kwargs) in MODELS.items():
        for batch_size in batch_sizes:
            effective = min(batch_size, kg.n_triples)
            epoch_time = _epoch_time(cls, kwargs, kg, effective)
            model = cls(kg.n_entities, kg.n_relations, DIM, rng=0, **kwargs)
            memory = measure_training_memory(model, make_batch(kg, effective), "adam")
            rows.append({
                "model": model_name,
                "batch": effective,
                "epoch_time_s": epoch_time,
                "memory_gb": memory.total_gb,
            })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, nargs="+", default=DEFAULT_BATCHES)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args()
    rows = run(batch_sizes=args.batches, scale=args.scale)
    print(format_table(rows, ["model", "batch", "epoch_time_s", "memory_gb"],
                       title="Figure 6 (reproduced): epoch time and simulated memory vs batch size"))
    for model_name in MODELS:
        series = [r for r in rows if r["model"] == model_name]
        faster = series[-1]["epoch_time_s"] <= series[0]["epoch_time_s"]
        print(f"{model_name}: largest batch is "
              f"{'fastest (paper shape holds)' if faster else 'NOT fastest'}; "
              f"memory grows {series[-1]['memory_gb'] / max(series[0]['memory_gb'], 1e-12):.1f}x")


if __name__ == "__main__":
    main()
