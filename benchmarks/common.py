"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper.  Because the
paper's runs use an A100 + 64-core EPYC for hours, each harness here exposes a
*scale* knob: the pytest-benchmark entry points run at a small default scale
(seconds per case), while each module's ``main()`` accepts command-line
arguments for larger, closer-to-paper runs.  Dataset shapes always come from
the paper's Table 3 catalog (scaled proportionally), so the relative workload
mix across datasets is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines import DenseTorusE, DenseTransE, DenseTransH, DenseTransR
from repro.data import (
    KGDataset,
    TripletBatch,
    UniformNegativeSampler,
    make_dataset_like,
)
from repro.data.catalog import BENCHMARK_DATASETS
from repro.models import SpTorusE, SpTransE, SpTransH, SpTransR
from repro.training import Trainer, TrainingConfig

#: Default down-scaling of the paper's datasets for CPU-friendly benchmark runs.
DEFAULT_SCALE = 0.004
#: Datasets averaged over by the paper's headline tables (Table 3).
DATASETS = list(BENCHMARK_DATASETS)
#: Embedding dimension used by the quick benchmark runs (the paper uses up to 1024).
DEFAULT_DIM = 64
#: The four models the paper implements, with their sparse and dense classes.
MODEL_PAIRS: Dict[str, Tuple[type, type, dict]] = {
    "TransE": (SpTransE, DenseTransE, {}),
    "TransR": (SpTransR, DenseTransR, {"relation_dim": 32}),
    "TransH": (SpTransH, DenseTransH, {}),
    "TorusE": (SpTorusE, DenseTorusE, {}),
}


@dataclass
class BenchCase:
    """One (dataset, model, formulation) benchmark configuration."""

    dataset_name: str
    model_name: str
    formulation: str          # "sparse" or "dense"
    scale: float = DEFAULT_SCALE
    embedding_dim: int = DEFAULT_DIM

    @property
    def label(self) -> str:
        return f"{self.model_name}/{self.dataset_name}/{self.formulation}"


def load_scaled_dataset(name: str, scale: float = DEFAULT_SCALE, seed: int = 0) -> KGDataset:
    """Synthetic stand-in for one catalog dataset at the given scale."""
    return make_dataset_like(name, scale=scale, rng=seed)


def build_model(model_name: str, formulation: str, kg: KGDataset,
                embedding_dim: int = DEFAULT_DIM, seed: int = 0):
    """Instantiate the sparse or dense variant of one of the paper's models."""
    sparse_cls, dense_cls, kwargs = MODEL_PAIRS[model_name]
    cls = sparse_cls if formulation == "sparse" else dense_cls
    return cls(kg.n_entities, kg.n_relations, embedding_dim, rng=seed, **kwargs)


def make_batch(kg: KGDataset, batch_size: int, seed: int = 0) -> TripletBatch:
    """A fixed positive/negative batch (negatives pre-generated, paper protocol)."""
    sampler = UniformNegativeSampler(kg.n_entities, rng=seed)
    positives = kg.split.train[:batch_size]
    return TripletBatch(positives=positives, negatives=sampler.corrupt(positives))


def paper_training_config(epochs: int = 2, batch_size: int = 4096,
                          seed: int = 0) -> TrainingConfig:
    """The paper's Section-5.3 configuration (lr 4e-4, margin 0.5, Adam)."""
    return TrainingConfig(epochs=epochs, batch_size=batch_size, learning_rate=4e-4,
                          margin=0.5, optimizer="adam", seed=seed)


def train_case(case: BenchCase, epochs: int, batch_size: int = 4096, seed: int = 0):
    """Train one benchmark case and return (model, TrainingResult)."""
    kg = load_scaled_dataset(case.dataset_name, scale=case.scale, seed=seed)
    model = build_model(case.model_name, case.formulation, kg,
                        embedding_dim=case.embedding_dim, seed=seed)
    result = Trainer(model, kg, paper_training_config(epochs, batch_size, seed)).train()
    return model, result


def format_table(rows: List[Dict[str, object]], columns: List[str],
                 title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    widths = {c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in rows)) if rows else len(c)
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def geometric_mean(values) -> float:
    """Geometric mean used for averaging speedup factors across datasets."""
    values = np.asarray(list(values), dtype=float)
    values = values[values > 0]
    return float(np.exp(np.log(values).mean())) if values.size else float("nan")
