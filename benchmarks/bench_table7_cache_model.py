"""Table 7: average cache-miss rate per model, sparse vs dense.

Paper reference
---------------
Table 7 reports perf-measured CPU cache-miss rates averaged over the seven
datasets.  SpTransX has the lower miss rate for TransE (26.54% vs 29.37%),
TransR (17.02% vs 19.20%), and TorusE (21.53% vs 22.94%), but a slightly
*higher* rate than TorchKGE for TransH (10.43% vs 9.75%) because the SpMM is a
small part of that model's runtime.

What this harness does
----------------------
* pytest-benchmark entries time the cache-behaviour measurement;
* ``main()`` runs the byte-traffic cache model over one training step for
  every (dataset, model, formulation) pair and prints the averaged modelled
  miss rates.  The reproducible shape: sparse at or below dense for the
  SpMM-dominated models, with TransH the closest call.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import (
    DATASETS,
    DEFAULT_DIM,
    DEFAULT_SCALE,
    MODEL_PAIRS,
    build_model,
    format_table,
    load_scaled_dataset,
    make_batch,
)
from repro.profiling import CacheModel, measure_cache_behaviour


@pytest.mark.parametrize("formulation", ["sparse", "dense"])
def test_cache_measurement(benchmark, formulation):
    """Time the cache-behaviour measurement of one TransE step."""
    kg = load_scaled_dataset("YAGO3-10")
    model = build_model("TransE", formulation, kg)
    batch = make_batch(kg, batch_size=4096)
    benchmark.group = "table7-cache"
    benchmark.extra_info["formulation"] = formulation
    report = benchmark(measure_cache_behaviour, model, batch)
    assert 0.0 <= report.miss_rate <= 1.0


def run(scale: float = DEFAULT_SCALE, dim: int = DEFAULT_DIM, batch_size: int = 4096,
        cache_mb: int = 4) -> list[dict]:
    """Regenerate the Table-7 modelled cache-miss comparison."""
    cache = CacheModel(capacity_bytes=cache_mb * 1024 * 1024)
    rows = []
    for model_name in MODEL_PAIRS:
        rates = {"sparse": 0.0, "dense": 0.0}
        for dataset in DATASETS:
            kg = load_scaled_dataset(dataset, scale=scale)
            batch = make_batch(kg, batch_size=min(batch_size, kg.n_triples))
            for formulation in rates:
                model = build_model(model_name, formulation, kg, embedding_dim=dim)
                report = measure_cache_behaviour(model, batch, cache=cache)
                rates[formulation] += report.miss_rate
        n = len(DATASETS)
        rows.append({
            "model": model_name,
            "sparse_miss_%": 100 * rates["sparse"] / n,
            "dense_miss_%": 100 * rates["dense"] / n,
            "sparse<=dense": rates["sparse"] <= rates["dense"] + 1e-9,
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--cache-mb", type=int, default=4,
                        help="modelled LLC capacity; keep it comparable to the scaled "
                             "embedding-table size (the paper's 32 MiB LLC vs GB-scale tables)")
    args = parser.parse_args()
    rows = run(scale=args.scale, dim=args.dim, cache_mb=args.cache_mb)
    print(format_table(
        rows, ["model", "sparse_miss_%", "dense_miss_%", "sparse<=dense"],
        title=f"Table 7 (reproduced, modelled): cache-miss rate with a {args.cache_mb} MiB LLC",
    ))


if __name__ == "__main__":
    main()
