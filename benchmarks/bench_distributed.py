"""Measured multiprocess data parallelism vs the α–β communication model.

Paper reference
---------------
Appendix F / Table 9 trains SpTransE with PyTorch DDP on 4-64 A100 GPUs.
``bench_table9_scaling.py`` reproduces the *shape* of that study with the
simulated trainer (sequential shards + α–β-modeled all-reduce).  This harness
closes the modeled-vs-measured gap: it runs the real
:class:`~repro.training.MultiprocessTrainer` — N OS processes exchanging
row-sparse gradients — and prints the measured per-step exchange wall-clock
next to what the α–β model predicts for the same byte volume, plus the
simulated trainer's estimate as the baseline.

Reproducible shape: the measured row-sparse exchange volume stays
proportional to batch-touched rows (compare ``allreduce_mb`` against the
dense parameter size), and local-pipe α–β predictions undershoot measured
pickle+pipe costs by a roughly constant factor — the gap the measurement
exists to expose.

Run ``python -m benchmarks.bench_distributed --quick`` for a CI-sized pass.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import format_table
from repro.data import BatchIterator, UniformNegativeSampler, make_dataset_like
from repro.models import SpTransE
from repro.training import (
    CommunicationModel,
    DataParallelTrainer,
    MultiprocessTrainer,
    TrainingConfig,
)
from repro.utils.seeding import new_rng

DEFAULT_WORKERS = [1, 2, 4]


def _config(epochs: int, batch_size: int = 16384, sparse: bool = True) -> TrainingConfig:
    return TrainingConfig(epochs=epochs, batch_size=batch_size,
                          learning_rate=4e-4, seed=0, sparse_grads=sparse)


def _factory(kg, config: TrainingConfig):
    def build():
        rng = new_rng(config.seed)
        sampler = UniformNegativeSampler(kg.n_entities, rng=rng)
        return BatchIterator(kg, batch_size=config.batch_size, sampler=sampler,
                             shuffle=config.shuffle,
                             regenerate_negatives=config.regenerate_negatives,
                             rng=rng)
    return build


@pytest.mark.parametrize("workers", [1, 2])
def test_multiprocess_epoch(benchmark, workers):
    """Time one measured data-parallel epoch of SpTransE on scaled COVID-19."""
    kg = make_dataset_like("COVID19", scale=0.005, rng=0)
    config = _config(1, batch_size=4096)
    benchmark.group = "distributed-measured"
    benchmark.extra_info["workers"] = workers

    def run_epoch():
        model = SpTransE(kg.n_entities, kg.n_relations, 32, rng=0)
        trainer = MultiprocessTrainer(model, _factory(kg, config), workers, config)
        return trainer.train()

    result = benchmark.pedantic(run_epoch, rounds=1, iterations=1)
    assert result.n_workers == workers
    assert result.steps > 0


def run(workers=None, scale: float = 0.02, epochs: int = 1, dim: int = 64,
        batch_size: int = 16384, sparse: bool = True) -> list[dict]:
    """Measured vs modeled sweep over worker counts."""
    workers = workers if workers is not None else DEFAULT_WORKERS
    kg = make_dataset_like("COVID19", scale=scale, rng=0)
    config = _config(epochs, batch_size=batch_size, sparse=sparse)
    comm_model = CommunicationModel()
    rows = []
    for n in workers:
        model = SpTransE(kg.n_entities, kg.n_relations, dim, rng=0)
        measured = MultiprocessTrainer(model, _factory(kg, config), n,
                                       config, comm_model=comm_model).train()
        sim_model = SpTransE(kg.n_entities, kg.n_relations, dim, rng=0)
        simulated = DataParallelTrainer(sim_model, kg, n, config,
                                        comm_model=comm_model).train()
        steps = max(measured.steps, 1)
        rows.append({
            "workers": n,
            "steps": measured.steps,
            "measured_step_ms": 1e3 * measured.total_time / steps,
            "measured_comm_ms": 1e3 * measured.comm_time / steps,
            "modeled_comm_ms": 1e3 * measured.modeled_comm_time / steps,
            "simulated_step_ms": 1e3 * simulated.estimated_total_time / steps,
            "allreduce_mb": measured.allreduce_nbytes / 1e6,
            "final_loss": measured.final_loss,
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+", default=DEFAULT_WORKERS)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=16384)
    parser.add_argument("--dense-grads", action="store_true",
                        help="exchange dense gradients instead of row-sparse")
    parser.add_argument("--quick", action="store_true",
                        help="tiny CI-sized configuration")
    args = parser.parse_args()
    if args.quick:
        args.scale, args.dim, args.batch_size = 0.005, 16, 4096
        args.workers = [1, 2]
    rows = run(workers=args.workers, scale=args.scale, epochs=args.epochs,
               dim=args.dim, batch_size=args.batch_size,
               sparse=not args.dense_grads)
    print(format_table(
        rows,
        ["workers", "steps", "measured_step_ms", "measured_comm_ms",
         "modeled_comm_ms", "simulated_step_ms", "allreduce_mb", "final_loss"],
        title="Measured multiprocess DDP vs simulated (α–β) baseline",
    ))


if __name__ == "__main__":
    main()
