"""Appendix F / Table 9: data-parallel scaling of sparse TransE on the COVID-19 KG.

Paper reference
---------------
Table 9 trains SpTransE on the COVID-19 knowledge graph (60,820 entities, 62
relations, ~1M triplets) with PyTorch DDP on 4-64 A100 GPUs; 500-epoch time
falls from 706s (4 GPUs) to 180s (64 GPUs) — monotone but sub-linear scaling.

What this harness does
----------------------
* pytest-benchmark entries time one simulated data-parallel epoch at 2 and 8
  workers;
* ``main()`` runs the simulated DDP trainer (real gradient averaging, α–β
  all-reduce cost model) over a sweep of worker counts on a scaled COVID-19
  stand-in and prints estimated total times and speedups.  The reproducible
  shape: monotone speedup with diminishing returns as the worker count grows.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import format_table
from repro.data import make_dataset_like
from repro.models import SpTransE
from repro.training import TrainingConfig
from repro.training.distributed import CommunicationModel, scaling_sweep

DEFAULT_WORKERS = [4, 8, 16, 32, 64]


def _config(epochs: int) -> TrainingConfig:
    return TrainingConfig(epochs=epochs, batch_size=16384, learning_rate=4e-4, seed=0)


@pytest.mark.parametrize("workers", [2, 8])
def test_simulated_ddp_epoch(benchmark, workers):
    """Time one simulated data-parallel epoch of SpTransE on scaled COVID-19."""
    kg = make_dataset_like("COVID19", scale=0.005, rng=0)
    benchmark.group = "table9-scaling"
    benchmark.extra_info["workers"] = workers

    def run_epoch():
        from repro.training import DataParallelTrainer

        model = SpTransE(kg.n_entities, kg.n_relations, 32, rng=0)
        return DataParallelTrainer(model, kg, workers, _config(1)).train()

    result = benchmark.pedantic(run_epoch, rounds=1, iterations=1)
    assert result.n_workers == workers


def run(workers=None, scale: float = 0.05, epochs: int = 2, dim: int = 64) -> list[dict]:
    """Regenerate the Table-9 scaling sweep."""
    workers = workers if workers is not None else DEFAULT_WORKERS
    kg = make_dataset_like("COVID19", scale=scale, rng=0)
    results = scaling_sweep(
        lambda: SpTransE(kg.n_entities, kg.n_relations, dim, rng=0),
        kg, workers, config=_config(epochs), comm_model=CommunicationModel(),
    )
    baseline = results[0]
    rows = []
    for result in results:
        rows.append({
            "workers": result.n_workers,
            "compute_s": result.measured_compute_time,
            "comm_s": result.estimated_communication_time,
            "total_s": result.estimated_total_time,
            "speedup_vs_first": baseline.estimated_total_time
            / max(result.estimated_total_time, 1e-12),
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+", default=DEFAULT_WORKERS)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--dim", type=int, default=64)
    args = parser.parse_args()
    rows = run(workers=args.workers, scale=args.scale, epochs=args.epochs, dim=args.dim)
    print(format_table(
        rows, ["workers", "compute_s", "comm_s", "total_s", "speedup_vs_first"],
        title="Table 9 (reproduced, simulated): data-parallel scaling of SpTransE on a "
              "COVID-19-shaped KG",
    ))
    best = min(rows, key=lambda r: r["total_s"])
    last = rows[-1]
    comm_share = last["comm_s"] / max(last["total_s"], 1e-12)
    print(f"\nBest total time at {best['workers']} workers "
          f"({best['speedup_vs_first']:.2f}x over {rows[0]['workers']} workers); "
          f"communication is {100 * comm_share:.0f}% of the {last['workers']}-worker time.")
    print("The paper's qualitative claims: time falls with worker count and communication "
          "is not the bottleneck up to 64 workers.  On this substrate the curve flattens "
          "once per-shard work is interpreter-overhead dominated (see EXPERIMENTS.md); "
          "raise --scale / --dim to push the flattening point outward.")


if __name__ == "__main__":
    main()
