"""Inference serving throughput: batch coalescing and the LRU result cache.

What this harness shows
-----------------------
A serving process answering top-k queries one at a time pays the Python and
kernel-dispatch overhead of a full ``score_all_tails`` pass per query; the
:class:`~repro.serving.engine.InferenceEngine` instead coalesces a window of
concurrent queries into one vectorised scoring call, and short-circuits
repeated queries from an LRU cache.  Two experiments:

* **coalescing** — the same Q distinct queries answered (a) one engine call
  per query and (b) as coalesced batches of ``--batch`` queries.  The batched
  path should win by well over 2x at 64 concurrent queries.
* **cache sweep** — a skewed (Zipf-like) query stream replayed against
  increasing cache capacities, reporting hit-rate and queries/sec: the
  serving-cost story for power-law entity popularity.

Run ``python -m benchmarks.bench_inference_throughput --quick`` for a
seconds-long smoke version.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

import numpy as np
import pytest

from benchmarks.common import format_table
from repro.registry import ModelSpec, build_model
from repro.serving import InferenceEngine, TopKQuery


def _make_engine(n_entities: int, dim: int, cache_size: int = 0,
                 seed: int = 0) -> InferenceEngine:
    model = build_model(ModelSpec(model="transe", formulation="sparse",
                                  n_entities=n_entities, n_relations=64,
                                  embedding_dim=dim), rng=seed)
    return InferenceEngine(model, cache_size=cache_size)


def _distinct_queries(n_queries: int, n_entities: int, n_relations: int = 64,
                      k: int = 10, seed: int = 0) -> List[TopKQuery]:
    """Distinct (head, relation) pairs so caching/dedup cannot help either path."""
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < n_queries:
        pairs.add((int(rng.integers(0, n_entities)), int(rng.integers(0, n_relations))))
    return [TopKQuery(h, r, k) for h, r in sorted(pairs)]


def _zipf_queries(n_queries: int, n_distinct: int, n_entities: int,
                  k: int = 10, seed: int = 0) -> List[TopKQuery]:
    """A skewed stream over ``n_distinct`` pairs (rank-(i+1) weight ~ 1/(i+1))."""
    rng = np.random.default_rng(seed)
    universe = _distinct_queries(n_distinct, n_entities, k=k, seed=seed)
    weights = 1.0 / np.arange(1, n_distinct + 1)
    weights /= weights.sum()
    picks = rng.choice(n_distinct, size=n_queries, p=weights)
    return [universe[i] for i in picks]


# --------------------------------------------------------------------------- #
# Experiment 1: batch coalescing
# --------------------------------------------------------------------------- #
def run_coalescing(n_entities: int, dim: int, n_queries: int,
                   batch_size: int) -> Dict[str, float]:
    """Queries/sec answered one at a time vs in coalesced batches."""
    engine = _make_engine(n_entities, dim, cache_size=0)
    queries = _distinct_queries(n_queries, n_entities)

    engine.top_k_tails(0, 0, k=10)  # warm-up: allocator, closed-form path

    start = time.perf_counter()
    for q in queries:
        engine.top_k_tails(q.anchor, q.relation, k=q.k)
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    for offset in range(0, n_queries, batch_size):
        engine.top_k_tails_batch(queries[offset:offset + batch_size])
    batched_s = time.perf_counter() - start

    return {
        "n_queries": n_queries,
        "batch": batch_size,
        "single_qps": n_queries / max(single_s, 1e-12),
        "batched_qps": n_queries / max(batched_s, 1e-12),
        "speedup": single_s / max(batched_s, 1e-12),
    }


# --------------------------------------------------------------------------- #
# Experiment 2: cache hit-rate sweep
# --------------------------------------------------------------------------- #
def run_cache_sweep(n_entities: int, dim: int, n_queries: int,
                    n_distinct: int, capacities: List[int]) -> List[Dict[str, float]]:
    """Replay one skewed stream against each cache capacity."""
    stream = _zipf_queries(n_queries, n_distinct, n_entities)
    rows = []
    for capacity in capacities:
        engine = _make_engine(n_entities, dim, cache_size=capacity)
        engine.top_k_tails(0, 0, k=10)    # warm-up, excluded from the counters
        engine.cache.clear()
        engine.cache.reset_stats()
        warmup_calls = engine.stats()["scoring_calls"]
        start = time.perf_counter()
        for q in stream:
            engine.top_k_tails(q.anchor, q.relation, k=q.k)
        elapsed = time.perf_counter() - start
        stats = engine.cache.stats()
        rows.append({
            "cache_capacity": capacity,
            "hit_rate": stats["hit_rate"],
            "qps": n_queries / max(elapsed, 1e-12),
            "scoring_calls": engine.stats()["scoring_calls"] - warmup_calls,
        })
    return rows


# --------------------------------------------------------------------------- #
# Experiment 3: ANN (IVF) probe sweep — recall vs latency under Zipf traffic
# --------------------------------------------------------------------------- #
def _latencies_ms(engine: InferenceEngine, stream: List[TopKQuery],
                  nprobe: Optional[int] = None) -> np.ndarray:
    """Per-query wall latency (ms) over ``stream``, one engine call each."""
    out = np.empty(len(stream), dtype=np.float64)
    for i, q in enumerate(stream):
        start = time.perf_counter()
        engine.top_k_tails(q.anchor, q.relation, k=q.k, nprobe=nprobe)
        out[i] = (time.perf_counter() - start) * 1e3
    return out


def run_ann_sweep(n_entities: int, dim: int, partitions: int, n_queries: int,
                  n_distinct: int, nprobes: List[int], k: int = 10,
                  seed: int = 0) -> Dict[str, object]:
    """Exact vs IVF serving at increasing probe widths, on one Zipf stream.

    Builds a partitioned SpTransE artifact + IVF index in a temp directory,
    replays the same skewed query stream through the exact engine and through
    ANN engines at each ``nprobe``, and reports p50/p99 latency plus measured
    recall@``k`` against the exact answers (over the distinct query universe,
    so stream skew cannot inflate recall).
    """
    import shutil
    import tempfile

    from repro.ann import build_index_files, load_index
    from repro.models.transe import SpTransE
    from repro.training.checkpoint import save_weight_files

    directory = tempfile.mkdtemp(prefix="bench-ann-")
    try:
        model = SpTransE(n_entities, 64, dim, rng=seed, partitions=partitions)
        # A trained entity table is clustered (entities group by type), which
        # is the structure IVF exploits; iid-random init has no neighbour
        # structure at d=64 and would misrepresent both recall and the
        # auto-tuned nprobe.  Substitute a mixture-of-Gaussians table and
        # translation-scale relations (TransE relations are small offsets).
        rng = np.random.default_rng(seed)
        n_centers = max(16, 2 * int(np.sqrt(n_entities)))
        centers = rng.standard_normal((n_centers, dim))
        rows = (centers[rng.integers(0, n_centers, size=n_entities)]
                + 0.1 * rng.standard_normal((n_entities, dim)))
        model.embeddings.write_rows(np.arange(n_entities, dtype=np.int64), rows)
        model.embeddings.relations.data[...] = \
            0.05 * rng.standard_normal(model.embeddings.relations.data.shape)
        build_start = time.perf_counter()
        save_weight_files(directory, model)
        manifest = build_index_files(directory, kind="ivf", seed=seed)
        build_s = time.perf_counter() - build_start

        stream = _zipf_queries(n_queries, n_distinct, n_entities, k=k, seed=seed)
        distinct = sorted({(q.anchor, q.relation) for q in stream})

        exact_engine = InferenceEngine(model, cache_size=0)
        exact_engine.top_k_tails(0, 0, k=k)  # warm-up
        exact_lat = _latencies_ms(exact_engine, stream)
        truth = {(h, r): set(exact_engine.top_k_tails(h, r, k=k).entities)
                 for h, r in distinct}

        default_nprobe = int(manifest["nprobe"])
        sweep = sorted(set(int(p) for p in nprobes) | {default_nprobe})
        index = load_index(f"{directory}/index")
        engine = InferenceEngine(model, cache_size=0, ann_index=index)
        rows: List[Dict[str, float]] = []
        for nprobe in sweep:
            engine.top_k_tails(0, 0, k=k, nprobe=nprobe)  # warm-up
            lat = _latencies_ms(engine, stream, nprobe=nprobe)
            hits = sum(len(set(engine.top_k_tails(h, r, k=k,
                                                  nprobe=nprobe).entities)
                           & truth[(h, r)]) for h, r in distinct)
            p50 = float(np.percentile(lat, 50))
            rows.append({
                "nprobe": nprobe,
                "recall": hits / float(k * len(distinct)),
                "p50_ms": p50,
                "p99_ms": float(np.percentile(lat, 99)),
                "speedup_p50": float(np.percentile(exact_lat, 50)) / max(p50, 1e-9),
            })
        model.embeddings.close()
        return {
            "config": {"entities": n_entities, "dim": dim,
                       "partitions": partitions, "k": k,
                       "queries": n_queries, "distinct": n_distinct,
                       "n_clusters": int(manifest["total_clusters"]),
                       "default_nprobe": default_nprobe,
                       "index_build_s": build_s},
            "exact": {"p50_ms": float(np.percentile(exact_lat, 50)),
                      "p99_ms": float(np.percentile(exact_lat, 99))},
            "sweep": rows,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# --------------------------------------------------------------------------- #
# Experiment 4: serving-tier replay — goodput under SLO, threaded vs pool
# --------------------------------------------------------------------------- #
def _save_bench_checkpoint(path: str, n_entities: int, dim: int,
                           seed: int = 0) -> None:
    """Write a synthetic checkpoint both serving tiers can load via the CLI."""
    from repro.training.checkpoint import save_checkpoint

    model = build_model(ModelSpec(model="transe", formulation="sparse",
                                  n_entities=n_entities, n_relations=64,
                                  embedding_dim=dim), rng=seed)
    save_checkpoint(path, model)


def _start_cli_server(checkpoint: str, workers: int, deadline_ms: float,
                      timeout_s: float = 120.0):
    """Launch ``sptransx serve`` as a subprocess; returns ``(proc, url)``.

    ``workers=0`` starts the threaded tier, ``workers>0`` the pool tier.  The
    CLI prints one machine-readable JSON line once the socket is bound; we
    block on it (with a watchdog) to learn the ephemeral port.
    """
    import json
    import os
    import subprocess
    import sys

    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--checkpoint", checkpoint, "--port", "0",
           "--workers", str(workers)]
    if workers > 0:
        cmd += ["--deadline-ms", str(deadline_ms)]
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, env=env, text=True)
    line: List[str] = []

    def _read() -> None:
        line.append(proc.stdout.readline())

    import threading
    reader = threading.Thread(target=_read, daemon=True)
    reader.start()
    reader.join(timeout=timeout_s)
    if not line or not line[0]:
        proc.kill()
        raise RuntimeError(f"server did not start within {timeout_s:g}s: {cmd}")
    started = json.loads(line[0])
    return proc, started["serving"]


def _stop_cli_server(proc) -> None:
    import signal

    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=15.0)
    except Exception:  # noqa: BLE001 — last resort for a wedged server
        proc.kill()
        proc.wait(timeout=5.0)


class _ReplayClient:
    """One sender thread's persistent keep-alive connection + outcome log."""

    def __init__(self, url: str, deadline_ms: float) -> None:
        import urllib.parse

        parsed = urllib.parse.urlparse(url)
        self.host, self.port = parsed.hostname, parsed.port
        self.deadline_ms = deadline_ms
        # Generous network timeout: overload is judged against the SLO
        # client-side, not by tearing connections down early.
        self.timeout_s = max(5.0, deadline_ms / 1e3 * 100)
        self.conn = None
        self.latencies_ms: List[float] = []
        self.within_deadline = 0
        self.shed = 0
        self.errors = 0
        self.lagged = 0

    def _connect(self):
        import http.client

        self.conn = http.client.HTTPConnection(self.host, self.port,
                                               timeout=self.timeout_s)
        return self.conn

    def send(self, query: TopKQuery) -> None:
        import json

        body = json.dumps({"head": query.anchor, "relation": query.relation,
                           "k": query.k}).encode("utf-8")
        conn = self.conn or self._connect()
        start = time.perf_counter()
        try:
            conn.request("POST", "/v1/top_k_tails", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            response.read()
            status = response.status
        except Exception:  # noqa: BLE001 — timeout/reset: count and reconnect
            self.errors += 1
            try:
                conn.close()
            finally:
                self.conn = None
            return
        latency_ms = (time.perf_counter() - start) * 1e3
        if status == 200:
            self.latencies_ms.append(latency_ms)
            if latency_ms <= self.deadline_ms:
                self.within_deadline += 1
        elif status == 503:
            self.shed += 1
        else:
            self.errors += 1

    def close(self) -> None:
        if self.conn is not None:
            self.conn.close()


def _summarise_replay(clients: List[_ReplayClient], offered: int,
                      wall_s: float, rate_qps: Optional[float]) -> Dict[str, float]:
    latencies = np.array([ms for c in clients for ms in c.latencies_ms],
                         dtype=np.float64)
    completed = int(latencies.size)
    within = sum(c.within_deadline for c in clients)
    row = {
        "offered": offered,
        "completed": completed,
        "within_deadline": within,
        "shed": sum(c.shed for c in clients),
        "errors": sum(c.errors for c in clients),
        "lagged": sum(c.lagged for c in clients),
        "wall_s": wall_s,
        "offered_qps": (rate_qps if rate_qps is not None
                        else offered / max(wall_s, 1e-9)),
        "completed_qps": completed / max(wall_s, 1e-9),
        "goodput_qps": within / max(wall_s, 1e-9),
    }
    for q, label in ((50, "p50_ms"), (95, "p95_ms"), (99, "p99_ms")):
        row[label] = float(np.percentile(latencies, q)) if completed else 0.0
    return row


def _senders_for_rate(rate_qps: float, deadline_ms: float,
                      base_senders: int, cap: int) -> int:
    """Enough sender threads that client concurrency never governs the server.

    An open-loop generator is only open-loop while it has a free sender for
    every arrival; with too few, the senders themselves become a closed-loop
    governor that bounds the server's queue at ``senders`` in flight and an
    overloaded FIFO tier never actually collapses past its deadline.  Size
    the pool at ~8 deadline-widths of in-flight budget for the offered rate,
    bounded by ``cap`` so the client side stays runnable.
    """
    need = int(np.ceil(rate_qps * (deadline_ms / 1e3) * 8))
    return int(min(cap, max(base_senders, need)))


def _replay_open_loop(url: str, stream: List[TopKQuery], rate_qps: float,
                      deadline_ms: float, senders: int,
                      seed: int = 0) -> Dict[str, float]:
    """Poisson arrivals at ``rate_qps`` over a Zipf key stream.

    Arrival times are pre-drawn and striped over ``senders`` threads; a
    sender that falls behind its schedule fires immediately and counts the
    arrival as ``lagged`` (the client-side symptom of server backlog).
    """
    import threading

    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_qps, size=len(stream)))
    clients = [_ReplayClient(url, deadline_ms) for _ in range(senders)]

    base = time.perf_counter() + 0.05  # shared epoch: let every thread start

    def run(sender: int) -> None:
        client = clients[sender]
        for i in range(sender, len(stream), senders):
            target = base + arrivals[i]
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            else:
                client.lagged += 1
            client.send(stream[i])
        client.close()

    threads = [threading.Thread(target=run, args=(s,)) for s in range(senders)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - base
    row = _summarise_replay(clients, len(stream), wall_s, rate_qps)
    row["rate_qps"] = rate_qps
    return row


def _replay_closed_loop(url: str, stream: List[TopKQuery], concurrency: int,
                        deadline_ms: float) -> Dict[str, float]:
    """``concurrency`` keep-alive clients issuing back-to-back requests."""
    import threading

    clients = [_ReplayClient(url, deadline_ms) for _ in range(concurrency)]
    start = time.perf_counter()

    def run(sender: int) -> None:
        client = clients[sender]
        for i in range(sender, len(stream), concurrency):
            client.send(stream[i])
        client.close()

    threads = [threading.Thread(target=run, args=(s,))
               for s in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - start
    row = _summarise_replay(clients, len(stream), wall_s, rate_qps=None)
    row["concurrency"] = concurrency
    return row


def run_replay(n_entities: int, dim: int, workers: int, deadline_ms: float,
               rates: List[float], per_rate_s: float, senders: int,
               closed_concurrency: int, n_distinct: int,
               seed: int = 0, sender_cap: int = 256) -> Dict[str, object]:
    """The tentpole experiment: threaded tier vs pool tier under load.

    For each tier, one closed-loop run (peak capacity) and an open-loop
    Poisson sweep over ``rates``.  The headline number is the goodput-under-
    SLO ratio at the highest offered rate: past saturation the unprotected
    threaded tier queues every request beyond its deadline (goodput falls
    toward zero) while the admission-controlled pool sheds the excess and
    keeps answering the rest inside the SLO.
    """
    import os
    import tempfile

    resolved_rates: Optional[List[float]] = list(rates) if rates else None
    report: Dict[str, object] = {
        "config": {"entities": n_entities, "dim": dim, "workers": workers,
                   "deadline_ms": deadline_ms, "rates_qps": resolved_rates,
                   "per_rate_s": per_rate_s, "senders": senders,
                   "closed_concurrency": closed_concurrency,
                   "distinct": n_distinct},
        "tiers": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench-replay-") as tmp:
        checkpoint = os.path.join(tmp, "bench.npz")
        _save_bench_checkpoint(checkpoint, n_entities, dim, seed=seed)
        for tier, tier_workers in (("threaded", 0), ("pool", workers)):
            proc, url = _start_cli_server(checkpoint, tier_workers, deadline_ms)
            try:
                warmup = _zipf_queries(max(8, senders), n_distinct,
                                       n_entities, seed=seed + 1)
                _replay_closed_loop(url, warmup, min(4, senders), deadline_ms)
                closed_stream = _zipf_queries(
                    max(64, int(closed_concurrency * per_rate_s * 8)),
                    n_distinct, n_entities, seed=seed + 2)
                closed = _replay_closed_loop(url, closed_stream,
                                             closed_concurrency, deadline_ms)
                if resolved_rates is None:
                    # Anchor the sweep to the threaded tier's measured peak:
                    # half, at, and well past saturation.  Both tiers then see
                    # the same offered-load schedule.  Closed-loop capacity
                    # underestimates the tier's batched open-loop throughput
                    # (concurrency caps the coalesced batch size), so the top
                    # multipliers reach 4-8x to land decisively past the knee.
                    capacity = max(closed["completed_qps"], 4.0)
                    resolved_rates = [round(capacity * f, 1)
                                      for f in (0.5, 1.0, 4.0, 8.0)]
                    report["config"]["rates_qps"] = resolved_rates
                sweep = []
                for rate in resolved_rates:
                    stream = _zipf_queries(max(16, int(rate * per_rate_s)),
                                           n_distinct, n_entities,
                                           seed=seed + 3)
                    rate_senders = _senders_for_rate(rate, deadline_ms,
                                                     senders, sender_cap)
                    sweep.append(_replay_open_loop(url, stream, rate,
                                                   deadline_ms, rate_senders,
                                                   seed=seed + 4))
                report["tiers"][tier] = {"closed_loop": closed,
                                         "open_loop": sweep}
            finally:
                _stop_cli_server(proc)
    threaded = report["tiers"]["threaded"]["open_loop"]
    pool = report["tiers"]["pool"]["open_loop"]
    saturated = threaded[-1]
    report["goodput_ratio_at_saturation"] = (
        pool[-1]["goodput_qps"] / max(saturated["goodput_qps"], 1e-9))
    # The knee: the highest offered rate the pool still answers with p99
    # inside the deadline (sheds excluded — they are refusals, not answers).
    knee = None
    for row in pool:
        if row["completed"] and row["p99_ms"] <= deadline_ms:
            knee = row
    report["pool_knee"] = knee
    return report


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points (small scale)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("batched", [False, True], ids=["single", "batched"])
def test_topk_throughput(benchmark, batched):
    """Time 32 distinct top-k queries, one call per query vs one batched call."""
    engine = _make_engine(2_000, 32, cache_size=0)
    queries = _distinct_queries(32, 2_000)
    engine.top_k_tails(0, 0, k=10)

    def single():
        for q in queries:
            engine.top_k_tails(q.anchor, q.relation, k=q.k)

    def coalesced():
        engine.top_k_tails_batch(queries)

    benchmark.group = "inference-topk-32-queries"
    benchmark.extra_info["batched"] = batched
    benchmark(coalesced if batched else single)


def test_cached_repeat_query(benchmark):
    """A repeated hot query should be answered from the LRU, not rescored."""
    engine = _make_engine(2_000, 32, cache_size=64)
    engine.top_k_tails(1, 1, k=10)
    benchmark.group = "inference-cache"
    benchmark(engine.top_k_tails, 1, 1, 10)
    assert engine.cache.stats()["hit_rate"] > 0.9


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entities", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--queries", type=int, default=256,
                        help="total queries per experiment")
    parser.add_argument("--batch", type=int, default=64,
                        help="coalesced batch size (the concurrency level)")
    parser.add_argument("--distinct", type=int, default=128,
                        help="distinct (head, relation) pairs in the cache sweep")
    parser.add_argument("--cache-sizes", type=int, nargs="+",
                        default=[0, 16, 64, 256])
    parser.add_argument("--ann", action="store_true",
                        help="run the IVF probe sweep (recall vs p50/p99 "
                             "against the exact engine) instead of the "
                             "coalescing/cache experiments")
    parser.add_argument("--partitions", type=int, default=8,
                        help="entity-table partitions for the --ann sweep")
    parser.add_argument("--nprobes", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16, 32],
                        help="IVF probe widths swept by --ann")
    parser.add_argument("--replay", action="store_true",
                        help="run the serving-tier replay (threaded vs pool "
                             "subprocess servers under closed-loop and "
                             "open-loop Poisson/Zipf load) instead of the "
                             "in-process experiments")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool-tier worker processes for --replay")
    parser.add_argument("--deadline-ms", type=float, default=50.0,
                        help="per-request SLO for --replay goodput accounting")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="open-loop offered rates (qps) for --replay; "
                             "default derives 0.5/1/4/8x the threaded tier's "
                             "measured closed-loop capacity")
    parser.add_argument("--per-rate-s", type=float, default=10.0,
                        help="seconds of offered load per --replay rate point")
    parser.add_argument("--senders", type=int, default=32,
                        help="minimum open-loop sender threads for --replay "
                             "(scaled up with the offered rate so client "
                             "concurrency never caps the server's queue)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="closed-loop client connections for --replay")
    parser.add_argument("--json-out", default=None,
                        help="also write the --ann/--replay results to this "
                             "JSON file")
    parser.add_argument("--quick", action="store_true",
                        help="small vocabulary/dimension for a smoke run")
    args = parser.parse_args()

    entities, dim, queries, batch, distinct = (
        args.entities, args.dim, args.queries, args.batch, args.distinct)
    if args.quick:
        entities, dim = min(entities, 2_000), min(dim, 32)
        queries, batch, distinct = min(queries, 128), min(batch, 32), min(distinct, 64)

    if args.replay:
        per_rate_s = min(args.per_rate_s, 3.0) if args.quick else args.per_rate_s
        senders = min(args.senders, 8) if args.quick else args.senders
        concurrency = (min(args.concurrency, 8) if args.quick
                       else args.concurrency)
        sender_cap = 64 if args.quick else 256
        report = run_replay(entities, dim, args.workers, args.deadline_ms,
                            args.rates or [], per_rate_s, senders,
                            concurrency, distinct, sender_cap=sender_cap)
        config = report["config"]
        for tier in ("threaded", "pool"):
            rows = [dict(row) for row in report["tiers"][tier]["open_loop"]]
            print(format_table(
                rows,
                ["rate_qps", "offered", "completed", "within_deadline",
                 "shed", "errors", "goodput_qps", "p50_ms", "p99_ms"],
                title=(f"Open-loop replay, {tier} tier (N={config['entities']}"
                       f", d={config['dim']}, deadline "
                       f"{config['deadline_ms']:g} ms)"),
            ))
            print()
        ratio = report["goodput_ratio_at_saturation"]
        print(f"goodput-under-SLO ratio (pool/threaded) at saturation: "
              f"{ratio:.2f}x")
        knee = report["pool_knee"]
        if knee is not None:
            print(f"pool knee: {knee['rate_qps']:g} qps offered, p99 "
                  f"{knee['p99_ms']:.2f} ms (deadline "
                  f"{config['deadline_ms']:g} ms)")
        if args.json_out:
            import json

            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"\nJSON written to {args.json_out}")
        return

    if args.ann:
        partitions = min(args.partitions, 4) if args.quick else args.partitions
        report = run_ann_sweep(entities, dim, partitions, queries, distinct,
                               args.nprobes)
        config = report["config"]
        print(format_table(
            report["sweep"],
            ["nprobe", "recall", "p50_ms", "p99_ms", "speedup_p50"],
            title=(f"IVF probe sweep (SpTransE, N={config['entities']}, "
                   f"d={config['dim']}, {config['partitions']} partitions, "
                   f"{config['n_clusters']} clusters; exact p50 "
                   f"{report['exact']['p50_ms']:.3f} ms, default nprobe "
                   f"{config['default_nprobe']})"),
        ))
        if args.json_out:
            import json

            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"\nJSON written to {args.json_out}")
        return

    coalescing = run_coalescing(entities, dim, queries, batch)
    print(format_table(
        [coalescing],
        ["n_queries", "batch", "single_qps", "batched_qps", "speedup"],
        title=f"Batch coalescing (SpTransE, N={entities}, d={dim})",
    ))
    print()
    sweep = run_cache_sweep(entities, dim, queries, distinct, args.cache_sizes)
    print(format_table(
        sweep,
        ["cache_capacity", "hit_rate", "qps", "scoring_calls"],
        title=f"LRU cache sweep ({queries} Zipf-skewed queries over "
              f"{distinct} distinct pairs)",
    ))


if __name__ == "__main__":
    main()
