"""Inference serving throughput: batch coalescing and the LRU result cache.

What this harness shows
-----------------------
A serving process answering top-k queries one at a time pays the Python and
kernel-dispatch overhead of a full ``score_all_tails`` pass per query; the
:class:`~repro.serving.engine.InferenceEngine` instead coalesces a window of
concurrent queries into one vectorised scoring call, and short-circuits
repeated queries from an LRU cache.  Two experiments:

* **coalescing** — the same Q distinct queries answered (a) one engine call
  per query and (b) as coalesced batches of ``--batch`` queries.  The batched
  path should win by well over 2x at 64 concurrent queries.
* **cache sweep** — a skewed (Zipf-like) query stream replayed against
  increasing cache capacities, reporting hit-rate and queries/sec: the
  serving-cost story for power-law entity popularity.

Run ``python -m benchmarks.bench_inference_throughput --quick`` for a
seconds-long smoke version.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

import numpy as np
import pytest

from benchmarks.common import format_table
from repro.registry import ModelSpec, build_model
from repro.serving import InferenceEngine, TopKQuery


def _make_engine(n_entities: int, dim: int, cache_size: int = 0,
                 seed: int = 0) -> InferenceEngine:
    model = build_model(ModelSpec(model="transe", formulation="sparse",
                                  n_entities=n_entities, n_relations=64,
                                  embedding_dim=dim), rng=seed)
    return InferenceEngine(model, cache_size=cache_size)


def _distinct_queries(n_queries: int, n_entities: int, n_relations: int = 64,
                      k: int = 10, seed: int = 0) -> List[TopKQuery]:
    """Distinct (head, relation) pairs so caching/dedup cannot help either path."""
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < n_queries:
        pairs.add((int(rng.integers(0, n_entities)), int(rng.integers(0, n_relations))))
    return [TopKQuery(h, r, k) for h, r in sorted(pairs)]


def _zipf_queries(n_queries: int, n_distinct: int, n_entities: int,
                  k: int = 10, seed: int = 0) -> List[TopKQuery]:
    """A skewed stream over ``n_distinct`` pairs (rank-(i+1) weight ~ 1/(i+1))."""
    rng = np.random.default_rng(seed)
    universe = _distinct_queries(n_distinct, n_entities, k=k, seed=seed)
    weights = 1.0 / np.arange(1, n_distinct + 1)
    weights /= weights.sum()
    picks = rng.choice(n_distinct, size=n_queries, p=weights)
    return [universe[i] for i in picks]


# --------------------------------------------------------------------------- #
# Experiment 1: batch coalescing
# --------------------------------------------------------------------------- #
def run_coalescing(n_entities: int, dim: int, n_queries: int,
                   batch_size: int) -> Dict[str, float]:
    """Queries/sec answered one at a time vs in coalesced batches."""
    engine = _make_engine(n_entities, dim, cache_size=0)
    queries = _distinct_queries(n_queries, n_entities)

    engine.top_k_tails(0, 0, k=10)  # warm-up: allocator, closed-form path

    start = time.perf_counter()
    for q in queries:
        engine.top_k_tails(q.anchor, q.relation, k=q.k)
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    for offset in range(0, n_queries, batch_size):
        engine.top_k_tails_batch(queries[offset:offset + batch_size])
    batched_s = time.perf_counter() - start

    return {
        "n_queries": n_queries,
        "batch": batch_size,
        "single_qps": n_queries / max(single_s, 1e-12),
        "batched_qps": n_queries / max(batched_s, 1e-12),
        "speedup": single_s / max(batched_s, 1e-12),
    }


# --------------------------------------------------------------------------- #
# Experiment 2: cache hit-rate sweep
# --------------------------------------------------------------------------- #
def run_cache_sweep(n_entities: int, dim: int, n_queries: int,
                    n_distinct: int, capacities: List[int]) -> List[Dict[str, float]]:
    """Replay one skewed stream against each cache capacity."""
    stream = _zipf_queries(n_queries, n_distinct, n_entities)
    rows = []
    for capacity in capacities:
        engine = _make_engine(n_entities, dim, cache_size=capacity)
        engine.top_k_tails(0, 0, k=10)    # warm-up, excluded from the counters
        engine.cache.clear()
        engine.cache.reset_stats()
        warmup_calls = engine.stats()["scoring_calls"]
        start = time.perf_counter()
        for q in stream:
            engine.top_k_tails(q.anchor, q.relation, k=q.k)
        elapsed = time.perf_counter() - start
        stats = engine.cache.stats()
        rows.append({
            "cache_capacity": capacity,
            "hit_rate": stats["hit_rate"],
            "qps": n_queries / max(elapsed, 1e-12),
            "scoring_calls": engine.stats()["scoring_calls"] - warmup_calls,
        })
    return rows


# --------------------------------------------------------------------------- #
# Experiment 3: ANN (IVF) probe sweep — recall vs latency under Zipf traffic
# --------------------------------------------------------------------------- #
def _latencies_ms(engine: InferenceEngine, stream: List[TopKQuery],
                  nprobe: Optional[int] = None) -> np.ndarray:
    """Per-query wall latency (ms) over ``stream``, one engine call each."""
    out = np.empty(len(stream), dtype=np.float64)
    for i, q in enumerate(stream):
        start = time.perf_counter()
        engine.top_k_tails(q.anchor, q.relation, k=q.k, nprobe=nprobe)
        out[i] = (time.perf_counter() - start) * 1e3
    return out


def run_ann_sweep(n_entities: int, dim: int, partitions: int, n_queries: int,
                  n_distinct: int, nprobes: List[int], k: int = 10,
                  seed: int = 0) -> Dict[str, object]:
    """Exact vs IVF serving at increasing probe widths, on one Zipf stream.

    Builds a partitioned SpTransE artifact + IVF index in a temp directory,
    replays the same skewed query stream through the exact engine and through
    ANN engines at each ``nprobe``, and reports p50/p99 latency plus measured
    recall@``k`` against the exact answers (over the distinct query universe,
    so stream skew cannot inflate recall).
    """
    import shutil
    import tempfile

    from repro.ann import build_index_files, load_index
    from repro.models.transe import SpTransE
    from repro.training.checkpoint import save_weight_files

    directory = tempfile.mkdtemp(prefix="bench-ann-")
    try:
        model = SpTransE(n_entities, 64, dim, rng=seed, partitions=partitions)
        # A trained entity table is clustered (entities group by type), which
        # is the structure IVF exploits; iid-random init has no neighbour
        # structure at d=64 and would misrepresent both recall and the
        # auto-tuned nprobe.  Substitute a mixture-of-Gaussians table and
        # translation-scale relations (TransE relations are small offsets).
        rng = np.random.default_rng(seed)
        n_centers = max(16, 2 * int(np.sqrt(n_entities)))
        centers = rng.standard_normal((n_centers, dim))
        rows = (centers[rng.integers(0, n_centers, size=n_entities)]
                + 0.1 * rng.standard_normal((n_entities, dim)))
        model.embeddings.write_rows(np.arange(n_entities, dtype=np.int64), rows)
        model.embeddings.relations.data[...] = \
            0.05 * rng.standard_normal(model.embeddings.relations.data.shape)
        build_start = time.perf_counter()
        save_weight_files(directory, model)
        manifest = build_index_files(directory, kind="ivf", seed=seed)
        build_s = time.perf_counter() - build_start

        stream = _zipf_queries(n_queries, n_distinct, n_entities, k=k, seed=seed)
        distinct = sorted({(q.anchor, q.relation) for q in stream})

        exact_engine = InferenceEngine(model, cache_size=0)
        exact_engine.top_k_tails(0, 0, k=k)  # warm-up
        exact_lat = _latencies_ms(exact_engine, stream)
        truth = {(h, r): set(exact_engine.top_k_tails(h, r, k=k).entities)
                 for h, r in distinct}

        default_nprobe = int(manifest["nprobe"])
        sweep = sorted(set(int(p) for p in nprobes) | {default_nprobe})
        index = load_index(f"{directory}/index")
        engine = InferenceEngine(model, cache_size=0, ann_index=index)
        rows: List[Dict[str, float]] = []
        for nprobe in sweep:
            engine.top_k_tails(0, 0, k=k, nprobe=nprobe)  # warm-up
            lat = _latencies_ms(engine, stream, nprobe=nprobe)
            hits = sum(len(set(engine.top_k_tails(h, r, k=k,
                                                  nprobe=nprobe).entities)
                           & truth[(h, r)]) for h, r in distinct)
            p50 = float(np.percentile(lat, 50))
            rows.append({
                "nprobe": nprobe,
                "recall": hits / float(k * len(distinct)),
                "p50_ms": p50,
                "p99_ms": float(np.percentile(lat, 99)),
                "speedup_p50": float(np.percentile(exact_lat, 50)) / max(p50, 1e-9),
            })
        model.embeddings.close()
        return {
            "config": {"entities": n_entities, "dim": dim,
                       "partitions": partitions, "k": k,
                       "queries": n_queries, "distinct": n_distinct,
                       "n_clusters": int(manifest["total_clusters"]),
                       "default_nprobe": default_nprobe,
                       "index_build_s": build_s},
            "exact": {"p50_ms": float(np.percentile(exact_lat, 50)),
                      "p99_ms": float(np.percentile(exact_lat, 99))},
            "sweep": rows,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points (small scale)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("batched", [False, True], ids=["single", "batched"])
def test_topk_throughput(benchmark, batched):
    """Time 32 distinct top-k queries, one call per query vs one batched call."""
    engine = _make_engine(2_000, 32, cache_size=0)
    queries = _distinct_queries(32, 2_000)
    engine.top_k_tails(0, 0, k=10)

    def single():
        for q in queries:
            engine.top_k_tails(q.anchor, q.relation, k=q.k)

    def coalesced():
        engine.top_k_tails_batch(queries)

    benchmark.group = "inference-topk-32-queries"
    benchmark.extra_info["batched"] = batched
    benchmark(coalesced if batched else single)


def test_cached_repeat_query(benchmark):
    """A repeated hot query should be answered from the LRU, not rescored."""
    engine = _make_engine(2_000, 32, cache_size=64)
    engine.top_k_tails(1, 1, k=10)
    benchmark.group = "inference-cache"
    benchmark(engine.top_k_tails, 1, 1, 10)
    assert engine.cache.stats()["hit_rate"] > 0.9


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entities", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--queries", type=int, default=256,
                        help="total queries per experiment")
    parser.add_argument("--batch", type=int, default=64,
                        help="coalesced batch size (the concurrency level)")
    parser.add_argument("--distinct", type=int, default=128,
                        help="distinct (head, relation) pairs in the cache sweep")
    parser.add_argument("--cache-sizes", type=int, nargs="+",
                        default=[0, 16, 64, 256])
    parser.add_argument("--ann", action="store_true",
                        help="run the IVF probe sweep (recall vs p50/p99 "
                             "against the exact engine) instead of the "
                             "coalescing/cache experiments")
    parser.add_argument("--partitions", type=int, default=8,
                        help="entity-table partitions for the --ann sweep")
    parser.add_argument("--nprobes", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16, 32],
                        help="IVF probe widths swept by --ann")
    parser.add_argument("--json-out", default=None,
                        help="also write the --ann sweep results to this JSON file")
    parser.add_argument("--quick", action="store_true",
                        help="small vocabulary/dimension for a smoke run")
    args = parser.parse_args()

    entities, dim, queries, batch, distinct = (
        args.entities, args.dim, args.queries, args.batch, args.distinct)
    if args.quick:
        entities, dim = min(entities, 2_000), min(dim, 32)
        queries, batch, distinct = min(queries, 128), min(batch, 32), min(distinct, 64)

    if args.ann:
        partitions = min(args.partitions, 4) if args.quick else args.partitions
        report = run_ann_sweep(entities, dim, partitions, queries, distinct,
                               args.nprobes)
        config = report["config"]
        print(format_table(
            report["sweep"],
            ["nprobe", "recall", "p50_ms", "p99_ms", "speedup_p50"],
            title=(f"IVF probe sweep (SpTransE, N={config['entities']}, "
                   f"d={config['dim']}, {config['partitions']} partitions, "
                   f"{config['n_clusters']} clusters; exact p50 "
                   f"{report['exact']['p50_ms']:.3f} ms, default nprobe "
                   f"{config['default_nprobe']})"),
        ))
        if args.json_out:
            import json

            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"\nJSON written to {args.json_out}")
        return

    coalescing = run_coalescing(entities, dim, queries, batch)
    print(format_table(
        [coalescing],
        ["n_queries", "batch", "single_qps", "batched_qps", "speedup"],
        title=f"Batch coalescing (SpTransE, N={entities}, d={dim})",
    ))
    print()
    sweep = run_cache_sweep(entities, dim, queries, distinct, args.cache_sizes)
    print(format_table(
        sweep,
        ["cache_capacity", "hit_rate", "qps", "scoring_calls"],
        title=f"LRU cache sweep ({queries} Zipf-skewed queries over "
              f"{distinct} distinct pairs)",
    ))


if __name__ == "__main__":
    main()
