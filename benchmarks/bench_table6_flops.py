"""Table 6: average FLOP count per model, sparse vs dense.

Paper reference
---------------
Table 6 reports perf-measured FLOP counts (x10^10) averaged over the seven
datasets; SpTransX is lower than every baseline for every model (e.g. 220 vs
483.87 for TransE against TorchKGE).

What this harness does
----------------------
* pytest-benchmark entries time the FLOP-counting instrumentation;
* ``main()`` counts analytic FLOPs of one training step for every (dataset,
  model, formulation) pair and prints per-model averages.

Deviation note
--------------
The paper measures hardware FLOPs of whole frameworks, where the non-sparse
baselines execute many auxiliary kernels the unified SpMM path avoids.  Our
analytic counter only counts the mathematical operations of the score
function, loss, and gradients, so the sparse and dense paths come out close to
each other (sparse ≈ 1.0-1.5x dense for ``hrt`` models, below dense for the
projection-heavy TransR).  EXPERIMENTS.md discusses this difference; the
harness reports the measured ratios so the deviation is visible rather than
hidden.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import (
    DATASETS,
    DEFAULT_DIM,
    DEFAULT_SCALE,
    MODEL_PAIRS,
    build_model,
    format_table,
    load_scaled_dataset,
    make_batch,
)
from repro.optim import Adam
from repro.profiling import count_training_flops


@pytest.mark.parametrize("formulation", ["sparse", "dense"])
def test_flop_counting(benchmark, formulation):
    """Time the instrumented FLOP count of one TransE step."""
    kg = load_scaled_dataset("WN18RR")
    model = build_model("TransE", formulation, kg)
    batch = make_batch(kg, batch_size=4096)
    optimizer = Adam(model.parameters(), lr=4e-4)
    benchmark.group = "table6-flops"
    benchmark.extra_info["formulation"] = formulation
    breakdown = benchmark(count_training_flops, model, batch, optimizer)
    assert breakdown.total > 0


def run(scale: float = DEFAULT_SCALE, dim: int = DEFAULT_DIM,
        batch_size: int = 4096, include_step: bool = True) -> list[dict]:
    """Regenerate the Table-6 FLOP comparison (analytic counts)."""
    rows = []
    for model_name in MODEL_PAIRS:
        totals = {"sparse": 0.0, "dense": 0.0}
        for dataset in DATASETS:
            kg = load_scaled_dataset(dataset, scale=scale)
            batch = make_batch(kg, batch_size=min(batch_size, kg.n_triples))
            for formulation in totals:
                model = build_model(model_name, formulation, kg, embedding_dim=dim)
                optimizer = Adam(model.parameters(), lr=4e-4) if include_step else None
                breakdown = count_training_flops(model, batch, optimizer)
                totals[formulation] += breakdown.total
        n = len(DATASETS)
        rows.append({
            "model": model_name,
            "sparse_gflops": totals["sparse"] / n / 1e9,
            "dense_gflops": totals["dense"] / n / 1e9,
            "sparse/dense": totals["sparse"] / max(totals["dense"], 1e-12),
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--batch-size", type=int, default=4096)
    args = parser.parse_args()
    rows = run(scale=args.scale, dim=args.dim, batch_size=args.batch_size)
    print(format_table(
        rows, ["model", "sparse_gflops", "dense_gflops", "sparse/dense"],
        title="Table 6 (reproduced, analytic): FLOPs of one training step averaged over datasets",
    ))
    print("\nNote: analytic arithmetic counts; see the module docstring and EXPERIMENTS.md "
          "for why the paper's measured reduction is larger.")


if __name__ == "__main__":
    main()
