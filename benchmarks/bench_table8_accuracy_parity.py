"""Section 6.2.5 / Appendix E (Table 8): Hits@10 parity between sparse and dense training.

Paper reference
---------------
The paper reports that the sparse formulation does not change model accuracy:
on WN18, SpTransX's TransE / TorusE / TransH reach 0.72 / 0.63 / 0.59 Hits@10
vs TorchKGE's 0.74 / 0.63 / 0.60 after 100 epochs, and Appendix E's Table 8
shows multi-seed averages where SpTransX matches or slightly exceeds TorchKGE.

What this harness does
----------------------
* a pytest-benchmark entry times one parity cell (train sparse + dense, eval);
* ``main()`` trains the sparse and dense variant of each model on a WN18-like
  synthetic KG with learnable translational structure across several seeds and
  prints mean ± std filtered Hits@10 per (model, formulation).  The
  reproducible claim is parity: the two columns should agree within noise.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from benchmarks.common import format_table
from repro.baselines import DenseTorusE, DenseTransE, DenseTransH
from repro.data import generate_learnable_kg
from repro.evaluation import evaluate_link_prediction
from repro.models import SpTorusE, SpTransE, SpTransH
from repro.training import Trainer, TrainingConfig

PAIRS = {
    "TransE": (SpTransE, DenseTransE),
    "TransH": (SpTransH, DenseTransH),
    "TorusE": (SpTorusE, DenseTorusE),
}


def _dataset(seed: int = 0):
    return generate_learnable_kg(300, 10, 3000, latent_dim=16, noise=0.05,
                                 rng=seed, test_fraction=0.1)


def _hits(model, kg, seed: int, epochs: int) -> float:
    config = TrainingConfig(epochs=epochs, batch_size=1024, learning_rate=0.05,
                            margin=0.5, optimizer="adam", seed=seed)
    Trainer(model, kg, config).train()
    return evaluate_link_prediction(model, kg.split.test,
                                    known_triples=kg.known_triples(), ks=(10,)).hits[10]


def _build_pair(model_name: str, sparse_cls, dense_cls, kg, seed: int, dim: int):
    """Build the sparse and dense models from *identical* initial parameters.

    The paper's parity claim is about the formulation, not the initialisation,
    so the dense model's tables are copied into the sparse model before
    training (the same protocol as the equivalence tests).
    """
    dense = dense_cls(kg.n_entities, kg.n_relations, dim, rng=seed)
    sparse = sparse_cls(kg.n_entities, kg.n_relations, dim, rng=seed + 1000)
    if model_name in ("TransE", "TorusE"):
        sparse.embeddings.load_pretrained(dense.entity_embeddings.weight.data,
                                          dense.relation_embeddings.weight.data)
    elif model_name == "TransH":
        sparse.entity_embeddings.data[...] = dense.entity_embeddings.weight.data
        sparse.translations.weight.data[...] = dense.translations.weight.data
        sparse.normals.weight.data[...] = dense.normals.weight.data
    return sparse, dense


def test_transe_parity_cell(benchmark):
    """Time one sparse-vs-dense parity measurement for TransE."""
    kg = _dataset(0)
    benchmark.group = "table8-parity"

    def cell():
        sparse, dense = _build_pair("TransE", SpTransE, DenseTransE, kg, 0, 32)
        return (_hits(sparse, kg, 0, epochs=10), _hits(dense, kg, 0, epochs=10))

    sparse_hits, dense_hits = benchmark.pedantic(cell, rounds=1, iterations=1)
    assert abs(sparse_hits - dense_hits) < 0.3


def run(seeds=(0, 1, 2), epochs: int = 30, dim: int = 32) -> list[dict]:
    """Regenerate the Table-8 parity comparison."""
    rows = []
    for model_name, (sparse_cls, dense_cls) in PAIRS.items():
        sparse_scores, dense_scores = [], []
        for seed in seeds:
            kg = _dataset(seed)
            sparse, dense = _build_pair(model_name, sparse_cls, dense_cls, kg, seed, dim)
            sparse_scores.append(_hits(sparse, kg, seed, epochs))
            dense_scores.append(_hits(dense, kg, seed, epochs))
        rows.append({
            "model": model_name,
            "sparse_hits@10": float(np.mean(sparse_scores)),
            "sparse_std": float(np.std(sparse_scores)),
            "dense_hits@10": float(np.mean(dense_scores)),
            "dense_std": float(np.std(dense_scores)),
            "gap": float(np.mean(sparse_scores) - np.mean(dense_scores)),
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--dim", type=int, default=32)
    args = parser.parse_args()
    rows = run(seeds=args.seeds, epochs=args.epochs, dim=args.dim)
    print(format_table(
        rows,
        ["model", "sparse_hits@10", "sparse_std", "dense_hits@10", "dense_std", "gap"],
        title="Table 8 (reproduced): filtered Hits@10, sparse vs dense, multi-seed",
    ))
    worst = max(abs(r["gap"]) for r in rows)
    print(f"\nLargest sparse-dense gap: {worst:.3f} Hits@10 "
          "(the paper's parity claim holds when this stays within seed noise).")


if __name__ == "__main__":
    main()
