"""Figure 7: total training time per dataset and model, sparse vs dense, with speedups.

Paper reference
---------------
Figure 7 is the headline result: total training time of TransE, TransR,
TransH, and TorusE on the seven benchmark datasets, comparing SpTransX
against TorchKGE / DGL-KE / PyG, with the slowdown factor of every baseline
annotated (up to 5.3x on CPU).  Speedups are consistent across datasets, and
TransE shows the largest gains.

What this harness does
----------------------
* pytest-benchmark entries time a short sparse vs dense training run per
  model on one dataset;
* ``main()`` trains both formulations on every (dataset, model) pair at the
  requested scale and prints the per-pair training times and dense/sparse
  speedup factors plus the per-model geometric-mean speedup.  The reproducible
  shape: the sparse formulation wins on every pair, TransE by the widest
  margin.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import (
    DATASETS,
    DEFAULT_DIM,
    DEFAULT_SCALE,
    MODEL_PAIRS,
    build_model,
    format_table,
    geometric_mean,
    load_scaled_dataset,
    paper_training_config,
)
from repro.training import Trainer


@pytest.mark.parametrize("model_name", list(MODEL_PAIRS))
@pytest.mark.parametrize("formulation", ["sparse", "dense"])
def test_short_training_run(benchmark, model_name, formulation):
    """Time a one-epoch training run per (model, formulation) on scaled FB15K237."""
    kg = load_scaled_dataset("FB15K237")
    benchmark.group = f"fig7-{model_name.lower()}"
    benchmark.extra_info.update({"model": model_name, "formulation": formulation})

    def train_once():
        model = build_model(model_name, formulation, kg)
        return Trainer(model, kg, paper_training_config(epochs=1)).train().total_time

    benchmark.pedantic(train_once, rounds=1, iterations=1)


def run(scale: float = DEFAULT_SCALE, epochs: int = 2, dim: int = DEFAULT_DIM,
        batch_size: int = 4096, datasets=None) -> list[dict]:
    """Regenerate the Figure-7 training-time grid."""
    datasets = datasets if datasets is not None else DATASETS
    rows = []
    for dataset in datasets:
        kg = load_scaled_dataset(dataset, scale=scale)
        for model_name in MODEL_PAIRS:
            times = {}
            for formulation in ("sparse", "dense"):
                model = build_model(model_name, formulation, kg, embedding_dim=dim)
                result = Trainer(model, kg,
                                 paper_training_config(epochs, batch_size)).train()
                times[formulation] = result.total_time
            rows.append({
                "dataset": dataset,
                "model": model_name,
                "sparse_s": times["sparse"],
                "dense_s": times["dense"],
                "speedup": times["dense"] / max(times["sparse"], 1e-12),
            })
    return rows


def summarize(rows: list[dict]) -> list[dict]:
    """Per-model geometric-mean speedup across datasets."""
    summary = []
    for model_name in MODEL_PAIRS:
        speedups = [r["speedup"] for r in rows if r["model"] == model_name]
        summary.append({
            "model": model_name,
            "geomean_speedup": geometric_mean(speedups),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
        })
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--datasets", nargs="+", default=None)
    args = parser.parse_args()
    rows = run(scale=args.scale, epochs=args.epochs, dim=args.dim,
               batch_size=args.batch_size, datasets=args.datasets)
    print(format_table(rows, ["dataset", "model", "sparse_s", "dense_s", "speedup"],
                       title="Figure 7 (reproduced): total training time, sparse vs dense"))
    print()
    print(format_table(summarize(rows),
                       ["model", "geomean_speedup", "min_speedup", "max_speedup"],
                       title="Per-model speedup summary (dense time / sparse time)"))


if __name__ == "__main__":
    main()
