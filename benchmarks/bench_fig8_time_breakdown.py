"""Figure 8: forward / backward / step breakdown per model, averaged over datasets.

Paper reference
---------------
Figure 8 splits the total training time of every framework into loss
computation (forward), gradient computation (backward), and parameter update
(step), averaged over the seven datasets.  SpTransX improves forward and
backward time for every model, with the backward phase showing the largest
absolute reduction.

What this harness does
----------------------
* pytest-benchmark entries time forward-only and backward-only passes of
  sparse vs dense TransE;
* ``main()`` trains every (model, formulation) pair on all scaled datasets and
  prints the averaged per-phase breakdown, mirroring the figure's bars.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import (
    DATASETS,
    DEFAULT_DIM,
    DEFAULT_SCALE,
    MODEL_PAIRS,
    build_model,
    format_table,
    load_scaled_dataset,
    make_batch,
    paper_training_config,
)
from repro.training import Trainer


@pytest.mark.parametrize("formulation", ["sparse", "dense"])
def test_forward_pass(benchmark, formulation):
    """Time the TransE forward (loss) pass alone."""
    kg = load_scaled_dataset("WN18")
    model = build_model("TransE", formulation, kg)
    batch = make_batch(kg, batch_size=4096)
    benchmark.group = "fig8-forward"
    benchmark.extra_info["formulation"] = formulation
    benchmark(lambda: model.loss(batch))


@pytest.mark.parametrize("formulation", ["sparse", "dense"])
def test_backward_pass(benchmark, formulation):
    """Time the TransE backward pass alone (fresh graph each round)."""
    kg = load_scaled_dataset("WN18")
    model = build_model("TransE", formulation, kg)
    batch = make_batch(kg, batch_size=4096)
    benchmark.group = "fig8-backward"
    benchmark.extra_info["formulation"] = formulation

    def backward_only():
        model.zero_grad()
        loss = model.loss(batch)
        loss.backward()

    benchmark(backward_only)


def run(scale: float = DEFAULT_SCALE, epochs: int = 2, dim: int = DEFAULT_DIM,
        batch_size: int = 4096) -> list[dict]:
    """Regenerate the Figure-8 per-phase breakdown averaged over datasets."""
    rows = []
    for model_name in MODEL_PAIRS:
        for formulation in ("sparse", "dense"):
            totals = {"forward": 0.0, "backward": 0.0, "step": 0.0}
            for dataset in DATASETS:
                kg = load_scaled_dataset(dataset, scale=scale)
                model = build_model(model_name, formulation, kg, embedding_dim=dim)
                breakdown = Trainer(model, kg, paper_training_config(epochs, batch_size)
                                    ).train().breakdown()
                for phase in totals:
                    totals[phase] += breakdown[phase]
            n = len(DATASETS)
            rows.append({
                "model": model_name,
                "formulation": formulation,
                "forward_s": totals["forward"] / n,
                "backward_s": totals["backward"] / n,
                "step_s": totals["step"] / n,
                "total_s": sum(totals.values()) / n,
            })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    args = parser.parse_args()
    rows = run(scale=args.scale, epochs=args.epochs, dim=args.dim)
    print(format_table(
        rows, ["model", "formulation", "forward_s", "backward_s", "step_s", "total_s"],
        title="Figure 8 (reproduced): per-phase training time averaged over the 7 datasets",
    ))
    for model_name in {r["model"] for r in rows}:
        sparse = next(r for r in rows if r["model"] == model_name and r["formulation"] == "sparse")
        dense = next(r for r in rows if r["model"] == model_name and r["formulation"] == "dense")
        print(f"{model_name}: forward {dense['forward_s'] / max(sparse['forward_s'], 1e-12):.2f}x, "
              f"backward {dense['backward_s'] / max(sparse['backward_s'], 1e-12):.2f}x faster sparse")


if __name__ == "__main__":
    main()
