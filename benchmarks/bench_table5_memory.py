"""Table 5: average device-memory allocation per model, sparse vs dense.

Paper reference
---------------
Table 5 reports average CUDA memory (GB) over the seven datasets: SpTransX
5.61 vs TorchKGE 13.55 for TransE, 13.65 vs 20.42 for TransR, 0.28 vs 3.1 for
TransH (the largest relative gap, ~11x), and 12.03 vs 15.87 for TorusE.

What this harness does
----------------------
* pytest-benchmark entries time the memory-report computation itself (cheap);
* ``main()`` measures the simulated device memory of one training step (tape
  walk + parameters + gradients + optimiser state) for every (dataset, model,
  formulation) and prints per-model averages.  The reproducible shape: sparse
  is smaller for every model, with TransH showing the largest relative gap.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import (
    DATASETS,
    DEFAULT_DIM,
    DEFAULT_SCALE,
    MODEL_PAIRS,
    build_model,
    format_table,
    load_scaled_dataset,
    make_batch,
)
from repro.profiling import measure_training_memory


@pytest.mark.parametrize("formulation", ["sparse", "dense"])
def test_memory_measurement(benchmark, formulation):
    """Time the simulated-memory measurement of one TransH step."""
    kg = load_scaled_dataset("FB13")
    model = build_model("TransH", formulation, kg)
    batch = make_batch(kg, batch_size=4096)
    benchmark.group = "table5-memory"
    benchmark.extra_info["formulation"] = formulation
    report = benchmark(measure_training_memory, model, batch, "adam")
    assert report.total_bytes > 0


def run(scale: float = DEFAULT_SCALE, dim: int = DEFAULT_DIM,
        batch_size: int = 4096) -> list[dict]:
    """Regenerate the Table-5 average memory comparison."""
    rows = []
    for model_name in MODEL_PAIRS:
        totals = {"sparse": 0.0, "dense": 0.0}
        intermediates = {"sparse": 0.0, "dense": 0.0}
        for dataset in DATASETS:
            kg = load_scaled_dataset(dataset, scale=scale)
            batch = make_batch(kg, batch_size=min(batch_size, kg.n_triples))
            for formulation in totals:
                model = build_model(model_name, formulation, kg, embedding_dim=dim)
                report = measure_training_memory(model, batch, optimizer="adam")
                totals[formulation] += report.total_gb
                intermediates[formulation] += report.intermediate_bytes / 1024 ** 3
        n = len(DATASETS)
        rows.append({
            "model": model_name,
            "sparse_gb": totals["sparse"] / n,
            "dense_gb": totals["dense"] / n,
            "dense/sparse": totals["dense"] / max(totals["sparse"], 1e-12),
            "interm_dense/sparse": intermediates["dense"] / max(intermediates["sparse"], 1e-12),
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--batch-size", type=int, default=4096)
    args = parser.parse_args()
    rows = run(scale=args.scale, dim=args.dim, batch_size=args.batch_size)
    print(format_table(
        rows, ["model", "sparse_gb", "dense_gb", "dense/sparse", "interm_dense/sparse"],
        title="Table 5 (reproduced): average simulated device memory per training step",
    ))
    largest = max(rows, key=lambda r: r["interm_dense/sparse"])
    print(f"\nLargest relative intermediate-memory gap: {largest['model']} "
          f"({largest['interm_dense/sparse']:.1f}x) — the paper reports TransH as the "
          "most memory-efficient sparse model.")


if __name__ == "__main__":
    main()
