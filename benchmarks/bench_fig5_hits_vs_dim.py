"""Figure 5: filtered Hits@10 accuracy versus embedding size.

Paper reference
---------------
Figure 5 trains the four SpTransX models on FB15K with embedding sizes from 4
to 2048 (batch 32768, 100 epochs) and shows Hits@10 rising with embedding size
before saturating.

What this harness does
----------------------
* a pytest-benchmark entry times a short SpTransE training run at one
  representative dimension;
* ``main()`` sweeps embedding sizes for each sparse model on a synthetic KG
  with *learnable* translational structure (random graphs carry no signal, so
  this is the substitution that preserves the figure's meaning — see
  DESIGN.md) and prints Hits@10 per (model, dimension), which should increase
  with dimension and then flatten, matching the figure's shape.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import format_table
from repro.data import generate_learnable_kg
from repro.evaluation import evaluate_link_prediction
from repro.models import SpTorusE, SpTransE, SpTransH, SpTransR
from repro.training import Trainer, TrainingConfig

MODELS = {
    "TransE": (SpTransE, {}),
    "TransR": (SpTransR, {"relation_dim": 16}),
    "TransH": (SpTransH, {}),
    "TorusE": (SpTorusE, {}),
}
DEFAULT_DIMS = [4, 8, 16, 32, 64]


def _dataset(seed: int = 0):
    return generate_learnable_kg(300, 12, 3000, latent_dim=16, noise=0.05,
                                 rng=seed, test_fraction=0.1)


def _train_and_score(model_name: str, dim: int, kg, epochs: int, seed: int = 0) -> float:
    cls, kwargs = MODELS[model_name]
    model = cls(kg.n_entities, kg.n_relations, dim, rng=seed, **kwargs)
    config = TrainingConfig(epochs=epochs, batch_size=1024, learning_rate=0.05,
                            margin=0.5, optimizer="adam", seed=seed)
    Trainer(model, kg, config).train()
    result = evaluate_link_prediction(model, kg.split.test,
                                      known_triples=kg.known_triples(), ks=(10,))
    return result.hits[10]


def test_transe_hits_at_dim32(benchmark):
    """Time the dim=32 SpTransE training+evaluation cell of the sweep."""
    kg = _dataset()
    benchmark.group = "fig5-hits-vs-dim"
    hits = benchmark.pedantic(
        lambda: _train_and_score("TransE", 32, kg, epochs=10), rounds=1, iterations=1
    )
    assert 0.0 <= hits <= 1.0


def run(dims=None, epochs: int = 30, seed: int = 0) -> list[dict]:
    """Regenerate the Hits@10-vs-dimension sweep."""
    dims = dims if dims is not None else DEFAULT_DIMS
    kg = _dataset(seed)
    rows = []
    for model_name in MODELS:
        for dim in dims:
            hits = _train_and_score(model_name, dim, kg, epochs, seed)
            rows.append({"model": model_name, "dim": dim, "hits@10": hits})
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dims", type=int, nargs="+", default=DEFAULT_DIMS)
    parser.add_argument("--epochs", type=int, default=30)
    args = parser.parse_args()
    rows = run(dims=args.dims, epochs=args.epochs)
    print(format_table(rows, ["model", "dim", "hits@10"],
                       title="Figure 5 (reproduced): filtered Hits@10 vs embedding size"))
    for model_name in MODELS:
        series = [r["hits@10"] for r in rows if r["model"] == model_name]
        trend = "rising" if series[-1] > series[0] else "flat/falling"
        print(f"{model_name}: {series[0]:.3f} -> {series[-1]:.3f} ({trend})")


if __name__ == "__main__":
    main()
