"""Appendix D: extending the sparse formulation to non-translational models.

Paper reference
---------------
Appendix D argues that the same incidence-matrix SpMM covers DistMult,
ComplEx, and RotatE once the semiring operators are swapped, and that the
change needed over the translational kernel is minimal.

What this harness does
----------------------
* pytest-benchmark entries time the semiring-SpMM scoring pass of each
  non-translational model against its dense gather-based twin;
* ``main()`` (1) verifies score equivalence between the semiring and dense
  formulations under shared parameters, and (2) reports training-step timings
  for DistMult / ComplEx / RotatE, demonstrating that the semiring path covers
  the Appendix-D models end to end.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from benchmarks.common import DEFAULT_SCALE, format_table, load_scaled_dataset, make_batch
from repro.baselines import DenseComplEx, DenseDistMult
from repro.models import SpComplEx, SpDistMult, SpRotatE
from repro.optim import Adam

DIM = 64


@pytest.mark.parametrize("name,cls", [
    ("distmult-semiring", SpDistMult),
    ("distmult-dense", DenseDistMult),
    ("complex-semiring", SpComplEx),
    ("complex-dense", DenseComplEx),
    ("rotate-semiring", SpRotatE),
])
def test_scoring_pass(benchmark, name, cls):
    """Time one scoring pass per Appendix-D model / formulation."""
    kg = load_scaled_dataset("FB15K237")
    model = cls(kg.n_entities, kg.n_relations, DIM, rng=0)
    batch = make_batch(kg, batch_size=4096)
    triples = np.concatenate([batch.positives, batch.negatives])
    benchmark.group = "appendixD-scoring"
    benchmark.extra_info["variant"] = name
    benchmark(lambda: model.scores(triples))


def run(scale: float = DEFAULT_SCALE, batch_size: int = 4096) -> dict:
    """Verify semiring/dense equivalence and collect training-step timings."""
    import time

    kg = load_scaled_dataset("FB15K237", scale=scale)
    batch = make_batch(kg, batch_size=min(batch_size, kg.n_triples))
    probe = batch.positives[:512]

    # Equivalence under shared parameters.
    sparse_dm = SpDistMult(kg.n_entities, kg.n_relations, DIM, rng=1)
    dense_dm = DenseDistMult(kg.n_entities, kg.n_relations, DIM, rng=2)
    sparse_dm.embeddings.load_pretrained(dense_dm.entity_embeddings.weight.data,
                                         dense_dm.relation_embeddings.weight.data)
    distmult_gap = float(np.max(np.abs(sparse_dm.score_triples(probe)
                                       - dense_dm.score_triples(probe))))

    sparse_cx = SpComplEx(kg.n_entities, kg.n_relations, DIM, rng=1)
    dense_cx = DenseComplEx(kg.n_entities, kg.n_relations, DIM, rng=2)
    sparse_cx.real.load_pretrained(dense_cx.entity_real.weight.data,
                                   dense_cx.relation_real.weight.data)
    sparse_cx.imag.load_pretrained(dense_cx.entity_imag.weight.data,
                                   dense_cx.relation_imag.weight.data)
    complex_gap = float(np.max(np.abs(sparse_cx.score_triples(probe)
                                      - dense_cx.score_triples(probe))))

    # Training-step timings.
    timings = []
    for name, cls in (("SpDistMult", SpDistMult), ("DenseDistMult", DenseDistMult),
                      ("SpComplEx", SpComplEx), ("DenseComplEx", DenseComplEx),
                      ("SpRotatE", SpRotatE)):
        model = cls(kg.n_entities, kg.n_relations, DIM, rng=0)
        optimizer = Adam(model.parameters(), lr=4e-4)
        start = time.perf_counter()
        for _ in range(3):
            model.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            optimizer.step()
        timings.append({"model": name, "3_steps_s": time.perf_counter() - start})

    return {"distmult_gap": distmult_gap, "complex_gap": complex_gap, "timings": timings}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args()
    report = run(scale=args.scale)
    print("Appendix D (reproduced): semiring SpMM extension to non-translational models\n")
    print(f"DistMult semiring-vs-dense max score gap: {report['distmult_gap']:.2e}")
    print(f"ComplEx  semiring-vs-dense max score gap: {report['complex_gap']:.2e}\n")
    print(format_table(report["timings"], ["model", "3_steps_s"],
                       title="Training-step timings (3 steps, batch 4096)"))


if __name__ == "__main__":
    main()
