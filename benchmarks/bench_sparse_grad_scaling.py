"""Row-sparse gradient pipeline: step-time scaling in the vocabulary size.

What this harness shows
-----------------------
The dense gradient path pays ``O((N + R) * d)`` per training step twice: the
SpMM backward densifies ``A^T @ grad`` into a full stacked-embedding gradient,
and the optimizer then rewrites every embedding row (plus its dense moment
buffers).  The row-sparse pipeline (``sparse_grads=True``) emits only the
``<= 3 * B`` rows a batch touches and scatter-updates just those rows, so
backward + optimizer-step time should be *flat* in ``N`` while the dense path
grows linearly.

* pytest-benchmark entries time one training step at a small and a medium
  vocabulary for both paths;
* ``main()`` sweeps the entity count (default up to 50k at d=128, batch 1024),
  prints per-phase times, and reports the sparse-over-dense speedup at the
  largest vocabulary plus the growth factor of each path across the sweep.

Run ``python -m benchmarks.bench_sparse_grad_scaling --quick`` for a
seconds-long smoke version of the sweep.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

import numpy as np
import pytest

from benchmarks.common import format_table
from repro.data.dataset import KGDataset
from repro.models import SpTransE
from repro.training import Trainer, TrainingConfig

DEFAULT_ENTITIES = [5_000, 10_000, 20_000, 50_000]
QUICK_ENTITIES = [1_000, 4_000]


def _synthetic_dataset(n_entities: int, n_relations: int = 64,
                       n_triples: int = 20_000, seed: int = 0) -> KGDataset:
    """Uniform random triples: shape-only workload for the timing sweep."""
    rng = np.random.default_rng(seed)
    triples = np.column_stack([
        rng.integers(0, n_entities, n_triples),
        rng.integers(0, n_relations, n_triples),
        rng.integers(0, n_entities, n_triples),
    ]).astype(np.int64)
    return KGDataset(triples, n_entities=n_entities, n_relations=n_relations,
                     name=f"synthetic-N{n_entities}")


def _measure_step(n_entities: int, sparse: bool, dim: int, batch_size: int,
                  optimizer: str, steps: int, seed: int = 0) -> Dict[str, float]:
    """Average per-step phase times over ``steps`` repetitions of one batch."""
    kg = _synthetic_dataset(n_entities)
    model = SpTransE(kg.n_entities, kg.n_relations, dim, rng=seed)
    config = TrainingConfig(epochs=1, batch_size=batch_size, optimizer=optimizer,
                            seed=seed, sparse_grads=sparse)
    trainer = Trainer(model, kg, config)
    batch = next(iter(trainer.batches))
    trainer.train_step(batch)  # warm-up: allocator, optimizer state
    forward = backward = step = 0.0
    for _ in range(steps):
        stats = trainer.train_step(batch)
        forward += stats.forward_time
        backward += stats.backward_time
        step += stats.step_time
    return {
        "forward_s": forward / steps,
        "backward_s": backward / steps,
        "step_s": step / steps,
        "grad_path_s": (backward + step) / steps,
    }


@pytest.mark.parametrize("n_entities", [2_000, 8_000])
@pytest.mark.parametrize("sparse", [False, True])
def test_train_step(benchmark, n_entities, sparse):
    """Time one SpTransE training step for each gradient path."""
    kg = _synthetic_dataset(n_entities)
    model = SpTransE(kg.n_entities, kg.n_relations, 64, rng=0)
    config = TrainingConfig(epochs=1, batch_size=512, seed=0, sparse_grads=sparse)
    trainer = Trainer(model, kg, config)
    batch = next(iter(trainer.batches))
    trainer.train_step(batch)
    benchmark.group = f"sparse-grad-scaling-N{n_entities}"
    benchmark.extra_info.update({"n_entities": n_entities, "sparse_grads": sparse})
    benchmark(trainer.train_step, batch)


def run(entities: Optional[List[int]] = None, dim: int = 128,
        batch_size: int = 1024, optimizer: str = "adam",
        steps: int = 5) -> List[dict]:
    """Sweep the vocabulary size for both gradient paths."""
    entities = entities if entities is not None else DEFAULT_ENTITIES
    rows = []
    for n in entities:
        dense = _measure_step(n, False, dim, batch_size, optimizer, steps)
        sparse = _measure_step(n, True, dim, batch_size, optimizer, steps)
        rows.append({
            "n_entities": n,
            "dense_bwd_s": dense["backward_s"],
            "dense_step_s": dense["step_s"],
            "sparse_bwd_s": sparse["backward_s"],
            "sparse_step_s": sparse["step_s"],
            "speedup": dense["grad_path_s"] / max(sparse["grad_path_s"], 1e-12),
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entities", type=int, nargs="+", default=None,
                        help="entity counts to sweep (default: up to 50k)")
    parser.add_argument("--dim", type=int, default=128)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--optimizer", default="adam",
                        choices=["adam", "sgd", "adagrad"])
    parser.add_argument("--steps", type=int, default=5,
                        help="timed repetitions per configuration")
    parser.add_argument("--quick", action="store_true",
                        help="small vocabularies and dimensions for a smoke run")
    args = parser.parse_args()

    entities = args.entities
    dim, batch, steps = args.dim, args.batch_size, args.steps
    if args.quick:
        entities = entities or QUICK_ENTITIES
        dim, batch, steps = min(dim, 32), min(batch, 256), min(steps, 2)

    rows = run(entities=entities, dim=dim, batch_size=batch,
               optimizer=args.optimizer, steps=steps)
    print(format_table(
        rows,
        ["n_entities", "dense_bwd_s", "dense_step_s", "sparse_bwd_s",
         "sparse_step_s", "speedup"],
        title=f"Row-sparse gradient scaling (SpTransE, d={dim}, "
              f"batch={batch}, optimizer={args.optimizer})",
    ))
    first, last = rows[0], rows[-1]
    n_growth = last["n_entities"] / first["n_entities"]
    dense_growth = ((last["dense_bwd_s"] + last["dense_step_s"])
                    / max(first["dense_bwd_s"] + first["dense_step_s"], 1e-12))
    sparse_growth = ((last["sparse_bwd_s"] + last["sparse_step_s"])
                     / max(first["sparse_bwd_s"] + first["sparse_step_s"], 1e-12))
    print(f"\nAt N={last['n_entities']}: sparse gradient path is "
          f"{last['speedup']:.1f}x faster than the dense path.")
    print(f"Across a {n_growth:.0f}x vocabulary growth, dense backward+step grew "
          f"{dense_growth:.1f}x while the sparse path grew {sparse_growth:.1f}x "
          f"(flat = batch-bound, as the formulation predicts).")


if __name__ == "__main__":
    main()
