"""Figure 2: top CPU-intensive functions per model and dataset.

Paper reference
---------------
Figure 2 profiles the non-sparse training loop of TransE / TransH / TransR /
TransD / TorusE on FB13 and FB15K and shows that the embedding gradient
computation (``EmbeddingBackward``), norm backward, and — for TorusE — the
torus dissimilarity dominate CPU time.

What this harness does
----------------------
* pytest-benchmark entries time the profiled training step per model;
* ``main()`` runs the dense (gather/scatter) implementation of each model on
  FB13- and FB15K-shaped data under ``cProfile`` and prints each model's top
  functions with their share of library CPU time, so the dominance of the
  gather/scatter machinery can be checked directly against Figure 2.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import DEFAULT_DIM, DEFAULT_SCALE, format_table, load_scaled_dataset, make_batch
from repro.baselines import DENSE_MODELS
from repro.optim import Adam
from repro.profiling import profile_training_step

FIG2_MODELS = ["transe", "transh", "transr", "transd", "toruse"]
FIG2_DATASETS = ["FB13", "FB15K"]


@pytest.mark.parametrize("model_name", FIG2_MODELS)
def test_dense_training_step(benchmark, model_name):
    """Time one dense training step for each Figure-2 model on scaled FB15K."""
    kg = load_scaled_dataset("FB15K")
    model = DENSE_MODELS[model_name](kg.n_entities, kg.n_relations, DEFAULT_DIM, rng=0)
    batch = make_batch(kg, batch_size=2048)
    optimizer = Adam(model.parameters(), lr=4e-4)

    def step():
        model.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()

    benchmark.group = "fig2-dense-step"
    benchmark.extra_info["model"] = model_name
    benchmark(step)


def run(scale: float = DEFAULT_SCALE, dim: int = DEFAULT_DIM, batch_size: int = 4096,
        steps: int = 3, top: int = 5) -> list[dict]:
    """Regenerate the Figure-2 style function-share profile."""
    rows = []
    for dataset in FIG2_DATASETS:
        kg = load_scaled_dataset(dataset, scale=scale)
        batch = make_batch(kg, batch_size=min(batch_size, kg.n_triples))
        for model_name in FIG2_MODELS:
            model = DENSE_MODELS[model_name](kg.n_entities, kg.n_relations, dim, rng=0)
            optimizer = Adam(model.parameters(), lr=4e-4)
            profile = profile_training_step(model, batch, optimizer=optimizer,
                                            steps=steps, top=top)
            for rank, entry in enumerate(profile, start=1):
                rows.append({
                    "model": model_name,
                    "dataset": dataset,
                    "rank": rank,
                    "function": entry.function,
                    "share_%": 100.0 * entry.share,
                })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--top", type=int, default=5)
    args = parser.parse_args()
    rows = run(scale=args.scale, dim=args.dim, top=args.top)
    print(format_table(
        rows, ["model", "dataset", "rank", "function", "share_%"],
        title="Figure 2 (reproduced): top CPU functions of the dense training loop",
    ))
    gather_rows = [r for r in rows if r["rank"] <= 3
                   and ("gather" in r["function"] or "backward" in r["function"]
                        or "scatter" in r["function"] or "torus" in r["function"])]
    print(f"\n{len(gather_rows)} of the top-3 entries are embedding gather/scatter, "
          "backward, or torus-distance functions (the paper's observation).")


if __name__ == "__main__":
    main()
