"""Table 1: TransE training-time breakdown, sparse vs non-sparse.

Paper reference
---------------
Table 1 reports the forward / backward / optimiser-step time of 200-epoch
TransE training, averaged over the seven benchmark datasets, for the sparse
formulation and the TorchKGE-style non-sparse implementation.  On the CPU the
paper measures roughly 75/167/15 seconds (sparse) vs 299/919/16 (non-sparse).

What this harness does
----------------------
* pytest-benchmark entries time a single TransE training step (forward +
  backward + step) for both formulations on one scaled dataset;
* ``main()`` trains both formulations on all seven scaled datasets and prints
  the averaged breakdown table in the same layout as Table 1.

Absolute seconds differ from the paper (different hardware, scaled datasets);
the reproducible claims are the ordering (sparse < dense in every phase, with
the backward phase showing the largest gap) and the rough ratio.
"""

from __future__ import annotations

import argparse

import pytest

from benchmarks.common import (
    DATASETS,
    DEFAULT_DIM,
    DEFAULT_SCALE,
    build_model,
    format_table,
    load_scaled_dataset,
    make_batch,
    paper_training_config,
)
from repro.optim import Adam
from repro.training import Trainer


def _one_training_step(model, batch, optimizer):
    model.zero_grad()
    loss = model.loss(batch)
    loss.backward()
    optimizer.step()
    return loss


@pytest.mark.parametrize("formulation", ["sparse", "dense"])
def test_transe_training_step(benchmark, formulation):
    """Time one TransE forward+backward+step on a scaled FB15K batch."""
    kg = load_scaled_dataset("FB15K")
    model = build_model("TransE", formulation, kg)
    batch = make_batch(kg, batch_size=4096)
    optimizer = Adam(model.parameters(), lr=4e-4)
    benchmark.group = "table1-transe-step"
    benchmark.extra_info["formulation"] = formulation
    benchmark(_one_training_step, model, batch, optimizer)


def run(scale: float = DEFAULT_SCALE, epochs: int = 2, dim: int = DEFAULT_DIM,
        batch_size: int = 4096) -> list[dict]:
    """Regenerate the Table-1 breakdown averaged over the seven datasets."""
    totals = {f: {"forward": 0.0, "backward": 0.0, "step": 0.0} for f in ("sparse", "dense")}
    for dataset in DATASETS:
        kg = load_scaled_dataset(dataset, scale=scale)
        for formulation in ("sparse", "dense"):
            model = build_model("TransE", formulation, kg, embedding_dim=dim)
            result = Trainer(model, kg, paper_training_config(epochs, batch_size)).train()
            breakdown = result.breakdown()
            for phase in ("forward", "backward", "step"):
                totals[formulation][phase] += breakdown[phase]

    n = len(DATASETS)
    rows = []
    for phase in ("forward", "backward", "step"):
        sparse = totals["sparse"][phase] / n
        dense = totals["dense"][phase] / n
        rows.append({
            "phase": phase,
            "sparse_s": sparse,
            "non_sparse_s": dense,
            "dense/sparse": dense / sparse if sparse > 0 else float("nan"),
        })
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--batch-size", type=int, default=4096)
    args = parser.parse_args()
    rows = run(scale=args.scale, epochs=args.epochs, dim=args.dim,
               batch_size=args.batch_size)
    print(format_table(
        rows, ["phase", "sparse_s", "non_sparse_s", "dense/sparse"],
        title=f"Table 1 (reproduced): TransE {args.epochs}-epoch breakdown averaged over "
              f"{len(DATASETS)} scaled datasets (scale={args.scale}, dim={args.dim})",
    ))


if __name__ == "__main__":
    main()
