"""Hot-path kernel layer: reference vs numpy-fused vs compiled step time.

Paper reference
---------------
Section 5.5 again, but from the kernel side: the framework's claim is that the
sparse formulation concentrates nearly all training time in a handful of
kernels (incidence SpMM forward, row-sparse backward, margin loss, L2
ranking), so swapping a compiled implementation into any one of them moves the
whole step time.  This harness measures exactly that substitution.

What this harness does
----------------------
* pytest-benchmark entries time one SpMM per backend (``scipy``, ``fused``,
  ``compiled``), the fused-vs-reference margin loss, and one blocked
  :func:`repro.ranking.l2_distance_matrix` sweep;
* ``run()`` trains SpTransE per backend under :func:`repro.autograd.flop_counter`
  and reports step time plus the per-kernel wall-clock split
  (``OpCounters.per_op_seconds``), then times quantized/full ranking latency;
* ``main()`` prints the tables and emits the per-kernel timings as JSON
  (``--json`` writes to a file, otherwise they are printed), so runs can be
  diffed across machines and numba availability.

The ``compiled`` backend uses numba JIT kernels when numba is importable and a
cache-blocked pure-numpy path otherwise; ``kernels.HAVE_NUMBA`` is included in
the JSON payload so results are never compared across the two silently.  The
default scale keeps each case in seconds; ``--scale 3.3`` gives an FB15K-shaped
workload with ~50k entities, the configuration the PR's numba acceptance
numbers refer to.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np
import pytest

from benchmarks.common import (
    DEFAULT_DIM,
    DEFAULT_SCALE,
    format_table,
    load_scaled_dataset,
    paper_training_config,
)
from repro.autograd import Tensor, flop_counter
from repro.losses import margin_ranking_loss
from repro.models import SpTransE
from repro.ranking import l2_distance_matrix
from repro.sparse import build_hrt_incidence, get_backend, spmm
from repro.sparse import kernels
from repro.training import Trainer

#: Reference (scipy), numpy-fused, and compiled (numba-or-blocked-numpy) paths.
KERNEL_BACKENDS = ["scipy", "fused", "compiled"]


def _hrt_case(scale: float = DEFAULT_SCALE, dim: int = DEFAULT_DIM, seed: int = 0):
    kg = load_scaled_dataset("FB15K", scale=scale, seed=seed)
    triples = kg.split.train[: min(8192, kg.n_triples)]
    A = build_hrt_incidence(triples, kg.n_entities, kg.n_relations, fmt="coo")
    X = np.random.default_rng(seed).standard_normal(
        (kg.n_entities + kg.n_relations, dim))
    return kg, A, X


@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_spmm_forward_kernel(benchmark, backend):
    """Time one hrt-incidence SpMM forward per kernel path."""
    _, A, X = _hrt_case()
    kernel = get_backend(backend)
    kernel(A, X)  # warm the pattern cache (and numba JIT when present)
    benchmark.group = "kernel-spmm-forward"
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["numba"] = kernels.HAVE_NUMBA
    out = benchmark(kernel, A, X)
    assert out.shape == (A.shape[0], X.shape[1])


@pytest.mark.parametrize("backend", ["fused", "compiled"])
def test_spmm_backward_kernel(benchmark, backend):
    """Time the row-sparse backward (SpMM^T gather-scatter) per kernel path."""
    _, A, X = _hrt_case(seed=1)

    def step():
        E = Tensor(X, requires_grad=True)
        spmm(A, E, backend=backend, sparse_grad=True).sum().backward()
        return E.grad

    step()
    benchmark.group = "kernel-rowsparse-backward"
    benchmark.extra_info["backend"] = backend
    assert benchmark(step) is not None


@pytest.mark.parametrize("fused", [False, True])
def test_margin_loss_kernel(benchmark, fused):
    """Fused one-pass margin loss vs the op-by-op reference."""
    rng = np.random.default_rng(2)
    pos = Tensor(rng.standard_normal(65536))
    neg = Tensor(rng.standard_normal(65536))
    benchmark.group = "kernel-margin-loss"
    benchmark.extra_info["fused"] = fused
    out = benchmark(margin_ranking_loss, pos, neg, 0.5, "mean", fused)
    assert np.isfinite(out.data)


def test_ranking_l2_kernel(benchmark):
    """Time one blocked L2 ranking sweep (the serving hot loop)."""
    rng = np.random.default_rng(3)
    queries = rng.standard_normal((32, DEFAULT_DIM))
    targets = rng.standard_normal((20000, DEFAULT_DIM))
    benchmark.group = "kernel-ranking-l2"
    out = benchmark(l2_distance_matrix, queries, targets)
    assert out.shape == (32, 20000)


def _time_ranking(model: SpTransE, repeats: int = 5) -> float:
    """Median latency of a full score_all_tails sweep (serving-shaped query)."""
    heads = np.arange(min(32, model.n_entities), dtype=np.int64)
    rels = np.zeros(heads.size, dtype=np.int64)
    model.score_all_tails(heads, rels)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        model.score_all_tails(heads, rels)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def run(scale: float = DEFAULT_SCALE, epochs: int = 2, dim: int = DEFAULT_DIM,
        batch_size: int = 4096) -> dict:
    """Train SpTransE per kernel backend; collect per-kernel timings.

    Returns ``{"rows": [...], "per_op_seconds": {backend: {...}}, ...}`` — the
    shape ``main()`` dumps as JSON.
    """
    kg = load_scaled_dataset("FB15K", scale=scale)
    steps = max(1, epochs * -(-kg.split.train.shape[0] // batch_size))
    rows = []
    per_op = {}
    for backend in KERNEL_BACKENDS:
        model = SpTransE(kg.n_entities, kg.n_relations, dim, backend=backend, rng=0)
        with flop_counter() as counters:
            result = Trainer(model, kg,
                             paper_training_config(epochs, batch_size)).train()
        rows.append({
            "backend": backend,
            "total_s": result.total_time,
            "step_ms": 1e3 * result.total_time / steps,
            "final_loss": result.final_loss,
            "rank_ms": 1e3 * _time_ranking(model),
        })
        per_op[backend] = dict(sorted(counters.per_op_seconds.items(),
                                      key=lambda kv: -kv[1]))
    reference = rows[0]["step_ms"]
    for row in rows:
        row["speedup"] = reference / row["step_ms"] if row["step_ms"] else float("nan")
    return {
        "config": {"scale": scale, "epochs": epochs, "dim": dim,
                   "batch_size": batch_size, "n_entities": kg.n_entities,
                   "numba": kernels.HAVE_NUMBA},
        "rows": rows,
        "per_op_seconds": per_op,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="dataset scale; 3.3 approximates the 50k-entity config")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report (rows + per-kernel "
                             "OpCounters timings) to this file as JSON")
    args = parser.parse_args()
    report = run(scale=args.scale, epochs=args.epochs, dim=args.dim,
                 batch_size=args.batch_size)
    numba = "with numba" if report["config"]["numba"] else "numpy-only"
    print(format_table(report["rows"],
                       ["backend", "step_ms", "rank_ms", "final_loss", "speedup"],
                       title=f"Kernel layer: step time per backend ({numba}, "
                             f"{report['config']['n_entities']} entities)"))
    payload = json.dumps(report, indent=2)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(payload + "\n")
        print(f"\nPer-kernel timings written to {args.json}")
    else:
        print("\n" + payload)


if __name__ == "__main__":
    main()
