"""Figure 9: training-loss curves of the sparse and non-sparse approach.

Paper reference
---------------
Figure 9 plots the margin-loss curve of SpTransX and TorchKGE for the four
models; the sparse curve follows a slightly different trajectory but converges
to the same loss value.

What this harness does
----------------------
* a pytest-benchmark entry times the paired curve collection for TransE;
* ``main()`` trains each (model, formulation) pair from the same
  initialisation on the same batches, records the per-epoch loss with the
  history callback, prints both curves, and reports the final-loss gap —
  which should be small for every model.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from benchmarks.common import DEFAULT_SCALE, MODEL_PAIRS, build_model, format_table, load_scaled_dataset
from repro.training import HistoryCallback, Trainer, TrainingConfig


def _loss_curve(model, kg, epochs: int, batch_size: int, seed: int = 0) -> list[float]:
    history = HistoryCallback()
    config = TrainingConfig(epochs=epochs, batch_size=batch_size, learning_rate=0.01,
                            margin=0.5, optimizer="adam", seed=seed)
    Trainer(model, kg, config, callbacks=[history]).train()
    return history.losses


def test_transe_loss_curves(benchmark):
    """Time the paired loss-curve collection for TransE."""
    kg = load_scaled_dataset("WN18")
    benchmark.group = "fig9-loss-curves"

    def curves():
        sparse = _loss_curve(build_model("TransE", "sparse", kg), kg, 3, 4096)
        dense = _loss_curve(build_model("TransE", "dense", kg), kg, 3, 4096)
        return sparse, dense

    sparse, dense = benchmark.pedantic(curves, rounds=1, iterations=1)
    assert len(sparse) == len(dense) == 3


def run(scale: float = DEFAULT_SCALE, epochs: int = 10, batch_size: int = 4096,
        dim: int = 64) -> dict:
    """Regenerate the Figure-9 loss curves for every model."""
    kg = load_scaled_dataset("WN18", scale=scale)
    curves = {}
    for model_name in MODEL_PAIRS:
        curves[model_name] = {}
        for formulation in ("sparse", "dense"):
            model = build_model(model_name, formulation, kg, embedding_dim=dim)
            curves[model_name][formulation] = _loss_curve(model, kg, epochs, batch_size)
    return curves


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--dim", type=int, default=64)
    args = parser.parse_args()
    curves = run(scale=args.scale, epochs=args.epochs, dim=args.dim)

    rows = []
    for model_name, pair in curves.items():
        for formulation, losses in pair.items():
            rows.append({
                "model": model_name,
                "formulation": formulation,
                "first_loss": losses[0],
                "final_loss": losses[-1],
            })
    print(format_table(rows, ["model", "formulation", "first_loss", "final_loss"],
                       title="Figure 9 (reproduced): loss-curve endpoints"))
    print("\nfull curves:")
    for model_name, pair in curves.items():
        for formulation, losses in pair.items():
            formatted = " ".join(f"{x:.3f}" for x in losses)
            print(f"  {model_name:7s} {formulation:6s}: {formatted}")
        gap = abs(pair["sparse"][-1] - pair["dense"][-1])
        print(f"  {model_name:7s} final-loss gap: {gap:.4f}")


if __name__ == "__main__":
    main()
