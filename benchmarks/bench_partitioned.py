"""Partitioned entity tables: resident-set RSS and step time vs partition count.

For each ``P`` this harness trains the same SpTransE workload with the entity
table split into ``P`` LRU-paged buckets (``max_resident=2``, the bucket-pair
schedule's bound) and reports, per run:

* peak RSS (``ru_maxrss``) of a fresh subprocess — the resident-set headline
  partitioning exists for;
* mean step time and the table's fault/write-back counters;
* **measured vs α–β-modeled bucket-exchange cost**: every fault/write-back
  moves one bucket slab between disk and the resident set, so the paging
  traffic is modeled with the same
  :class:`~repro.training.distributed.CommunicationModel` the distributed
  trainer uses — ``latency × transfers + bytes / bandwidth`` — and printed
  next to the measured paging wall-clock (``fault_seconds +
  writeback_seconds``).  The default bandwidth is NVLink/IB-class; pass
  ``--bandwidth-gb`` ≈ your disk (or page-cache) throughput to calibrate.

Run directly for a sweep, or through pytest-benchmark for the quick entry
point::

    PYTHONPATH=src python -m benchmarks.bench_partitioned --quick
    PYTHONPATH=src python -m benchmarks.bench_partitioned \
        --partitions 1 2 4 8 --scale 0.05 --dim 128 --epochs 2
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from typing import Dict, List, Optional

_WORKER = """
import json, resource, sys, time
sys.path.insert(0, "src")
import numpy as np
from repro.data import make_dataset_like
from repro.models import SpTransE
from repro.training import Trainer, TrainingConfig

cfg = json.loads(sys.argv[1])
kg = make_dataset_like(cfg["dataset"], scale=cfg["scale"], rng=0)
model = SpTransE(kg.n_entities, kg.n_relations, cfg["dim"], rng=7,
                 partitions=cfg["partitions"], max_resident=2)
config = TrainingConfig(epochs=cfg["epochs"], batch_size=cfg["batch_size"],
                        optimizer="adagrad", sparse_grads=True,
                        learning_rate=0.01)
trainer = Trainer(model, kg, config)
start = time.perf_counter()
result = trainer.train()
elapsed = time.perf_counter() - start
steps = sum(1 for _ in trainer.batches) * cfg["epochs"] or 1
stats = model.embeddings.stats() if cfg["partitions"] > 1 else {}
print(json.dumps({
    "partitions": cfg["partitions"],
    "n_entities": kg.n_entities,
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
    "train_s": elapsed,
    "step_ms": 1000.0 * elapsed / steps,
    "final_loss": result.final_loss,
    "stats": {k: float(v) for k, v in stats.items()},
}))
"""


def _run_case(partitions: int, dataset: str, scale: float, dim: int,
              epochs: int, batch_size: int) -> Dict[str, object]:
    payload = json.dumps({"partitions": partitions, "dataset": dataset,
                          "scale": scale, "dim": dim, "epochs": epochs,
                          "batch_size": batch_size})
    out = subprocess.run([sys.executable, "-c", _WORKER, payload],
                         capture_output=True, text=True)
    if out.returncode != 0:
        raise RuntimeError(f"benchmark worker failed:\n{out.stdout}\n{out.stderr}")
    return json.loads(out.stdout.strip().splitlines()[-1])


def run(partitions: Optional[List[int]] = None, dataset: str = "FB15K",
        scale: float = 0.02, dim: int = 64, epochs: int = 1,
        batch_size: int = 2048, bandwidth_gb: float = 1.0,
        latency_ms: float = 5.0) -> List[Dict[str, object]]:
    """Sweep partition counts; returns one record per run (printed as a table)."""
    from repro.training.distributed import CommunicationModel

    partitions = partitions if partitions else [1, 2, 4, 8]
    comm = CommunicationModel(bandwidth_bytes_per_s=bandwidth_gb * 1e9,
                              latency_s=latency_ms / 1e3)
    rows = []
    header = (f"{'P':>3} {'peak RSS MB':>12} {'step ms':>9} {'faults':>7} "
              f"{'writebacks':>10} {'paged GB':>9} {'measured s':>11} "
              f"{'modeled s':>10}")
    print(header)
    print("-" * len(header))
    for p in partitions:
        record = _run_case(p, dataset, scale, dim, epochs, batch_size)
        stats = record["stats"]
        transfers = stats.get("faults", 0.0) + stats.get("writebacks", 0.0)
        paged_bytes = stats.get("bytes_loaded", 0.0) + stats.get("bytes_written", 0.0)
        measured = stats.get("fault_seconds", 0.0) + stats.get("writeback_seconds", 0.0)
        # α–β view of the paging traffic: one latency per bucket transfer plus
        # the byte volume over the modeled bandwidth.
        modeled = transfers * comm.latency_s + paged_bytes / comm.bandwidth_bytes_per_s
        record["paging"] = {"transfers": transfers, "bytes": paged_bytes,
                            "measured_s": measured, "modeled_s": modeled}
        rows.append(record)
        print(f"{p:>3} {record['peak_rss_mb']:>12.1f} {record['step_ms']:>9.2f} "
              f"{int(stats.get('faults', 0)):>7} "
              f"{int(stats.get('writebacks', 0)):>10} "
              f"{paged_bytes / 1e9:>9.3f} {measured:>11.3f} {modeled:>10.3f}")
    if len(rows) > 1 and rows[0]["partitions"] == 1:
        dense = rows[0]["peak_rss_mb"]
        best = min(r["peak_rss_mb"] for r in rows[1:])
        print(f"\npeak RSS: dense {dense:.1f} MB -> best partitioned "
              f"{best:.1f} MB ({dense / max(best, 1e-9):.2f}x)")
    return rows


# --------------------------------------------------------------------- #
# pytest-benchmark entry point (quick scale)
# --------------------------------------------------------------------- #
def test_partitioned_step(benchmark):
    import numpy as np

    from repro.data import make_dataset_like
    from repro.models import SpTransE
    from repro.training import Trainer, TrainingConfig

    kg = make_dataset_like("FB15K", scale=0.004, rng=0)
    model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=7, partitions=4)
    trainer = Trainer(model, kg, TrainingConfig(
        epochs=1, batch_size=512, sparse_grads=True, learning_rate=0.01))
    batch = next(iter(trainer.batches))
    benchmark(lambda: trainer.train_step(batch))
    model.embeddings.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--partitions", type=int, nargs="+", default=None)
    parser.add_argument("--dataset", default="FB15K")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--batch-size", type=int, default=2048)
    parser.add_argument("--bandwidth-gb", type=float, default=1.0,
                        help="modeled paging bandwidth in GB/s (disk or page cache)")
    parser.add_argument("--latency-ms", type=float, default=5.0,
                        help="modeled per-transfer latency in milliseconds")
    parser.add_argument("--quick", action="store_true",
                        help="small sweep (P in {1, 2, 4}, tiny scale)")
    args = parser.parse_args()
    if args.quick:
        run(partitions=[1, 2, 4], scale=0.008, dim=32, epochs=1,
            batch_size=1024, bandwidth_gb=args.bandwidth_gb,
            latency_ms=args.latency_ms)
    else:
        run(partitions=args.partitions, dataset=args.dataset, scale=args.scale,
            dim=args.dim, epochs=args.epochs, batch_size=args.batch_size,
            bandwidth_gb=args.bandwidth_gb, latency_ms=args.latency_ms)


if __name__ == "__main__":
    main()
