"""Sparse vs dense training-time comparison (the paper's headline experiment, in miniature).

Run with::

    python examples/sparse_vs_dense_speed.py [--scale 0.01] [--epochs 5]

For each of the four models the paper implements (TransE, TransR, TransH,
TorusE) this script trains the SpTransX formulation and the dense
gather/scatter baseline on the same synthetic dataset with the same
configuration, then prints total training time, the forward/backward/step
breakdown, and the speedup factor — a miniature of the paper's Figure 7 /
Figure 8 on a single CPU.
"""

import argparse

from repro.baselines import DenseTorusE, DenseTransE, DenseTransH, DenseTransR
from repro.data import make_dataset_like
from repro.models import SpTorusE, SpTransE, SpTransH, SpTransR
from repro.training import Trainer, TrainingConfig

PAIRS = [
    ("TransE", SpTransE, DenseTransE, {}),
    ("TransR", SpTransR, DenseTransR, {"relation_dim": 32}),
    ("TransH", SpTransH, DenseTransH, {}),
    ("TorusE", SpTorusE, DenseTorusE, {}),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="FB15K237", help="catalog dataset to mimic")
    parser.add_argument("--scale", type=float, default=0.01, help="down-scaling factor")
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=4096)
    args = parser.parse_args()

    kg = make_dataset_like(args.dataset, scale=args.scale, rng=0)
    config = TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                            learning_rate=4e-4, margin=0.5, seed=0)
    print(f"dataset: {kg}")
    print(f"config : epochs={config.epochs} batch={config.batch_size} dim={args.dim}\n")

    header = f"{'model':8s} {'variant':8s} {'total(s)':>9s} {'fwd(s)':>8s} {'bwd(s)':>8s} {'step(s)':>8s}"
    print(header)
    print("-" * len(header))
    for name, sparse_cls, dense_cls, kwargs in PAIRS:
        rows = {}
        for variant, cls in (("sparse", sparse_cls), ("dense", dense_cls)):
            model = cls(kg.n_entities, kg.n_relations, args.dim, rng=0, **kwargs)
            result = Trainer(model, kg, config).train()
            rows[variant] = result
            b = result.breakdown()
            print(f"{name:8s} {variant:8s} {b['total']:9.3f} {b['forward']:8.3f} "
                  f"{b['backward']:8.3f} {b['step']:8.3f}")
        speedup = rows["dense"].total_time / max(rows["sparse"].total_time, 1e-9)
        print(f"{name:8s} {'speedup':8s} {speedup:9.2f}x\n")


if __name__ == "__main__":
    main()
