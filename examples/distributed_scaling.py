"""Simulated data-parallel scaling study (paper Appendix F, Table 9).

Run with::

    python examples/distributed_scaling.py [--workers 1 2 4 8]

The paper wraps sparse TransE in PyTorch DDP and scales the COVID-19 knowledge
graph to 64 GPUs.  Without multi-GPU hardware, this example uses the simulated
data-parallel trainer: batches are sharded across logical workers, gradients
are averaged exactly as DDP would, and the wall-clock estimate combines the
measured per-shard compute with a ring-all-reduce cost model.  The printed
table mirrors Table 9's shape: total time falls with worker count but
sub-linearly, as communication takes a growing share.
"""

import argparse

from repro.data import make_dataset_like
from repro.models import SpTransE
from repro.training import TrainingConfig
from repro.training.distributed import CommunicationModel, scaling_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    parser.add_argument("--scale", type=float, default=0.01,
                        help="COVID-19 dataset down-scaling factor")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--dim", type=int, default=64)
    args = parser.parse_args()

    kg = make_dataset_like("COVID19", scale=args.scale, rng=0)
    config = TrainingConfig(epochs=args.epochs, batch_size=8192, learning_rate=4e-4, seed=0)
    comm = CommunicationModel()
    print(f"dataset: {kg} | epochs={args.epochs} dim={args.dim}\n")

    results = scaling_sweep(
        lambda: SpTransE(kg.n_entities, kg.n_relations, args.dim, rng=0),
        kg, args.workers, config=config, comm_model=comm,
    )

    header = (f"{'workers':>8s} {'compute(s)':>11s} {'comm(s)':>9s} "
              f"{'total(s)':>9s} {'speedup':>8s}")
    print(header)
    print("-" * len(header))
    baseline = results[0].estimated_total_time
    for result in results:
        speedup = baseline / max(result.estimated_total_time, 1e-9)
        print(f"{result.n_workers:8d} {result.measured_compute_time:11.3f} "
              f"{result.estimated_communication_time:9.3f} "
              f"{result.estimated_total_time:9.3f} {speedup:8.2f}x")
    print("\nfinal-epoch losses per run:",
          [round(r.losses[-1], 4) for r in results])


if __name__ == "__main__":
    main()
