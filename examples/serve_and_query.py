"""Serving walkthrough: train → checkpoint → spec → engine → HTTP endpoint.

Run with::

    python examples/serve_and_query.py

The script trains a small SpTransE model, writes a checkpoint, rebuilds the
exact model from the checkpoint's stored ``ModelSpec``, and then exercises the
whole serving stack in-process:

1. the :class:`~repro.serving.InferenceEngine` programmatic API (top-k with
   filtered-candidate masks, scoring, the LRU result cache);
2. query coalescing (one vectorised scoring call for a batch of queries);
3. the JSON/HTTP server (the same thing ``sptransx serve`` runs), queried
   with plain ``urllib`` — equivalent to ``sptransx query``.
"""

import json
import os
import tempfile
import threading
import urllib.request

from repro.data import make_dataset_like
from repro.registry import ModelSpec, build_model
from repro.serving import InferenceEngine, TopKQuery, make_server
from repro.training import Trainer, TrainingConfig, load_model, save_checkpoint


def main() -> None:
    # -------------------------------------------------------------- train
    kg = make_dataset_like("WN18RR", scale=0.01, rng=0, test_fraction=0.05)
    print(f"dataset: {kg}")

    spec = ModelSpec(model="transe", formulation="sparse",
                     n_entities=kg.n_entities, n_relations=kg.n_relations,
                     embedding_dim=32, dissimilarity="L2")
    model = build_model(spec, rng=0)
    trainer = Trainer(model, kg, TrainingConfig(epochs=10, batch_size=1024,
                                                learning_rate=0.01, seed=0))
    trainer.train()

    with tempfile.TemporaryDirectory() as tmpdir:
        checkpoint_path = os.path.join(tmpdir, "transe.npz")
        save_checkpoint(checkpoint_path, model, epoch=10)
        print(f"checkpoint written to {checkpoint_path}")

        # The checkpoint stores the spec; load_model rebuilds the exact model.
        restored = load_model(checkpoint_path)
    print(f"restored from spec: {type(restored).__name__}, "
          f"backend={restored.backend}, dissimilarity={restored.dissimilarity_name}")

    # ------------------------------------------------- programmatic engine
    engine = InferenceEngine(restored, known_triples=kg.known_triples(),
                             cache_size=1024)
    head, relation, tail = (int(x) for x in kg.split.test[0])

    top = engine.top_k_tails(head, relation, k=5)
    print(f"\ntop-5 tails for ({head}, {relation}, ?): {list(top.entities)}")

    filtered = engine.top_k_tails(head, relation, k=5, filtered=True)
    print(f"same query, known positives masked:      {list(filtered.entities)}")

    print(f"score({head}, {relation}, {tail}) = {engine.score(head, relation, tail):.4f}")

    neighbours = engine.nearest_entities(head, k=3)
    print(f"entities nearest to {head} in embedding space: {list(neighbours.entities)}")

    # A batch of queries costs one scoring call, not len(queries).
    queries = [TopKQuery(h, relation, 3) for h in range(8)]
    engine.top_k_tails_batch(queries)
    print(f"engine stats after the batch: {engine.stats()}")

    # ------------------------------------------------------- HTTP serving
    server = make_server(engine, port=0)           # what `sptransx serve` runs
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"\nserving on {server.url}")

    request = urllib.request.Request(
        server.url + "/v1/top_k_tails",
        data=json.dumps({"head": head, "relation": relation, "k": 5}).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        payload = json.loads(response.read())
    print(f"HTTP answer: {payload['entities']}")
    assert payload["entities"] == list(top.entities)

    with urllib.request.urlopen(server.url + "/v1/spec") as response:
        print(f"served spec: {json.loads(response.read())}")

    server.shutdown()
    server.close()
    print("done")


if __name__ == "__main__":
    main()
