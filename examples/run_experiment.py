"""Declarative experiments: programmatic specs, sweeps, and run comparison.

Run with::

    python examples/run_experiment.py

The script builds an :class:`~repro.experiment.ExperimentSpec` in code,
executes it with :func:`~repro.experiment.run_experiment` (the same engine
behind ``sptransx run``), then uses ``spec.replace(...)`` — the sweep
primitive — to fan one base spec out over margins and learning rates, and
finally compares the ``metrics.json`` each artifact directory recorded.
"""

import json
import os
import tempfile

from repro.experiment import (
    DataSpec,
    EvalSpec,
    ExperimentSpec,
    load_artifact,
    run_experiment,
)
from repro.registry import ModelSpec
from repro.training import TrainingConfig


def base_spec() -> ExperimentSpec:
    """A small accuracy-flavoured experiment (learnable graph, filtered eval)."""
    data = DataSpec(dataset="WN18RR", scale=0.003, generator="learnable",
                    valid_fraction=0.1, test_fraction=0.1, seed=0)
    n_entities, n_relations = data.vocab_sizes()
    return ExperimentSpec(
        name="transe-wn18rr-base",
        data=data,
        model=ModelSpec(model="transe", formulation="sparse",
                        n_entities=n_entities, n_relations=n_relations,
                        embedding_dim=32),
        training=TrainingConfig(epochs=8, batch_size=512, learning_rate=0.01,
                                margin=0.5),
        eval=EvalSpec(protocols=("link_prediction",), ks=(1, 10)),
        tags=("example",),
    )


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="sptransx-experiments-")
    spec = base_spec()

    # ---------------------------------------------------------------- #
    # 1. One run: spec -> artifact directory.
    # ---------------------------------------------------------------- #
    artifact_dir = os.path.join(workdir, spec.name)
    result = run_experiment(spec, artifact_dir=artifact_dir)
    print(f"base run: final_loss={result.training.final_loss:.4f} "
          f"-> {artifact_dir}")
    print("  artifact files:", sorted(os.listdir(artifact_dir)))

    # The spec JSON round-trips losslessly — this file alone reproduces the run.
    reloaded = ExperimentSpec.from_file(os.path.join(artifact_dir, "spec.json"))
    assert reloaded == spec

    # ---------------------------------------------------------------- #
    # 2. A sweep: `.replace()` derives one spec per hyperparameter point.
    # ---------------------------------------------------------------- #
    points = [(margin, lr)
              for margin in (0.25, 0.5, 1.0)
              for lr in (0.005, 0.02)]
    runs = {}
    for margin, lr in points:
        swept = spec.replace(
            name=f"transe-m{margin:g}-lr{lr:g}",
            training=spec.training.replace(margin=margin, learning_rate=lr),
        )
        out_dir = os.path.join(workdir, swept.name)
        run_experiment(swept, artifact_dir=out_dir)
        runs[swept.name] = out_dir

    # ---------------------------------------------------------------- #
    # 3. Compare metrics.json across the artifact directories.
    # ---------------------------------------------------------------- #
    print("\nsweep results (filtered link prediction):")
    print(f"{'experiment':<24} {'loss':>8} {'mrr':>8} {'hits@10':>8}")
    best_name, best_mrr = None, -1.0
    for name, out_dir in sorted(runs.items()):
        artifact = load_artifact(out_dir)
        lp = artifact.metrics["evaluations"]["link_prediction"]["metrics"]
        loss = artifact.metrics["final_loss"]
        print(f"{name:<24} {loss:>8.4f} {lp['mrr']:>8.4f} {lp['hits@10']:>8.4f}")
        if lp["mrr"] > best_mrr:
            best_name, best_mrr = name, lp["mrr"]
    print(f"\nbest by MRR: {best_name} ({best_mrr:.4f})")

    # Each artifact is independently reloadable and serveable:
    #   sptransx serve --checkpoint <artifact_dir>
    best = load_artifact(runs[best_name])
    model = best.load_model()
    print(f"reloaded best model: {type(model).__name__} "
          f"dim={model.embedding_dim}, spec={json.dumps(best.spec.model.to_dict())}")


if __name__ == "__main__":
    main()
