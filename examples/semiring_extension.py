"""Extending the sparse formulation to non-translational models (paper Appendix D).

Run with::

    python examples/semiring_extension.py

The incidence-matrix structure is model-agnostic: swapping the semiring
operators of the SpMM turns the same kernel into DistMult (``times_times``),
ComplEx (complex products), or RotatE (rotation residuals).  This example

1. trains the semiring-based SpDistMult and SpComplEx and their dense
   gather-based twins on the same data, confirming score parity;
2. registers a *custom* semiring (a TransE variant that damps the relation
   contribution) and uses it directly through ``semiring_spmm`` — the
   extension hook a downstream user would use for a new score function.
"""

import numpy as np

from repro.autograd import Tensor
from repro.baselines import DenseComplEx, DenseDistMult
from repro.data import make_dataset_like
from repro.models import SpComplEx, SpDistMult
from repro.sparse.semiring import Semiring, register_semiring, semiring_spmm
from repro.training import Trainer, TrainingConfig


def train_and_compare(kg) -> None:
    config = TrainingConfig(epochs=5, batch_size=2048, learning_rate=0.01, seed=0,
                            normalize_every=0)
    pairs = [
        ("DistMult", SpDistMult, DenseDistMult),
        ("ComplEx", SpComplEx, DenseComplEx),
    ]
    probe = kg.split.train[:512]
    for name, sparse_cls, dense_cls in pairs:
        sparse = sparse_cls(kg.n_entities, kg.n_relations, 32, rng=0)
        dense = dense_cls(kg.n_entities, kg.n_relations, 32, rng=0)
        sparse_time = Trainer(sparse, kg, config).train().total_time
        dense_time = Trainer(dense, kg, config).train().total_time
        print(f"{name:9s}: semiring-SpMM {sparse_time:.2f}s vs dense gather {dense_time:.2f}s")

    # Score parity on identical parameters (the Appendix-D equivalence).
    sparse = SpDistMult(kg.n_entities, kg.n_relations, 32, rng=1)
    dense = DenseDistMult(kg.n_entities, kg.n_relations, 32, rng=2)
    sparse.embeddings.load_pretrained(dense.entity_embeddings.weight.data,
                                      dense.relation_embeddings.weight.data)
    gap = np.max(np.abs(sparse.score_triples(probe) - dense.score_triples(probe)))
    print(f"DistMult semiring vs gather max score gap on {len(probe)} triples: {gap:.2e}")


def custom_semiring_demo(kg) -> None:
    """Register a damped-translation semiring and evaluate it through one SpMM."""
    damped = Semiring(
        name="damped_plus_times",
        combine=lambda h, r, t: h + 0.5 * r - t,
        grads=lambda h, r, t, g: (g, 0.5 * g, -g),
    )
    register_semiring(damped, overwrite=True)

    rng = np.random.default_rng(0)
    stacked = Tensor(rng.standard_normal((kg.n_entities + kg.n_relations, 16)),
                     requires_grad=True)
    batch = kg.split.train[:4096]
    combined = semiring_spmm(batch, stacked, kg.n_entities, "damped_plus_times")
    scores = (combined * combined).sum(axis=-1)
    scores.sum().backward()
    print(f"custom semiring: scored {len(batch)} triples through one semiring SpMM, "
          f"gradient norm {np.linalg.norm(stacked.grad):.3f}")


def main() -> None:
    kg = make_dataset_like("WN18", scale=0.02, rng=0)
    print(f"dataset: {kg}\n")
    train_and_compare(kg)
    print()
    custom_semiring_demo(kg)


if __name__ == "__main__":
    main()
