"""Large-batch training and the device-memory model (paper Section 6.2.2 / Figure 6).

Run with::

    python examples/large_batch_memory.py

The paper's third contribution is that the sparse formulation's smaller
intermediate footprint lets memory-limited GPUs train with much larger
batches.  This example sweeps the batch size, measures the simulated device
memory of one training step for the sparse and dense TransE formulations (by
walking the autograd tape and charging every live tensor), and prints the
largest batch each formulation could fit under a fixed memory budget.
"""

from repro.baselines import DenseTransE
from repro.data import TripletBatch, UniformNegativeSampler, make_dataset_like
from repro.models import SpTransE
from repro.profiling import measure_training_memory

BUDGET_GB = 2.0            # pretend device capacity
BATCH_SIZES = [512, 1024, 2048, 4096, 8192, 16384]
DIM = 256


def main() -> None:
    kg = make_dataset_like("FB15K", scale=0.02, rng=0)
    sampler = UniformNegativeSampler(kg.n_entities, rng=0)
    print(f"dataset: {kg}; embedding dim {DIM}; simulated budget {BUDGET_GB} GB\n")

    header = f"{'batch':>7s} {'sparse (GB)':>12s} {'dense (GB)':>12s} {'dense/sparse':>13s}"
    print(header)
    print("-" * len(header))

    largest = {"sparse": 0, "dense": 0}
    for batch_size in BATCH_SIZES:
        positives = kg.split.train[:batch_size]
        batch = TripletBatch(positives=positives, negatives=sampler.corrupt(positives))
        reports = {}
        for name, cls in (("sparse", SpTransE), ("dense", DenseTransE)):
            model = cls(kg.n_entities, kg.n_relations, DIM, rng=0)
            reports[name] = measure_training_memory(model, batch, optimizer="adam")
            if reports[name].total_gb <= BUDGET_GB:
                largest[name] = batch_size
        ratio = reports["dense"].total_bytes / reports["sparse"].total_bytes
        print(f"{batch_size:7d} {reports['sparse'].total_gb:12.3f} "
              f"{reports['dense'].total_gb:12.3f} {ratio:13.2f}x")

    print(f"\nlargest batch fitting in {BUDGET_GB} GB:")
    print(f"  sparse formulation: {largest['sparse']}")
    print(f"  dense  formulation: {largest['dense']}")
    print("\nThe sparse path keeps one (2B, d) SpMM output alive per step; the dense")
    print("path retains the three gathered operand blocks plus their partial sums,")
    print("which is what caps its usable batch size first.")


if __name__ == "__main__":
    main()
