"""Quickstart: train a sparse TransE model and evaluate link prediction.

Run with::

    python examples/quickstart.py

The script generates a small synthetic knowledge graph shaped like a scaled-down
FB15K (the paper's primary dataset), trains SpTransE — TransE expressed through
one sparse-dense matrix multiplication per batch — and reports filtered link-
prediction metrics plus the forward/backward/step time breakdown the paper
uses as its headline measurement.
"""

from repro.data import make_dataset_like
from repro.evaluation import evaluate_link_prediction
from repro.models import SpTransE
from repro.training import Trainer, TrainingConfig


def main() -> None:
    # A synthetic stand-in for FB15K at ~1% scale: same shape, laptop-friendly size.
    kg = make_dataset_like("FB15K", scale=0.01, rng=0, test_fraction=0.05)
    print(f"dataset: {kg}")

    model = SpTransE(
        n_entities=kg.n_entities,
        n_relations=kg.n_relations,
        embedding_dim=64,
        dissimilarity="L2",
        backend="scipy",          # any registered SpMM backend: scipy / fused / numpy
        rng=0,
    )
    print(f"model: {model.config()}")

    config = TrainingConfig(
        epochs=20,
        batch_size=2048,
        learning_rate=0.01,
        margin=0.5,
        optimizer="adam",
        seed=0,
    )
    trainer = Trainer(model, kg, config)
    result = trainer.train()

    print(f"\nfinal training loss: {result.final_loss:.4f} "
          f"(first epoch {result.losses[0]:.4f})")
    breakdown = result.breakdown()
    print("training time breakdown (seconds):")
    for phase in ("forward", "backward", "step", "data"):
        print(f"  {phase:>9s}: {breakdown[phase]:.3f}")
    print(f"  {'total':>9s}: {breakdown['total']:.3f}")

    metrics = evaluate_link_prediction(
        model, kg.split.test, known_triples=kg.known_triples(), ks=(1, 3, 10)
    )
    print("\nfiltered link prediction on the held-out split:")
    print(f"  MRR      : {metrics.mrr:.4f}")
    print(f"  MeanRank : {metrics.mean_rank:.1f}")
    for k, value in metrics.hits.items():
        print(f"  Hits@{k:<3d}: {value:.4f}")

    head, relation = int(kg.split.test[0, 0]), int(kg.split.test[0, 1])
    top = model.predict_tails(head, relation, k=5)
    print(f"\ntop-5 predicted tails for (entity {head}, relation {relation}): {top.tolist()}")


if __name__ == "__main__":
    main()
