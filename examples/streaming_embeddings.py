"""Streaming (memory-mapped) embeddings for tables too large for main memory.

Run with::

    python examples/streaming_embeddings.py

The paper's framework supports initialising KG training from pre-trained LLM
embeddings that do not fit in CPU memory, by backing the embedding table with
a memory-mapped tensor and streaming only the rows each batch touches.  This
example reproduces that workflow end-to-end with NumPy memmaps:

1. build a disk-backed ``[entities; relations]`` table and overwrite part of it
   with "pre-trained" vectors (standing in for BERT/T5/GPT embeddings);
2. run a TransE-style training loop that looks up only the rows of each batch,
   backpropagates into that block, and writes row-wise SGD updates back to
   disk — the full table is never materialised in memory;
3. report the loss curve and the bytes actually resident per step.
"""

import numpy as np

from repro.autograd import ops
from repro.data import UniformNegativeSampler, make_dataset_like
from repro.losses import margin_ranking_loss
from repro.nn.embedding import MemoryMappedEmbedding

DIM = 64
EPOCHS = 5
BATCH = 1024
LR = 0.1


def batch_rows(kg, positives, negatives):
    """Unique stacked-table rows touched by one positive/negative batch."""
    combined = np.concatenate([positives, negatives])
    rows = np.unique(np.concatenate([
        combined[:, 0], combined[:, 2], kg.n_entities + combined[:, 1]
    ]))
    remap = {int(r): i for i, r in enumerate(rows)}
    return combined, rows, remap


def main() -> None:
    kg = make_dataset_like("WN18RR", scale=0.01, rng=0)
    table = MemoryMappedEmbedding(kg.n_entities, kg.n_relations, DIM, rng=0)
    print(f"dataset: {kg}")
    print(f"disk-backed table: {table.shape[0]} rows x {table.shape[1]} dims "
          f"({table.shape[0] * table.shape[1] * 8 / 1e6:.1f} MB on disk at {table.path})")

    # Stand-in for loading pre-trained LLM entity embeddings from disk.
    pretrained_rows = np.arange(min(100, kg.n_entities))
    table._memmap[pretrained_rows] = np.random.default_rng(1).normal(
        0.0, 0.1, size=(len(pretrained_rows), DIM)
    )
    table._memmap.flush()

    sampler = UniformNegativeSampler(kg.n_entities, rng=0)
    rng = np.random.default_rng(0)
    triples = kg.split.train

    for epoch in range(EPOCHS):
        order = rng.permutation(len(triples))
        losses, resident = [], []
        for start in range(0, len(triples), BATCH):
            positives = triples[order[start:start + BATCH]]
            negatives = sampler.corrupt(positives)
            combined, rows, remap = batch_rows(kg, positives, negatives)

            block = table.forward(rows)                      # only these rows leave disk
            resident.append(block.nbytes)
            h = ops.gather_rows(block, np.array([remap[int(x)] for x in combined[:, 0]]))
            r = ops.gather_rows(block, np.array([remap[int(kg.n_entities + x)]
                                                 for x in combined[:, 1]]))
            t = ops.gather_rows(block, np.array([remap[int(x)] for x in combined[:, 2]]))
            scores = ops.lp_norm(h + r - t, p=2)
            m = len(positives)
            loss = margin_ranking_loss(scores[np.arange(m)], scores[np.arange(m, 2 * m)],
                                       margin=0.5)
            loss.backward()
            table.apply_row_update(rows, block.grad, lr=LR)
            losses.append(loss.item())
        print(f"epoch {epoch}: loss {np.mean(losses):.4f} | "
              f"resident embedding bytes per step ~{np.mean(resident) / 1e3:.0f} KB "
              f"(full table would be {table.shape[0] * DIM * 8 / 1e3:.0f} KB)")

    table.close()


if __name__ == "__main__":
    main()
