"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file exists
so the package can be installed in environments whose setuptools predates
wheel-less PEP 660 editable installs (``python setup.py develop`` or
``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
