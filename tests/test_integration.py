"""End-to-end integration tests across the data / model / training / evaluation stack."""

import numpy as np
import pytest

from repro.baselines import DenseTransE
from repro.data import (
    BernoulliNegativeSampler,
    SQLiteKGStore,
    generate_synthetic_kg,
    load_csv,
    make_dataset_like,
)
from repro.evaluation import evaluate_link_prediction, evaluate_triple_classification
from repro.models import SpTorusE, SpTransE, SpTransH
from repro.nn.embedding import MemoryMappedEmbedding
from repro.training import DataParallelTrainer, Trainer, TrainingConfig


class TestFilePipeline:
    def test_csv_to_trained_model(self, tmp_path):
        """File loader -> dataset -> sparse model -> trainer -> link prediction."""
        rng = np.random.default_rng(0)
        rows = []
        people = [f"person_{i}" for i in range(25)]
        relations = ["knows", "likes", "works_with"]
        seen = set()
        while len(rows) < 150:
            h, t = rng.choice(25, 2, replace=False)
            r = rng.integers(0, 3)
            if (h, r, t) in seen:
                continue
            seen.add((h, r, t))
            rows.append(f"{people[h]},{relations[r]},{people[t]}")
        path = tmp_path / "toy.csv"
        path.write_text("\n".join(rows) + "\n")

        kg = load_csv(str(path)).split_train_valid_test(0.0, 0.1, rng=0)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        result = Trainer(model, kg, TrainingConfig(epochs=10, batch_size=64,
                                                   learning_rate=0.05, seed=0)).train()
        assert result.final_loss < result.losses[0]

        metrics = evaluate_link_prediction(model, kg.split.test,
                                           known_triples=kg.known_triples())
        assert metrics.hits[10] >= 0.0
        # Label-level prediction round trip.
        top = model.predict_tails(head=kg.entity_vocab.index("person_0"),
                                  relation=kg.relation_vocab.index("knows"), k=5)
        assert len(top) == 5

    def test_sqlite_streaming_training(self):
        """SQLite store -> streamed batches -> manual training loop."""
        from repro.data import TripletBatch, UniformNegativeSampler
        from repro.losses import MarginRankingLoss
        from repro.optim import Adam

        kg = generate_synthetic_kg(40, 4, 300, rng=1)
        store = SQLiteKGStore()
        store.ingest_dataset(kg)

        model = SpTransE(store.n_entities, store.n_relations, 16, rng=0)
        sampler = UniformNegativeSampler(store.n_entities, rng=0)
        optimizer = Adam(model.parameters(), lr=0.01)
        criterion = MarginRankingLoss(margin=0.5)

        losses = []
        for _ in range(3):
            epoch_losses = []
            for positives in store.iter_batches(batch_size=64):
                batch = TripletBatch(positives=positives,
                                     negatives=sampler.corrupt(positives))
                model.zero_grad()
                loss = model.loss(batch, criterion)
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
        assert losses[-1] < losses[0]
        store.close()


class TestPaperWorkloads:
    def test_scaled_benchmark_dataset_trains_with_every_model_family(self):
        kg = make_dataset_like("WN18RR", scale=0.003, rng=0)
        cfg = TrainingConfig(epochs=2, batch_size=256, learning_rate=0.01, seed=0)
        for cls in (SpTransE, SpTorusE, SpTransH, DenseTransE):
            model = cls(kg.n_entities, kg.n_relations, 16, rng=0)
            result = Trainer(model, kg, cfg).train()
            assert np.isfinite(result.final_loss)

    def test_bernoulli_sampler_in_training_loop(self):
        kg = generate_synthetic_kg(50, 5, 400, rng=2)
        sampler = BernoulliNegativeSampler(kg, rng=0)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        result = Trainer(model, kg, TrainingConfig(epochs=4, batch_size=128,
                                                   learning_rate=0.02, seed=0),
                         sampler=sampler).train()
        assert result.final_loss < result.losses[0]

    def test_accuracy_parity_between_sparse_and_dense_after_training(self):
        """Section 6.2.5: sparse and dense reach comparable Hits@10."""
        kg = generate_synthetic_kg(40, 4, 500, rng=3, test_fraction=0.1)
        cfg = TrainingConfig(epochs=30, batch_size=128, learning_rate=0.05, seed=0)
        hits = {}
        for name, cls in (("sparse", SpTransE), ("dense", DenseTransE)):
            model = cls(kg.n_entities, kg.n_relations, 24, rng=0)
            Trainer(model, kg, cfg).train()
            hits[name] = evaluate_link_prediction(
                model, kg.split.test, known_triples=kg.known_triples()
            ).hits[10]
        assert abs(hits["sparse"] - hits["dense"]) < 0.25

    def test_distributed_and_single_training_reach_similar_loss(self):
        kg = generate_synthetic_kg(50, 5, 400, rng=4)
        cfg = TrainingConfig(epochs=3, batch_size=200, learning_rate=0.02,
                             optimizer="sgd", seed=0, shuffle=False, normalize_every=0)
        single = SpTransE(kg.n_entities, kg.n_relations, 16, rng=1)
        sharded = SpTransE(kg.n_entities, kg.n_relations, 16, rng=1)
        single_result = Trainer(single, kg, cfg).train()
        ddp_result = DataParallelTrainer(sharded, kg, 4, cfg).train()
        assert ddp_result.losses[-1] == pytest.approx(single_result.losses[-1], rel=1e-6)


class TestStreamingEmbeddings:
    def test_memmap_training_step_reduces_loss(self, tmp_path):
        """The streaming-embedding path: lookup rows, backprop into the looked-up
        block, write row updates back to disk."""
        kg = generate_synthetic_kg(60, 6, 200, rng=5)
        table = MemoryMappedEmbedding(kg.n_entities, kg.n_relations, 8,
                                      path=str(tmp_path / "big.bin"), rng=0)
        from repro.autograd import ops
        from repro.losses import margin_ranking_loss
        from repro.data import UniformNegativeSampler

        sampler = UniformNegativeSampler(kg.n_entities, rng=0)
        positives = kg.split.train[:64]
        negatives = sampler.corrupt(positives)

        def batch_loss(apply_update: bool) -> float:
            combined = np.concatenate([positives, negatives])
            rows = np.unique(np.concatenate([
                combined[:, 0], combined[:, 2], kg.n_entities + combined[:, 1]
            ]))
            remap = {r: i for i, r in enumerate(rows)}
            block = table.forward(rows)
            h = ops.gather_rows(block, np.array([remap[x] for x in combined[:, 0]]))
            r = ops.gather_rows(block, np.array([remap[kg.n_entities + x] for x in combined[:, 1]]))
            t = ops.gather_rows(block, np.array([remap[x] for x in combined[:, 2]]))
            scores = ops.lp_norm(h + r - t, p=2)
            m = len(positives)
            loss = margin_ranking_loss(scores[np.arange(m)], scores[np.arange(m, 2 * m)])
            if apply_update:
                loss.backward()
                table.apply_row_update(rows, block.grad, lr=0.5)
            return loss.item()

        before = batch_loss(apply_update=True)
        after = batch_loss(apply_update=False)
        assert after < before
        table.close()
