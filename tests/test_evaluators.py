"""Tests for the common Evaluator protocol over the three evaluation tasks."""

import json

import pytest

from repro.data import generate_learnable_kg
from repro.evaluation import (
    EVALUATOR_PROTOCOLS,
    EvalReport,
    LinkPredictionEvaluator,
    RelationCategoryEvaluator,
    TripleClassificationEvaluator,
    build_evaluator,
)
from repro.models import SpTransE


@pytest.fixture(scope="module")
def setup():
    kg = generate_learnable_kg(60, 4, 500, rng=0, valid_fraction=0.2,
                               test_fraction=0.2)
    model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
    return kg, model


class TestBuildEvaluator:
    def test_registry_contains_three_protocols(self):
        assert set(EVALUATOR_PROTOCOLS) == {"link_prediction", "classification",
                                            "relation_categories"}

    def test_dispatch(self):
        assert isinstance(build_evaluator("link_prediction"), LinkPredictionEvaluator)
        assert isinstance(build_evaluator("classification"), TripleClassificationEvaluator)
        assert isinstance(build_evaluator("relation_categories"), RelationCategoryEvaluator)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown evaluation protocol"):
            build_evaluator("auc")

    def test_kwargs_forwarded(self):
        evaluator = build_evaluator("link_prediction", ks=(5,), filtered=False)
        assert evaluator.ks == (5,) and evaluator.filtered is False


class TestReports:
    def test_reports_are_uniform_and_json_ready(self, setup):
        kg, model = setup
        for protocol in EVALUATOR_PROTOCOLS:
            report = build_evaluator(protocol).run(model, kg)
            assert isinstance(report, EvalReport)
            assert report.protocol == protocol
            payload = report.to_dict()
            assert set(payload) == {"protocol", "split", "metrics"}
            json.dumps(payload)  # must serialise without a custom encoder

    def test_link_prediction_metrics_shape(self, setup):
        kg, model = setup
        report = LinkPredictionEvaluator(ks=(1, 10)).run(model, kg)
        assert report.split == "test"
        assert report.metrics["task"] == "link_prediction"
        assert report.metrics["protocol"] == "filtered"
        assert 0.0 <= report.metrics["hits@10"] <= 1.0

    def test_link_prediction_raw_protocol(self, setup):
        kg, model = setup
        report = LinkPredictionEvaluator(filtered=False).run(model, kg)
        assert report.metrics["protocol"] == "raw"

    def test_classification_deterministic_for_fixed_seed(self, setup):
        kg, model = setup
        a = TripleClassificationEvaluator(seed=5).run(model, kg)
        b = TripleClassificationEvaluator(seed=5).run(model, kg)
        assert a.metrics == b.metrics
        assert a.split == "valid+test"
        assert a.metrics["task"] == "triple_classification"
        assert isinstance(a.metrics["thresholds"], dict)
        assert all(isinstance(k, str) for k in a.metrics["thresholds"])

    def test_relation_categories_metrics_shape(self, setup):
        kg, model = setup
        report = RelationCategoryEvaluator(ks=(10,)).run(model, kg)
        assert report.metrics["task"] == "relation_categories"
        assert set(report.metrics["counts"]) == {"1-1", "1-N", "N-1", "N-N"}


class TestSplitGuards:
    def test_link_prediction_requires_split(self, setup):
        kg, model = setup
        evaluator = LinkPredictionEvaluator(split="valid")
        empty = kg.split_train_valid_test(0.0, 0.2, rng=0)
        with pytest.raises(ValueError, match="non-empty 'valid' split"):
            evaluator.run(model, empty)

    def test_classification_requires_valid(self, setup):
        kg, model = setup
        empty = kg.split_train_valid_test(0.0, 0.2, rng=0)
        with pytest.raises(ValueError, match="non-empty 'valid' split"):
            TripleClassificationEvaluator().check_dataset(empty)

    def test_invalid_split_name(self):
        with pytest.raises(ValueError, match="split must be"):
            LinkPredictionEvaluator(split="dev")
