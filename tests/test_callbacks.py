"""Dedicated tests for training callbacks: history and early-stopping semantics."""

import numpy as np
import pytest

from repro.data import generate_synthetic_kg
from repro.models import SpTransE
from repro.training import EarlyStopping, HistoryCallback, Trainer, TrainingConfig
from repro.training.callbacks import Callback


@pytest.fixture
def kg():
    return generate_synthetic_kg(50, 4, 400, rng=0)


@pytest.fixture
def config():
    return TrainingConfig(epochs=4, batch_size=128, learning_rate=0.01, seed=0)


class SnapshotCallback(Callback):
    """Record a copy of the model parameters after every epoch."""

    def __init__(self):
        self.states = []

    def on_epoch_end(self, trainer, epoch, stats):
        self.states.append({name: value.copy()
                            for name, value in trainer.model.state_dict().items()})


class TestHistoryCallback:
    def test_records_one_entry_per_epoch(self, kg, config):
        history = HistoryCallback()
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config, callbacks=[history]).train()
        assert history.losses == result.losses
        assert len(history.times) == config.epochs
        assert all(t >= 0 for t in history.times)

    def test_truncated_on_early_stop(self, kg, config):
        history = HistoryCallback()
        stopper = EarlyStopping(patience=0, min_delta=1e9)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config.replace(epochs=10),
                         callbacks=[history, stopper]).train()
        assert len(history.losses) == len(result.epochs) < 10


class TestEarlyStopping:
    def test_stops_after_patience_exhausted(self, kg, config):
        stopper = EarlyStopping(patience=0, min_delta=1e9)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config.replace(epochs=10),
                         callbacks=[stopper]).train()
        # epoch 0 sets the best; epoch 1 is "bad" and triggers the stop
        assert stopper.stopped_epoch == 1
        assert len(result.epochs) == 2

    def test_does_not_stop_while_improving(self, kg, config):
        stopper = EarlyStopping(patience=1)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        result = Trainer(model, kg, config, callbacks=[stopper]).train()
        assert stopper.best is not None
        assert stopper.best <= result.losses[0]

    def test_restore_best_returns_model_to_best_epoch(self, kg, config):
        # A huge min_delta means only epoch 0 ever counts as an improvement,
        # so restore-best must rewind the two further epochs of updates.
        stopper = EarlyStopping(patience=5, min_delta=1e9, restore_best=True)
        snapshots = SnapshotCallback()
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        Trainer(model, kg, config.replace(epochs=3),
                callbacks=[snapshots, stopper]).train()
        assert stopper.best_epoch == 0
        best = snapshots.states[0]
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, best[name])
        # and the restored state differs from where training actually ended
        last = snapshots.states[-1]
        assert any(not np.array_equal(best[name], last[name]) for name in best)

    def test_without_restore_best_keeps_final_parameters(self, kg, config):
        stopper = EarlyStopping(patience=5, min_delta=1e9, restore_best=False)
        snapshots = SnapshotCallback()
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        Trainer(model, kg, config.replace(epochs=3),
                callbacks=[snapshots, stopper]).train()
        assert stopper.best_state is None
        last = snapshots.states[-1]
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, last[name])

    def test_restore_best_applies_when_epoch_budget_runs_out(self, kg, config):
        """Restore must happen even when the stop was never triggered."""
        stopper = EarlyStopping(patience=100, min_delta=1e9, restore_best=True)
        snapshots = SnapshotCallback()
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        Trainer(model, kg, config.replace(epochs=2),
                callbacks=[snapshots, stopper]).train()
        assert stopper.stopped_epoch is None
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, snapshots.states[0][name])

    def test_state_resets_between_trainings(self, kg, config):
        stopper = EarlyStopping(patience=0, min_delta=1e9, restore_best=True)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        Trainer(model, kg, config.replace(epochs=10), callbacks=[stopper]).train()
        first_stop = stopper.stopped_epoch
        assert first_stop is not None
        model2 = SpTransE(kg.n_entities, kg.n_relations, 8, rng=1)
        Trainer(model2, kg, config.replace(epochs=10), callbacks=[stopper]).train()
        assert stopper.stopped_epoch == first_stop  # fresh count, same dynamics

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=-1)
