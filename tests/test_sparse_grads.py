"""End-to-end tests for the row-sparse gradient pipeline.

Covers the contract promised by the ``sparse_grads`` switch:

* the SpMM / gather backwards emit row-sparse gradients that match the dense
  backward (and a finite-difference oracle) exactly;
* gradient accumulation merges sparse parts cheaply and collapses to dense
  transparently when mixed or read through ``.grad``;
* SGD / Adagrad training is numerically identical to the dense path over
  multi-epoch runs (including duplicate-entity batches and regenerated
  negatives); lazy Adam matches dense Adam exactly under full row coverage
  and within tolerance otherwise;
* the chunked closed-form ranking bounds peak memory without changing scores.
"""

import tracemalloc

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd.ops import gather_rows
from repro.data.dataset import KGDataset
from repro.models import SpTorusE, SpTransE, SpTransH, SpTransR
from repro.nn.parameter import Parameter
from repro.optim import SGD, Adagrad, Adam
from repro.sparse import IncidenceBuilder, RowSparseGrad, spmm
from repro.training import Trainer, TrainingConfig


def tiny_dataset(n_entities=12, n_relations=3, n_triples=60, seed=0):
    rng = np.random.default_rng(seed)
    triples = np.column_stack([
        rng.integers(0, n_entities, n_triples),
        rng.integers(0, n_relations, n_triples),
        rng.integers(0, n_entities, n_triples),
    ]).astype(np.int64)
    return KGDataset(triples, n_entities=n_entities, n_relations=n_relations,
                     name="tiny")


# --------------------------------------------------------------------------- #
# Backward correctness
# --------------------------------------------------------------------------- #
class TestSparseBackward:
    def test_spmm_sparse_grad_matches_dense(self):
        rng = np.random.default_rng(0)
        triples = np.array([[0, 1, 3], [2, 0, 0], [0, 1, 3], [4, 1, 2]])
        builder = IncidenceBuilder(5, 2)
        A, A_t = builder.hrt(triples, with_transpose=True)
        upstream = rng.standard_normal((4, 6))

        X_dense = Tensor(rng.standard_normal((7, 6)), requires_grad=True)
        spmm(A, X_dense, A_t=A_t).backward(upstream)
        X_sparse = Tensor(X_dense.data.copy(), requires_grad=True)
        spmm(A, X_sparse, A_t=A_t, sparse_grad=True).backward(upstream)

        rsg = X_sparse.sparse_grad
        assert isinstance(rsg, RowSparseGrad)
        # Only the columns the batch touched appear (entities 0,2,3,4 and
        # relation columns 5+0, 5+1).
        assert set(rsg.indices) == {0, 2, 3, 4, 5, 6}
        np.testing.assert_allclose(rsg.to_dense(), X_dense.grad, atol=1e-12)

    def test_spmm_sparse_gradcheck(self):
        triples = np.array([[0, 0, 1], [2, 1, 0], [1, 0, 2]])
        A = IncidenceBuilder(3, 2).hrt(triples)
        X = Tensor(np.random.default_rng(1).standard_normal((5, 4)),
                   requires_grad=True)
        ok, err = gradcheck(lambda t: spmm(A, t, sparse_grad=True), [X])
        assert ok, f"max error {err}"

    def test_spmm_duplicate_entities_coalesced(self):
        """A batch where one entity appears as both head and tail repeatedly."""
        triples = np.array([[1, 0, 1], [1, 1, 1], [1, 0, 2]])
        A = IncidenceBuilder(4, 2).hrt(triples)
        X = Tensor(np.random.default_rng(2).standard_normal((6, 3)),
                   requires_grad=True)
        upstream = np.ones((3, 3))
        spmm(A, X, sparse_grad=True).backward(upstream)
        rsg = X.sparse_grad
        assert np.array_equal(rsg.indices, np.unique(rsg.indices))
        X2 = Tensor(X.data.copy(), requires_grad=True)
        spmm(A, X2).backward(upstream)
        np.testing.assert_allclose(rsg.to_dense(), X2.grad, atol=1e-12)

    def test_spmm_non_leaf_falls_back_to_dense(self):
        A = IncidenceBuilder(3, 1).hrt(np.array([[0, 0, 1]]))
        X = Tensor(np.ones((4, 2)), requires_grad=True)
        doubled = X * 2.0
        spmm(A, doubled, sparse_grad=True).sum().backward()
        # Gradient reached the leaf densely (through the mul backward).
        assert X.sparse_grad is None
        assert X.grad is not None

    def test_gather_rows_sparse_grad(self):
        weight = Tensor(np.random.default_rng(3).standard_normal((8, 4)),
                        requires_grad=True)
        idx = np.array([5, 1, 5, 0])
        upstream = np.random.default_rng(4).standard_normal((4, 4))
        gather_rows(weight, idx, sparse_grad=True).backward(upstream)
        rsg = weight.sparse_grad
        assert isinstance(rsg, RowSparseGrad)
        assert set(rsg.indices) == {0, 1, 5}
        dense_weight = Tensor(weight.data.copy(), requires_grad=True)
        gather_rows(dense_weight, idx).backward(upstream)
        np.testing.assert_allclose(rsg.to_dense(), dense_weight.grad, atol=1e-12)


# --------------------------------------------------------------------------- #
# Accumulation semantics
# --------------------------------------------------------------------------- #
class TestAccumulation:
    def _rsg(self, rows, value, shape=(5, 2)):
        rows = np.asarray(rows)
        return RowSparseGrad(rows, np.full((rows.size,) + shape[1:], value), shape)

    def test_sparse_plus_sparse_stays_sparse(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.accumulate_grad(self._rsg([0, 1], 1.0))
        t.accumulate_grad(self._rsg([1, 4], 2.0))
        assert t.sparse_grad is not None
        assert set(t.sparse_grad.indices) == {0, 1, 4}
        np.testing.assert_allclose(t.sparse_grad.to_dense()[1], 3.0)

    def test_dense_after_sparse_collapses(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.accumulate_grad(self._rsg([2], 1.0))
        t.accumulate_grad(np.ones((5, 2)))
        assert t.sparse_grad is None
        np.testing.assert_allclose(t.grad[2], 2.0)
        np.testing.assert_allclose(t.grad[0], 1.0)

    def test_sparse_after_dense_scatters_into_dense(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.accumulate_grad(np.ones((5, 2)))
        t.accumulate_grad(self._rsg([3], 4.0))
        assert t.sparse_grad is None
        np.testing.assert_allclose(t.grad[3], 5.0)

    def test_grad_read_densifies_transparently(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.accumulate_grad(self._rsg([1], 7.0))
        assert t.has_grad
        dense = t.grad  # legacy consumers see a plain ndarray
        assert isinstance(dense, np.ndarray)
        np.testing.assert_allclose(dense[1], 7.0)
        assert t.sparse_grad is None  # densification is one-way

    def test_has_grad_does_not_densify(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.accumulate_grad(self._rsg([1], 1.0))
        assert t.has_grad
        assert t.sparse_grad is not None

    def test_zero_grad_clears_sparse(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.accumulate_grad(self._rsg([1], 1.0))
        t.zero_grad()
        assert not t.has_grad
        assert t.grad is None

    def test_grad_setter_accepts_sparse_and_none(self):
        t = Tensor(np.zeros((5, 2)), requires_grad=True)
        t.grad = self._rsg([0], 1.0)
        assert t.sparse_grad is not None
        t.grad = None
        assert not t.has_grad


# --------------------------------------------------------------------------- #
# Optimizer scatter updates
# --------------------------------------------------------------------------- #
class TestSparseOptimizerUpdates:
    def _pair(self, shape=(6, 3), seed=0):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(shape)
        return Parameter(data.copy()), Parameter(data.copy())

    def _grads(self, shape=(6, 3), seed=1, steps=4):
        rng = np.random.default_rng(seed)
        out = []
        for _ in range(steps):
            rows = np.unique(rng.integers(0, shape[0], 3))
            vals = rng.standard_normal((rows.size,) + shape[1:])
            out.append(RowSparseGrad(rows, vals, shape))
        return out

    @pytest.mark.parametrize("factory", [
        lambda p: SGD([p], lr=0.1),
        lambda p: Adagrad([p], lr=0.1),
    ])
    def test_exact_match_with_dense(self, factory):
        p_dense, p_sparse = self._pair()
        opt_dense, opt_sparse = factory(p_dense), factory(p_sparse)
        for rsg in self._grads():
            opt_dense.zero_grad()
            opt_sparse.zero_grad()
            p_dense.accumulate_grad(rsg.to_dense())
            p_sparse.accumulate_grad(rsg)
            opt_dense.step()
            opt_sparse.step()
            np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-12)

    def test_sgd_momentum_falls_back_to_dense(self):
        p_dense, p_sparse = self._pair()
        opt_dense = SGD([p_dense], lr=0.1, momentum=0.9)
        opt_sparse = SGD([p_sparse], lr=0.1, momentum=0.9)
        for rsg in self._grads():
            opt_dense.zero_grad()
            opt_sparse.zero_grad()
            p_dense.accumulate_grad(rsg.to_dense())
            p_sparse.accumulate_grad(rsg)
            opt_dense.step()
            opt_sparse.step()
        np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-12)

    def test_adam_weight_decay_falls_back_to_dense(self):
        p_dense, p_sparse = self._pair()
        opt_dense = Adam([p_dense], lr=0.1, weight_decay=0.01)
        opt_sparse = Adam([p_sparse], lr=0.1, weight_decay=0.01)
        for rsg in self._grads():
            opt_dense.zero_grad()
            opt_sparse.zero_grad()
            p_dense.accumulate_grad(rsg.to_dense())
            p_sparse.accumulate_grad(rsg)
            opt_dense.step()
            opt_sparse.step()
        np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-12)

    def test_lazy_adam_matches_dense_under_full_coverage(self):
        """When every row is touched every step, lazy == dense exactly."""
        shape = (4, 3)
        p_dense, p_sparse = self._pair(shape)
        opt_dense, opt_sparse = Adam([p_dense], lr=0.05), Adam([p_sparse], lr=0.05)
        rng = np.random.default_rng(7)
        for _ in range(6):
            vals = rng.standard_normal(shape)
            rsg = RowSparseGrad(np.arange(shape[0]), vals, shape)
            opt_dense.zero_grad()
            opt_sparse.zero_grad()
            p_dense.accumulate_grad(vals.copy())
            p_sparse.accumulate_grad(rsg)
            opt_dense.step()
            opt_sparse.step()
            np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-10)

    def test_adam_survives_sparse_then_dense_grads(self):
        """Switching gradient paths mid-run must not corrupt Adam state."""
        p = Parameter(np.ones((4, 2)))
        opt = Adam([p], lr=0.1)
        p.accumulate_grad(RowSparseGrad(np.array([0, 1]), np.ones((2, 2)), (4, 2)))
        opt.step()
        opt.zero_grad()
        p.accumulate_grad(np.ones((4, 2)))
        opt.step()  # used to raise KeyError: 't'
        state = opt.state[id(p)]
        # Bias correction continued from the most-advanced row counter.
        assert state["t"] == 2
        assert np.all(np.isfinite(p.data))

    def test_adam_survives_dense_then_sparse_grads(self):
        p = Parameter(np.ones((4, 2)))
        opt = Adam([p], lr=0.1)
        for _ in range(3):
            opt.zero_grad()
            p.accumulate_grad(np.ones((4, 2)))
            opt.step()
        opt.zero_grad()
        p.accumulate_grad(RowSparseGrad(np.array([2]), np.ones((1, 2)), (4, 2)))
        opt.step()
        # Per-row counters start from the dense step count, so the touched
        # row's bias correction does not restart at t=1 with decayed moments.
        np.testing.assert_array_equal(opt.state[id(p)]["row_t"], [3, 3, 4, 3])

    def test_adam_dense_sparse_dense_round_trip_keeps_t_in_sync(self):
        p = Parameter(np.ones((4, 2)))
        opt = Adam([p], lr=0.01)
        for _ in range(2):
            opt.zero_grad()
            p.accumulate_grad(np.ones((4, 2)))
            opt.step()
        for _ in range(5):
            opt.zero_grad()
            p.accumulate_grad(RowSparseGrad(np.arange(4), np.ones((4, 2)), (4, 2)))
            opt.step()
        state = opt.state[id(p)]
        # The sparse path advanced the dense counter alongside row_t, so the
        # bias correction does not rewind when the dense path takes over.
        assert state["t"] == 7
        opt.zero_grad()
        p.accumulate_grad(np.ones((4, 2)))
        opt.step()
        assert state["t"] == 8
        # The dense step decayed every row, so the per-row counters advanced
        # with it; a further sparse step must bias-correct at t=9, not t=8.
        np.testing.assert_array_equal(state["row_t"], 8)
        opt.zero_grad()
        p.accumulate_grad(RowSparseGrad(np.array([1]), np.ones((1, 2)), (4, 2)))
        opt.step()
        np.testing.assert_array_equal(state["row_t"], [8, 9, 8, 8])
        assert state["t"] == 9
        assert np.all(np.isfinite(p.data))

    def test_lazy_adam_touched_rows_only(self):
        """Untouched rows must not move under lazy Adam."""
        p = Parameter(np.ones((5, 2)))
        opt = Adam([p], lr=0.1)
        p.accumulate_grad(RowSparseGrad(np.array([1, 3]), np.ones((2, 2)), (5, 2)))
        opt.step()
        np.testing.assert_allclose(p.data[0], 1.0)
        np.testing.assert_allclose(p.data[2], 1.0)
        assert np.all(p.data[1] < 1.0)
        row_t = opt.state[id(p)]["row_t"]
        np.testing.assert_array_equal(row_t, [0, 1, 0, 1, 0])


# --------------------------------------------------------------------------- #
# End-to-end training equivalence
# --------------------------------------------------------------------------- #
def train_twice(optimizer, model_cls=SpTransE, epochs=4, batch_size=16,
                regenerate=False, dataset=None, **model_kwargs):
    """Train the same model/dataset with and without sparse gradients."""
    results = []
    for sparse in (False, True):
        kg = dataset if dataset is not None else tiny_dataset()
        model = model_cls(kg.n_entities, kg.n_relations, 8, rng=0, **model_kwargs)
        config = TrainingConfig(epochs=epochs, batch_size=batch_size,
                                optimizer=optimizer, seed=0, sparse_grads=sparse,
                                regenerate_negatives=regenerate)
        result = Trainer(model, kg, config).train()
        results.append((result, model))
    return results


class TestTrainingEquivalence:
    @pytest.mark.parametrize("optimizer", ["sgd", "adagrad"])
    def test_exact_loss_curves(self, optimizer):
        (dense, m_dense), (sparse, m_sparse) = train_twice(optimizer)
        np.testing.assert_allclose(sparse.losses, dense.losses, rtol=1e-9)
        for p_dense, p_sparse in zip(m_dense.parameters(), m_sparse.parameters()):
            np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-10)

    @pytest.mark.parametrize("optimizer", ["sgd", "adagrad"])
    def test_exact_with_duplicate_entity_batches(self, optimizer):
        # 4 entities, 32-triple batches: heavy duplication inside every batch.
        kg = tiny_dataset(n_entities=4, n_relations=2, n_triples=64, seed=3)
        (dense, _), (sparse, _) = train_twice(optimizer, dataset=kg,
                                              batch_size=32)
        np.testing.assert_allclose(sparse.losses, dense.losses, rtol=1e-9)

    @pytest.mark.parametrize("optimizer", ["sgd", "adagrad"])
    def test_exact_with_regenerated_negatives(self, optimizer):
        (dense, _), (sparse, _) = train_twice(optimizer, regenerate=True)
        np.testing.assert_allclose(sparse.losses, dense.losses, rtol=1e-9)

    def test_adam_full_coverage_exact(self):
        # Every batch covers every entity and relation, so lazy Adam's
        # per-row counters advance in lockstep with dense Adam's global step.
        ents, rels = 4, 2
        triples = np.array([(h, r, t) for h in range(ents) for t in range(ents)
                            for r in range(rels) if h != t], dtype=np.int64)
        kg = KGDataset(triples, n_entities=ents, n_relations=rels, name="full")
        (dense, _), (sparse, _) = train_twice("adam", dataset=kg,
                                              batch_size=triples.shape[0])
        np.testing.assert_allclose(sparse.losses, dense.losses, rtol=1e-6)

    def test_adam_lazy_tracks_dense_within_tolerance(self):
        (dense, _), (sparse, _) = train_twice("adam", epochs=6)
        np.testing.assert_allclose(sparse.losses, dense.losses, rtol=5e-2)

    @pytest.mark.parametrize("model_cls", [SpTransH, SpTransR, SpTorusE])
    def test_other_sparse_models_train_equivalently(self, model_cls):
        (dense, _), (sparse, _) = train_twice("sgd", model_cls=model_cls,
                                              epochs=3)
        np.testing.assert_allclose(sparse.losses, dense.losses, rtol=1e-9)

    def test_set_sparse_grads_reaches_submodules(self):
        model = SpTransH(6, 2, 4, rng=0)
        assert model.sparse_grads is False
        model.set_sparse_grads(True)
        assert model.translations.sparse_grad is True
        assert model.normals.sparse_grad is True
        model.set_sparse_grads(False)
        assert model.translations.sparse_grad is False

    def test_trainer_enables_flag_from_config(self):
        kg = tiny_dataset()
        model = SpTransE(kg.n_entities, kg.n_relations, 4, rng=0)
        Trainer(model, kg, TrainingConfig(epochs=1, batch_size=8,
                                          sparse_grads=True))
        assert model.sparse_grads is True

    def test_trainer_disables_stale_flag(self):
        """The config owns the gradient path in both directions."""
        kg = tiny_dataset()
        model = SpTransE(kg.n_entities, kg.n_relations, 4, rng=0)
        model.set_sparse_grads(True)
        Trainer(model, kg, TrainingConfig(epochs=1, batch_size=8))
        assert model.sparse_grads is False

    def test_distributed_trainer_averages_sparse_grads_exactly(self):
        from repro.training.distributed import DataParallelTrainer

        kg = tiny_dataset(n_entities=20, n_relations=3, n_triples=80, seed=5)
        results = []
        for sparse in (False, True):
            model = SpTransE(kg.n_entities, kg.n_relations, 6, rng=0)
            config = TrainingConfig(epochs=2, batch_size=32, optimizer="adagrad",
                                    seed=0, sparse_grads=sparse)
            result = DataParallelTrainer(model, kg, 4, config).train()
            results.append((result.losses, model.embeddings.weight.data.copy()))
        np.testing.assert_allclose(results[1][0], results[0][0], rtol=1e-9)
        np.testing.assert_allclose(results[1][1], results[0][1], atol=1e-10)

    def test_distributed_allreduce_stays_sparse(self):
        """The averaged gradient installed before the step must be row-sparse
        when every shard produced a row-sparse gradient."""
        from repro.training.distributed import DataParallelTrainer

        kg = tiny_dataset(n_entities=20, n_relations=3, n_triples=40, seed=6)
        model = SpTransE(kg.n_entities, kg.n_relations, 6, rng=0)
        config = TrainingConfig(epochs=1, batch_size=16, optimizer="sgd",
                                seed=0, sparse_grads=True)
        trainer = DataParallelTrainer(model, kg, 2, config)
        installed = []
        original_step = trainer.optimizer.step

        def recording_step():
            installed.append(model.embeddings.weight.sparse_grad is not None)
            original_step()

        trainer.optimizer.step = recording_step
        trainer.train_step(next(iter(trainer.batches)))
        assert installed == [True]

    def test_accumulate_grad_rejects_wrong_dense_shape(self):
        t = Tensor(np.zeros((10, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            t.accumulate_grad(RowSparseGrad(np.array([0]), np.ones((1, 3)), (8, 3)))

    def test_grad_setter_rejects_wrong_dense_shape(self):
        t = Tensor(np.zeros((10, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            t.grad = RowSparseGrad(np.array([0]), np.ones((1, 3)), (8, 3))

    def test_cli_exposes_switch(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["train", "--sparse-grads"])
        assert args.sparse_grads is True
        args = build_parser().parse_args(["train"])
        assert args.sparse_grads is False


# --------------------------------------------------------------------------- #
# Chunked closed-form ranking
# --------------------------------------------------------------------------- #
class TestChunkedRanking:
    def _naive(self, model, heads, relations):
        ent = model.embeddings.entity_embeddings()
        rel = model.embeddings.relation_embeddings()
        translated = ent[heads] + rel[relations]
        return model._reduce(translated[:, None, :] - ent[None, :, :])

    @pytest.mark.parametrize("model_cls", [SpTransE, SpTorusE])
    def test_blocked_matches_unblocked(self, model_cls):
        model = model_cls(50, 3, 6, rng=0)
        model.RANK_BLOCK_ELEMENTS = 64  # force many small blocks
        heads = np.array([0, 7, 13])
        relations = np.array([0, 1, 2])
        np.testing.assert_allclose(
            model.score_all_tails(heads, relations),
            self._naive(model, heads, relations),
            atol=1e-12,
        )

    def test_chunk_size_parameter_bounds_blocks(self):
        model = SpTransE(40, 2, 4, rng=0)
        seen = []
        original = model._reduce

        def recording_reduce(diff):
            seen.append(diff.shape[1])
            return original(diff)

        model._reduce = recording_reduce
        heads = np.array([0, 1])
        relations = np.array([0, 1])
        blocked = model.score_all_tails(heads, relations, chunk_size=7)
        assert max(seen) <= 7 and len(seen) >= 6
        model._reduce = original
        np.testing.assert_allclose(blocked,
                                   self._naive(model, heads, relations),
                                   atol=1e-12)

    def test_heads_orientation_preserved(self):
        model = SpTransE(30, 2, 5, rng=1)
        relations = np.array([0, 1])
        tails = np.array([3, 9])
        ent = model.embeddings.entity_embeddings()
        rel = model.embeddings.relation_embeddings()
        target = ent[tails] - rel[relations]
        expected = model._reduce(ent[None, :, :] - target[:, None, :])
        np.testing.assert_allclose(model.score_all_heads(relations, tails),
                                   expected, atol=1e-12)

    def test_peak_memory_bounded(self):
        b, n, d = 8, 4000, 16
        model = SpTransE(n, 2, d, rng=0)
        model.RANK_BLOCK_ELEMENTS = 1 << 14  # ~128 rows per block
        heads = np.zeros(b, dtype=np.int64)
        relations = np.zeros(b, dtype=np.int64)
        full_diff_bytes = b * n * d * 8
        tracemalloc.start()
        model.score_all_tails(heads, relations)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The unblocked path allocates the (B, N, d) diff (plus temporaries of
        # the same size inside the reduction); blocked peak must stay well
        # under one full diff tensor.  The (B, N) output itself is unavoidable.
        assert peak < full_diff_bytes // 2, (
            f"peak {peak} bytes vs full diff {full_diff_bytes}"
        )
