"""Tests for the spec-driven model registry."""

import numpy as np
import pytest

from repro.baselines import DENSE_MODELS
from repro.models import SPARSE_MODELS
from repro.registry import (
    ModelSpec,
    UnknownModelError,
    build_model,
    get_entry,
    iter_entries,
    models_by_formulation,
    register_model,
    registry_summary,
    spec_from_model,
)


def spec_for_entry(entry, n_entities=25, n_relations=4, embedding_dim=8):
    """A minimal valid spec exercising every capability the entry declares."""
    caps = entry.capabilities
    return ModelSpec(
        model=entry.name,
        formulation=entry.formulation,
        n_entities=n_entities,
        n_relations=n_relations,
        embedding_dim=embedding_dim,
        relation_dim=6 if caps.accepts_relation_dim else None,
        backend="numpy" if caps.accepts_backend else None,
        dissimilarity=caps.default_dissimilarity if caps.accepts_dissimilarity else None,
        sparse_grads=caps.supports_sparse_grads,
    )


class TestRegistryContents:
    def test_legacy_views_match_registry(self):
        assert SPARSE_MODELS == models_by_formulation("sparse")
        assert DENSE_MODELS == models_by_formulation("dense")

    def test_every_paper_model_registered(self):
        assert set(SPARSE_MODELS) >= {"transe", "transr", "transh", "toruse",
                                      "distmult", "complex", "rotate"}
        assert set(DENSE_MODELS) >= {"transe", "transr", "transh", "toruse", "transd"}

    def test_unknown_model_raises_with_alternatives(self):
        with pytest.raises(UnknownModelError, match="transe"):
            get_entry("kg2e", "sparse")

    def test_registration_name_is_case_normalised(self):
        @register_model("CaseTestModelXYZ", "sparse")
        class CaseTestModel:
            pass

        assert get_entry("casetestmodelxyz", "sparse").cls is CaseTestModel
        assert get_entry("CaseTestModelXYZ", "sparse").cls is CaseTestModel

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_model("transe", "sparse")
            class Impostor:  # noqa: F811 — intentionally clashing
                pass

    def test_summary_is_json_friendly(self):
        import json

        summary = registry_summary()
        assert "transe/sparse" in summary
        assert summary["transe/sparse"]["accepts_backend"] is True
        assert summary["transe/dense"]["accepts_backend"] is False
        json.dumps(summary)  # must serialise without a custom encoder


class TestSpecRoundTrip:
    @pytest.mark.parametrize("entry", list(iter_entries()),
                             ids=lambda e: f"{e.name}-{e.formulation}")
    def test_every_model_builds_from_round_tripped_spec(self, entry):
        spec = spec_for_entry(entry)
        rebuilt_spec = ModelSpec.from_dict(spec.to_dict())
        assert rebuilt_spec == spec

        model = build_model(rebuilt_spec, rng=0)
        assert isinstance(model, entry.cls)
        assert model.n_entities == spec.n_entities
        assert model.n_relations == spec.n_relations
        assert model.embedding_dim == spec.embedding_dim

        recovered = spec_from_model(model)
        assert recovered == rebuilt_spec

    @pytest.mark.parametrize("entry", list(iter_entries()),
                             ids=lambda e: f"{e.name}-{e.formulation}")
    def test_built_model_scores(self, entry):
        model = build_model(spec_for_entry(entry), rng=0)
        triples = np.array([[0, 0, 1], [2, 1, 3]], dtype=np.int64)
        scores = model.score_triples(triples)
        assert scores.shape == (2,)
        assert np.all(np.isfinite(scores))

    def test_sparse_dense_capability_parity(self):
        """Models in both formulations agree on formulation-independent flags."""
        sparse = {e.name: e for e in iter_entries() if e.formulation == "sparse"}
        dense = {e.name: e for e in iter_entries() if e.formulation == "dense"}
        for name in set(sparse) & set(dense):
            s_caps, d_caps = sparse[name].capabilities, dense[name].capabilities
            assert s_caps.accepts_relation_dim == d_caps.accepts_relation_dim, name
            assert s_caps.default_dissimilarity == d_caps.default_dissimilarity, name
            # The backend knob is what distinguishes the formulations.
            assert s_caps.accepts_backend or not d_caps.accepts_backend, name

    def test_sparse_grads_flag_applied_on_build(self):
        spec = spec_for_entry(get_entry("transe", "sparse"))
        assert spec.sparse_grads
        model = build_model(spec, rng=0)
        assert model.sparse_grads is True

    def test_ann_fields_round_trip(self):
        spec = ModelSpec(model="transe", formulation="sparse", n_entities=50,
                         n_relations=4, embedding_dim=8, partitions=4,
                         ann="ivf", nprobe=8)
        assert ModelSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["ann"] == "ivf"
        assert spec.to_dict()["nprobe"] == 8

    def test_ann_defaults_omitted_from_dict(self):
        spec = ModelSpec(model="transe", formulation="sparse", n_entities=50,
                         n_relations=4, embedding_dim=8)
        payload = spec.to_dict()
        assert "ann" not in payload and "nprobe" not in payload


class TestSpecValidation:
    def test_rejects_unknown_formulation(self):
        with pytest.raises(ValueError, match="formulation"):
            ModelSpec(model="transe", formulation="quantum",
                      n_entities=5, n_relations=2, embedding_dim=4)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError, match="n_entities"):
            ModelSpec(model="transe", formulation="sparse",
                      n_entities=0, n_relations=2, embedding_dim=4)

    def test_from_dict_requires_core_keys(self):
        with pytest.raises(ValueError, match="missing required keys"):
            ModelSpec.from_dict({"model": "transe", "formulation": "sparse"})

    def test_nprobe_without_ann_rejected(self):
        with pytest.raises(ValueError, match="nprobe requires an ann"):
            ModelSpec(model="transe", formulation="sparse", n_entities=5,
                      n_relations=2, embedding_dim=4, nprobe=4)

    def test_nonpositive_nprobe_rejected(self):
        with pytest.raises(ValueError, match="nprobe"):
            ModelSpec(model="transe", formulation="sparse", n_entities=5,
                      n_relations=2, embedding_dim=4, ann="ivf", nprobe=0)

    def test_from_dict_ignores_unknown_keys(self):
        spec = ModelSpec.from_dict({
            "model": "transe", "formulation": "sparse", "n_entities": 5,
            "n_relations": 2, "embedding_dim": 4, "future_field": "ignored",
        })
        assert spec.model == "transe"

    def test_build_rejects_unsupported_relation_dim(self):
        spec = ModelSpec(model="transe", formulation="sparse", n_entities=5,
                         n_relations=2, embedding_dim=4, relation_dim=3)
        with pytest.raises(ValueError, match="relation_dim"):
            build_model(spec)

    def test_build_rejects_unsupported_backend(self):
        spec = ModelSpec(model="transe", formulation="dense", n_entities=5,
                         n_relations=2, embedding_dim=4, backend="scipy")
        with pytest.raises(ValueError, match="backend"):
            build_model(spec)

    def test_build_rejects_unsupported_dissimilarity(self):
        spec = ModelSpec(model="distmult", formulation="sparse", n_entities=5,
                         n_relations=2, embedding_dim=4, dissimilarity="L1")
        with pytest.raises(ValueError, match="dissimilarity"):
            build_model(spec)

    def test_build_rejects_unsupported_sparse_grads(self):
        spec = ModelSpec(model="rotate", formulation="sparse", n_entities=5,
                         n_relations=2, embedding_dim=4, sparse_grads=True)
        with pytest.raises(ValueError, match="sparse_grads"):
            build_model(spec)

    def test_unknown_model_error_message_is_unquoted(self):
        try:
            get_entry("kg2e", "sparse")
        except UnknownModelError as exc:
            assert not str(exc).startswith('"')

    def test_spec_from_unregistered_model_raises(self):
        with pytest.raises(UnknownModelError, match="not a registered"):
            spec_from_model(object())


class TestCheckpointIntegration:
    def test_checkpoint_preserves_backend_and_dissimilarity(self, tmp_path):
        from repro.training.checkpoint import load_checkpoint, model_from_checkpoint, save_checkpoint

        spec = ModelSpec(model="transr", formulation="sparse", n_entities=30,
                         n_relations=5, embedding_dim=8, relation_dim=6,
                         backend="numpy", dissimilarity="L1")
        model = build_model(spec, rng=3)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, model, epoch=1)

        restored = model_from_checkpoint(load_checkpoint(path))
        assert type(restored).__name__ == "SpTransR"
        assert restored.backend == "numpy"
        assert restored.dissimilarity_name == "L1"
        assert restored.relation_dim == 6
        np.testing.assert_allclose(restored.entity_embeddings.data,
                                   model.entity_embeddings.data)

    def test_legacy_checkpoint_without_spec_still_loads(self, tmp_path):
        """Pre-registry checkpoints (model_config only) reconstruct via the class name."""
        import json

        from repro.training.checkpoint import load_checkpoint, model_from_checkpoint, save_checkpoint

        model = build_model(ModelSpec(model="transe", formulation="sparse",
                                      n_entities=20, n_relations=3,
                                      embedding_dim=8), rng=0)
        path = str(tmp_path / "legacy.npz")
        save_checkpoint(path, model)

        data = dict(np.load(path, allow_pickle=False))
        metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
        del metadata["model_spec"]
        data["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"),
                                         dtype=np.uint8)
        np.savez(path, **data)

        restored = model_from_checkpoint(load_checkpoint(path))
        assert type(restored).__name__ == "SpTransE"

    def test_unreconstructable_checkpoint_errors_clearly(self, tmp_path):
        import json

        from repro.training.checkpoint import load_checkpoint, model_from_checkpoint, save_checkpoint

        model = build_model(ModelSpec(model="transe", formulation="sparse",
                                      n_entities=20, n_relations=3,
                                      embedding_dim=8), rng=0)
        path = str(tmp_path / "broken.npz")
        save_checkpoint(path, model)

        data = dict(np.load(path, allow_pickle=False))
        metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
        del metadata["model_spec"]
        metadata["model_config"]["model"] = "MysteryNet"
        data["metadata"] = np.frombuffer(json.dumps(metadata).encode("utf-8"),
                                         dtype=np.uint8)
        np.savez(path, **data)

        with pytest.raises(ValueError, match="MysteryNet"):
            model_from_checkpoint(load_checkpoint(path))
