"""Tests for checkpoint save / load / restore."""

import numpy as np
import pytest

from repro.data import generate_synthetic_kg
from repro.models import SpTransE, SpTransR
from repro.optim import Adam
from repro.training import (
    Trainer,
    TrainingConfig,
    load_checkpoint,
    restore_into,
    save_checkpoint,
)
from repro.training.trainer import build_optimizer


@pytest.fixture
def kg():
    return generate_synthetic_kg(40, 4, 200, rng=0)


@pytest.fixture
def trained(kg, tmp_path):
    model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    trainer = Trainer(model, kg, TrainingConfig(epochs=3, batch_size=64, seed=0),
                      optimizer=optimizer)
    result = trainer.train()
    path = save_checkpoint(str(tmp_path / "ckpt.npz"), model, optimizer,
                           epoch=3, losses=result.losses)
    return model, optimizer, result, path


class TestSaveLoad:
    def test_round_trip_model_state(self, kg, trained):
        model, _, result, path = trained
        checkpoint = load_checkpoint(path)
        assert checkpoint.epoch == 3
        assert checkpoint.losses == pytest.approx(result.losses)
        fresh = SpTransE(kg.n_entities, kg.n_relations, 16, rng=99)
        restore_into(checkpoint, fresh)
        np.testing.assert_allclose(fresh.embeddings.weight.data,
                                   model.embeddings.weight.data)

    def test_optimizer_state_restored(self, kg, trained):
        model, optimizer, _, path = trained
        checkpoint = load_checkpoint(path)
        fresh_model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=99)
        fresh_opt = Adam(fresh_model.parameters(), lr=0.5)
        restore_into(checkpoint, fresh_model, fresh_opt)
        assert fresh_opt.lr == pytest.approx(0.01)
        # The Adam moment buffers for the stacked embedding must match.
        original_state = optimizer.state[id(model.embeddings.weight)]
        restored_state = fresh_opt.state[id(fresh_model.embeddings.weight)]
        np.testing.assert_allclose(restored_state["m"], original_state["m"])
        np.testing.assert_allclose(restored_state["v"], original_state["v"])

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            load_checkpoint("/nonexistent/checkpoint.npz")

    def test_extension_added_automatically(self, kg, tmp_path):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        save_checkpoint(str(tmp_path / "bare"), model)
        checkpoint = load_checkpoint(str(tmp_path / "bare"))
        assert "embeddings.weight" in checkpoint.model_state

    def test_strict_mismatch_detected(self, kg, trained):
        _, _, _, path = trained
        checkpoint = load_checkpoint(path)
        wrong_dim = SpTransE(kg.n_entities, kg.n_relations, 32, rng=0)
        with pytest.raises(ValueError):
            restore_into(checkpoint, wrong_dim)
        wrong_class = SpTransR(kg.n_entities, kg.n_relations, 16, rng=0)
        with pytest.raises(ValueError):
            restore_into(checkpoint, wrong_class)

    def test_resumed_training_continues_from_checkpoint(self, kg, trained):
        """Training resumed from a checkpoint matches uninterrupted training."""
        _, _, _, path = trained
        cfg = TrainingConfig(epochs=2, batch_size=64, seed=1, shuffle=False,
                             normalize_every=0, optimizer="sgd", learning_rate=0.01)

        # Continuous run: 3 (already done in fixture, but with different config) —
        # here we just check resuming produces identical results across two restores.
        def resume_and_train():
            checkpoint = load_checkpoint(path)
            model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=123)
            optimizer = build_optimizer("sgd", model, 0.01)
            restore_into(checkpoint, model, optimizer)
            Trainer(model, kg, cfg, optimizer=optimizer).train()
            return model.embeddings.weight.data.copy()

        np.testing.assert_allclose(resume_and_train(), resume_and_train())


class TestArtifactAndMetadata:
    def test_load_checkpoint_resolves_artifact_directory(self, tmp_path, kg):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        save_checkpoint(str(tmp_path / "checkpoint.npz"), model)
        checkpoint = load_checkpoint(str(tmp_path))
        assert "embeddings.weight" in checkpoint.model_state

    def test_directory_without_checkpoint_fails_clearly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="checkpoint.npz"):
            load_checkpoint(str(tmp_path))

    def test_extra_metadata_round_trips(self, tmp_path, kg):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model,
                        extra_metadata={"experiment": "demo",
                                        "training_config": {"epochs": 3}})
        metadata = load_checkpoint(path).metadata
        assert metadata["experiment"] == "demo"
        assert metadata["training_config"] == {"epochs": 3}

    def test_extra_metadata_cannot_shadow_reserved_keys(self, tmp_path, kg):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model, epoch=7, extra_metadata={"epoch": 99})
        assert load_checkpoint(path).epoch == 7
