"""Tests for DataSpec / EvalSpec / ExperimentSpec serialisation and validation."""

import dataclasses
import json

import pytest

from repro.data import BernoulliNegativeSampler, UniformNegativeSampler
from repro.experiment import (
    CURRENT_SPEC_VERSION,
    DataSpec,
    EvalSpec,
    ExperimentSpec,
)
from repro.registry import ModelSpec
from repro.training import TrainingConfig


def tiny_spec(**overrides) -> ExperimentSpec:
    data = DataSpec(dataset="WN18RR", scale=0.001, valid_fraction=0.2,
                    test_fraction=0.2)
    n_entities, n_relations = data.vocab_sizes()
    base = dict(
        name="tiny",
        data=data,
        model=ModelSpec(model="transe", formulation="sparse",
                        n_entities=n_entities, n_relations=n_relations,
                        embedding_dim=8),
        training=TrainingConfig(epochs=2, batch_size=64, learning_rate=0.01),
        eval=EvalSpec(ks=(1, 10)),
        tags=("unit",),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestDataSpec:
    def test_round_trip(self):
        spec = DataSpec(dataset="FB15K", scale=0.05, generator="learnable",
                        negative_sampler="bernoulli", num_negatives=4,
                        valid_fraction=0.1, test_fraction=0.1, seed=7)
        assert DataSpec.from_dict(spec.to_dict()) == spec

    def test_triples_file_round_trip_and_unknown_sizes(self):
        spec = DataSpec(triples_file="kg.csv", test_fraction=0.1)
        assert "triples_file" in spec.to_dict()
        assert DataSpec.from_dict(spec.to_dict()) == spec
        assert spec.vocab_sizes() is None

    def test_vocab_sizes_match_materialized_dataset(self):
        spec = DataSpec(dataset="WN18RR", scale=0.001, test_fraction=0.1)
        kg = spec.materialize()
        assert spec.vocab_sizes() == (kg.n_entities, kg.n_relations)

    def test_materialize_is_deterministic(self):
        spec = DataSpec(dataset="WN18RR", scale=0.001, seed=3, test_fraction=0.1)
        a, b = spec.materialize(), spec.materialize()
        assert (a.split.train == b.split.train).all()
        assert (a.split.test == b.split.test).all()

    def test_learnable_generator(self):
        kg = DataSpec(dataset="WN18RR", scale=0.001, generator="learnable").materialize()
        assert kg.n_triples > 0

    def test_build_sampler_dispatch(self):
        spec = DataSpec(dataset="WN18RR", scale=0.001)
        kg = spec.materialize()
        assert isinstance(spec.build_sampler(kg), UniformNegativeSampler)
        bern = dataclasses.replace(spec, negative_sampler="bernoulli")
        assert isinstance(bern.build_sampler(kg), BernoulliNegativeSampler)

    def test_validation(self):
        with pytest.raises(ValueError):
            DataSpec(scale=0.0)
        with pytest.raises(ValueError):
            DataSpec(generator="weird")
        with pytest.raises(ValueError):
            DataSpec(negative_sampler="nce")
        with pytest.raises(ValueError):
            DataSpec(num_negatives=0)
        with pytest.raises(ValueError):
            DataSpec(valid_fraction=0.6, test_fraction=0.5)

    def test_unknown_key_rejected_with_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'scale'"):
            DataSpec.from_dict({"scal": 0.01})


class TestEvalSpec:
    def test_round_trip(self):
        spec = EvalSpec(protocols=("link_prediction", "classification"),
                        filtered=False, ks=(1, 5), batch_size=32, split="valid")
        assert EvalSpec.from_dict(spec.to_dict()) == spec

    def test_empty_protocols_allowed(self):
        assert EvalSpec(protocols=()).build_evaluators() == []

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown evaluation protocol"):
            EvalSpec(protocols=("mrr",))

    def test_duplicate_protocols_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            EvalSpec(protocols=("link_prediction", "link_prediction"))

    def test_build_evaluators_order_matches_protocols(self):
        spec = EvalSpec(protocols=("relation_categories", "link_prediction"))
        built = spec.build_evaluators(seed=3)
        assert [e.protocol for e in built] == ["relation_categories", "link_prediction"]


class TestExperimentSpec:
    def test_dict_round_trip(self):
        spec = tiny_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_through_file(self, tmp_path):
        spec = tiny_spec()
        path = str(tmp_path / "spec.json")
        spec.to_file(path)
        loaded = ExperimentSpec.from_file(path)
        assert loaded == spec
        # the serialised form is itself stable
        with open(path) as handle:
            assert loaded.to_dict() == json.load(handle)

    def test_model_vocab_sizes_filled_from_catalog(self):
        payload = tiny_spec().to_dict()
        payload["model"].pop("n_entities")
        payload["model"].pop("n_relations")
        assert ExperimentSpec.from_dict(payload) == tiny_spec()

    def test_file_data_requires_explicit_model_sizes(self):
        payload = tiny_spec().to_dict()
        payload["data"] = {"triples_file": "kg.csv"}
        payload["model"].pop("n_entities")
        payload["model"].pop("n_relations")
        with pytest.raises(ValueError, match="triples file"):
            ExperimentSpec.from_dict(payload)

    def test_missing_model_section_rejected(self):
        with pytest.raises(ValueError, match="'model' section"):
            ExperimentSpec.from_dict({"name": "x"})

    def test_unknown_top_level_key_rejected(self):
        payload = tiny_spec().to_dict()
        payload["trainnig"] = {}
        with pytest.raises(ValueError, match="did you mean 'training'"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_training_key_rejected(self):
        payload = tiny_spec().to_dict()
        payload["training"]["lr"] = 0.1
        with pytest.raises(ValueError, match="lr"):
            ExperimentSpec.from_dict(payload)

    def test_future_version_rejected(self):
        payload = tiny_spec().to_dict()
        payload["spec_version"] = CURRENT_SPEC_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            ExperimentSpec.from_dict(payload)

    def test_future_version_wins_over_its_unknown_fields(self):
        """A future spec's new fields must produce the 'upgrade' error, not
        a misleading unknown-key complaint."""
        payload = tiny_spec().to_dict()
        payload["spec_version"] = CURRENT_SPEC_VERSION + 1
        payload["data"]["some_future_field"] = 1
        with pytest.raises(ValueError, match="upgrade the library"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_model_key_rejected(self):
        payload = tiny_spec().to_dict()
        payload["model"]["sparse_grad"] = True
        with pytest.raises(ValueError, match="did you mean 'sparse_grads'"):
            ExperimentSpec.from_dict(payload)

    def test_string_protocols_rejected_with_clear_error(self):
        payload = tiny_spec().to_dict()
        payload["eval"]["protocols"] = "link_prediction"
        with pytest.raises(ValueError, match="must be a list"):
            ExperimentSpec.from_dict(payload)

    def test_invalid_json_file_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            ExperimentSpec.from_file(str(path))

    def test_replace_sweep_primitive(self):
        spec = tiny_spec()
        swept = spec.replace(name="tiny-m2",
                             training=spec.training.replace(margin=2.0))
        assert swept.training.margin == 2.0
        assert swept.name == "tiny-m2"
        assert spec.training.margin == 0.5  # original untouched

    def test_resolved_model_spec_rejects_vocab_mismatch(self):
        spec = tiny_spec()
        kg = spec.data.materialize()
        bad = spec.replace(model=spec.model.replace(n_entities=kg.n_entities + 1))
        with pytest.raises(ValueError, match="does not match"):
            bad.resolved_model_spec(kg)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(seed=-1)


class TestTrainingConfigFromDict:
    def test_round_trip(self):
        cfg = TrainingConfig(epochs=7, margin=0.25, optimizer="sgd")
        assert TrainingConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_key_rejected_with_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'learning_rate'"):
            TrainingConfig.from_dict({"learning_rte": 0.1})

    def test_unknown_key_without_close_match(self):
        with pytest.raises(ValueError, match="unknown training config key"):
            TrainingConfig.from_dict({"zzz_not_a_field": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            TrainingConfig.from_dict([("epochs", 3)])

    def test_field_validation_still_applies(self):
        with pytest.raises(ValueError):
            TrainingConfig.from_dict({"epochs": 0})
