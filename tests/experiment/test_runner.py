"""End-to-end tests for the Experiment runner and its artifact directory."""

import json
import os

import numpy as np
import pytest

from repro.experiment import (
    DataSpec,
    EvalSpec,
    Experiment,
    ExperimentSpec,
    load_artifact,
    run_experiment,
)
from repro.registry import ModelSpec
from repro.serving import InferenceEngine
from repro.training import TrainingConfig, load_model
from repro.training.checkpoint import load_checkpoint


def tiny_spec(**overrides) -> ExperimentSpec:
    data = DataSpec(dataset="WN18RR", scale=0.001, generator="learnable",
                    valid_fraction=0.2, test_fraction=0.2)
    n_entities, n_relations = data.vocab_sizes()
    base = dict(
        name="runner-test",
        data=data,
        model=ModelSpec(model="transe", formulation="sparse",
                        n_entities=n_entities, n_relations=n_relations,
                        embedding_dim=8),
        training=TrainingConfig(epochs=2, batch_size=64, learning_rate=0.01),
        eval=EvalSpec(ks=(1, 10)),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(scope="module")
def finished_run(tmp_path_factory):
    """One artifact-producing run shared by the read-only assertions."""
    artifact_dir = str(tmp_path_factory.mktemp("artifacts") / "run")
    spec = tiny_spec(eval=EvalSpec(
        protocols=("link_prediction", "classification", "relation_categories"),
        ks=(1, 10)))
    result = run_experiment(spec, artifact_dir=artifact_dir)
    return spec, artifact_dir, result


class TestRun:
    def test_artifact_directory_layout(self, finished_run):
        _, artifact_dir, _ = finished_run
        names = sorted(os.listdir(artifact_dir))
        assert names == ["checkpoint.npz", "environment.json", "history.json",
                         "metrics.json", "spec.json", "weights"]

    def test_spec_json_round_trips(self, finished_run):
        spec, artifact_dir, _ = finished_run
        assert ExperimentSpec.from_file(os.path.join(artifact_dir, "spec.json")) == spec

    def test_metrics_json_matches_in_memory_result(self, finished_run):
        _, artifact_dir, result = finished_run
        with open(os.path.join(artifact_dir, "metrics.json")) as handle:
            on_disk = json.load(handle)
        in_memory = json.loads(json.dumps(result.metrics, default=float))
        assert on_disk == in_memory
        assert set(on_disk["evaluations"]) == {"link_prediction", "classification",
                                               "relation_categories"}

    def test_history_tracks_every_epoch(self, finished_run):
        spec, artifact_dir, _ = finished_run
        with open(os.path.join(artifact_dir, "history.json")) as handle:
            history = json.load(handle)
        assert len(history["losses"]) == spec.training.epochs
        assert len(history["epochs"]) == spec.training.epochs
        assert {"forward_s", "backward_s", "step_s"} <= set(history["epochs"][0])

    def test_environment_record(self, finished_run):
        spec, artifact_dir, _ = finished_run
        with open(os.path.join(artifact_dir, "environment.json")) as handle:
            env = json.load(handle)
        assert env["experiment"] == spec.name
        assert env["seed"] == spec.seed
        assert "numpy" in env and "python" in env

    def test_load_model_warm_loads_artifact_dir(self, finished_run):
        _, artifact_dir, result = finished_run
        reloaded = load_model(artifact_dir)
        assert type(reloaded) is type(result.model)
        for name, value in result.model.state_dict().items():
            np.testing.assert_array_equal(reloaded.state_dict()[name], value)

    def test_reloaded_model_reproduces_metrics_json(self, finished_run):
        """The acceptance criterion: artifact → reload → same eval metrics."""
        spec, artifact_dir, _ = finished_run
        artifact = load_artifact(artifact_dir)
        model = artifact.load_model()
        dataset = spec.data.materialize()
        for evaluator in spec.eval.build_evaluators(seed=spec.seed):
            report = evaluator.run(model, dataset)
            recorded = artifact.metrics["evaluations"][evaluator.protocol]
            assert json.loads(json.dumps(report.to_dict(), default=float)) == recorded

    def test_inference_engine_from_artifact(self, finished_run):
        spec, artifact_dir, result = finished_run
        engine = InferenceEngine.from_artifact(artifact_dir, filtered=True)
        answer = engine.top_k_tails(1, 0, k=3, filtered=True)
        assert len(answer.entities) <= 3
        # filtered answers exclude the run's own known positives
        dataset = spec.data.materialize()
        known = {t for h, r, t in dataset.known_triples() if (h, r) == (1, 0)}
        assert not (set(answer.entities) & known)

    def test_checkpoint_metadata_records_training_config(self, finished_run):
        spec, artifact_dir, _ = finished_run
        checkpoint = load_checkpoint(artifact_dir)
        assert checkpoint.metadata["experiment"] == spec.name
        restored = TrainingConfig.from_dict(checkpoint.metadata["training_config"])
        assert restored == spec.training


class TestRunnerBehaviour:
    def test_same_spec_same_seed_is_reproducible(self):
        spec = tiny_spec(eval=EvalSpec(protocols=()))
        a = run_experiment(spec)
        b = run_experiment(spec)
        assert a.training.losses == b.training.losses
        for name, value in a.model.state_dict().items():
            np.testing.assert_array_equal(b.model.state_dict()[name], value)

    def test_different_seed_changes_model(self):
        base = tiny_spec(eval=EvalSpec(protocols=()))
        a = run_experiment(base)
        b = run_experiment(base.replace(seed=1))
        assert any(not np.array_equal(a.model.state_dict()[k], b.model.state_dict()[k])
                   for k in a.model.state_dict())

    def test_infeasible_eval_fails_before_training(self):
        data = DataSpec(dataset="WN18RR", scale=0.001, valid_fraction=0.0,
                        test_fraction=0.2)
        spec = tiny_spec(data=data,
                         eval=EvalSpec(protocols=("classification",)))
        with pytest.raises(ValueError, match="non-empty 'valid' split"):
            run_experiment(spec)

    def test_num_negatives_tiles_training_split(self):
        spec = tiny_spec(eval=EvalSpec(protocols=()))
        multi = spec.replace(
            data=DataSpec(dataset="WN18RR", scale=0.001, generator="learnable",
                          valid_fraction=0.2, test_fraction=0.2, num_negatives=3))
        experiment = Experiment(multi)
        dataset = multi.data.materialize()
        tiled = experiment._training_dataset(dataset)
        assert tiled.n_triples == 3 * dataset.n_triples
        assert tiled.n_entities == dataset.n_entities
        result = experiment.run()
        assert np.isfinite(result.training.final_loss)

    def test_bernoulli_sampler_path(self):
        spec = tiny_spec(
            data=DataSpec(dataset="WN18RR", scale=0.001, generator="learnable",
                          valid_fraction=0.2, test_fraction=0.2,
                          negative_sampler="bernoulli"),
            eval=EvalSpec(protocols=()))
        assert np.isfinite(run_experiment(spec).training.final_loss)

    def test_resume_from_artifact_reduces_epoch_budget(self, tmp_path):
        artifact = str(tmp_path / "first")
        spec = tiny_spec(eval=EvalSpec(protocols=()),
                         training=TrainingConfig(epochs=2, batch_size=64,
                                                 learning_rate=0.01))
        run_experiment(spec, artifact_dir=artifact)
        resumed = Experiment(spec.replace(training=spec.training.replace(epochs=3)),
                             resume=artifact).run()
        assert len(resumed.training.epochs) == 1  # 3 total - 2 already done

    def test_resume_rejects_optimizer_mismatch(self, tmp_path):
        artifact = str(tmp_path / "first")
        spec = tiny_spec(eval=EvalSpec(protocols=()))
        run_experiment(spec, artifact_dir=artifact)
        clash = spec.replace(training=spec.training.replace(optimizer="sgd"))
        with pytest.raises(ValueError, match="cannot resume"):
            Experiment(clash, resume=artifact).run()

    def test_report_lookup(self):
        result = run_experiment(tiny_spec())
        assert result.report("link_prediction").protocol == "link_prediction"
        with pytest.raises(KeyError):
            result.report("classification")

    def test_load_artifact_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(str(tmp_path / "nope"))

    def test_premateralized_dataset_is_used_verbatim(self):
        spec = tiny_spec(eval=EvalSpec(protocols=()))
        dataset = spec.data.materialize()
        result = Experiment(spec, dataset=dataset).run()
        assert result.dataset is dataset

    def test_checkpoint_path_without_artifact_dir(self, tmp_path):
        ckpt = str(tmp_path / "model.npz")
        spec = tiny_spec(eval=EvalSpec(protocols=()))
        Experiment(spec, checkpoint_path=ckpt).run()
        reloaded = load_model(ckpt)
        assert reloaded.n_entities == spec.model.n_entities
