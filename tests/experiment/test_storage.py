"""Tests for the out-of-core storage path: parity, artifacts, mmap serving,
and checkpoint-resume trajectory equality."""

import os

import numpy as np
import pytest

from repro.data import (
    InMemoryTripleStore,
    SQLiteKGStore,
    StreamingBatchIterator,
    UniformNegativeSampler,
    generate_synthetic_kg,
)
from repro.experiment import DataSpec, EvalSpec, Experiment, ExperimentSpec
from repro.models import SpTransE
from repro.registry import ModelSpec
from repro.serving import InferenceEngine
from repro.training import Trainer, TrainingConfig
from repro.utils.seeding import new_rng


def make_spec(storage="memory", num_workers=1, epochs=2, **data_overrides):
    data = DataSpec(dataset="WN18RR", scale=0.003, test_fraction=0.05,
                    storage=storage, **data_overrides)
    n_entities, n_relations = data.vocab_sizes()
    return ExperimentSpec(
        name=f"storage-{storage}",
        data=data,
        model=ModelSpec(model="transe", formulation="sparse",
                        n_entities=n_entities, n_relations=n_relations,
                        embedding_dim=16, sparse_grads=True),
        training=TrainingConfig(epochs=epochs, batch_size=256,
                                learning_rate=0.01, sparse_grads=True,
                                num_workers=num_workers),
        eval=EvalSpec(protocols=()),
    )


class TestStorageParity:
    def test_sqlite_and_memory_streams_produce_identical_loss_curves(self):
        """The same streaming pipeline over SQLite vs RAM differs only in the
        byte source, so the loss curves must be identical floats."""
        kg = generate_synthetic_kg(50, 5, 400, rng=0)
        cfg = TrainingConfig(epochs=3, batch_size=64, learning_rate=0.01,
                             sparse_grads=True, seed=0)

        def run(store):
            model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=1)
            batches = StreamingBatchIterator(
                store, batch_size=cfg.batch_size,
                sampler=UniformNegativeSampler(kg.n_entities, rng=new_rng(4)),
                seed=0)
            return Trainer(model, config=cfg, batches=batches).train(), model

        sqlite_store = SQLiteKGStore()
        sqlite_store.ingest_dataset(kg)
        sqlite_result, sqlite_model = run(sqlite_store)
        memory_result, memory_model = run(InMemoryTripleStore(kg))
        assert sqlite_result.losses == memory_result.losses
        np.testing.assert_array_equal(sqlite_model.embeddings.weight.data,
                                      memory_model.embeddings.weight.data)

    def test_experiment_sqlite_storage_end_to_end(self, tmp_path):
        artifact_dir = str(tmp_path / "artifact")
        spec = make_spec(storage="sqlite", epochs=3)
        result = Experiment(spec, artifact_dir=artifact_dir).run()
        assert len(result.training.losses) == 3
        assert result.training.losses[-1] < result.training.losses[0]
        assert os.path.exists(os.path.join(artifact_dir, "data.sqlite"))
        # Out-of-core mode released the materialised triples before training.
        assert result.dataset is None
        assert result.dataset_name.startswith("WN18RR")

    def test_experiment_sqlite_with_workers_matches_single(self, tmp_path):
        spec = make_spec(storage="sqlite", epochs=2)
        single = Experiment(spec, artifact_dir=str(tmp_path / "w1")).run()
        multi = Experiment(
            spec.replace(training=spec.training.replace(num_workers=2)),
            artifact_dir=str(tmp_path / "w2")).run()
        np.testing.assert_allclose(single.training.losses,
                                   multi.training.losses, rtol=1e-9)
        for (name, a), (_, b) in zip(single.model.named_parameters(),
                                     multi.model.named_parameters()):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-9, atol=1e-12,
                                       err_msg=name)

    def test_stale_store_with_same_count_is_rejected(self, tmp_path):
        """Reusing a storage_path across different datasets must fail even
        when the triple counts coincide (content fingerprint, not count)."""
        db = str(tmp_path / "shared.sqlite")
        spec_a = make_spec(storage="sqlite", epochs=1, storage_path=db, seed=0)
        Experiment(spec_a).run()
        # Same generator/scale, different generation seed: identical counts,
        # different triples.
        spec_b = make_spec(storage="sqlite", epochs=1, storage_path=db, seed=1)
        with pytest.raises(ValueError, match="different dataset"):
            Experiment(spec_b).run()
        # The matching spec still reuses the store without re-spooling.
        result = Experiment(spec_a).run()
        assert len(result.training.losses) == 1

    def test_sqlite_storage_keeps_dataset_when_evaluating(self, tmp_path):
        spec = make_spec(storage="sqlite", epochs=1)
        spec = spec.replace(
            eval=EvalSpec(protocols=("link_prediction",), ks=(1, 10)))
        result = Experiment(spec, artifact_dir=str(tmp_path / "a")).run()
        assert result.dataset is not None
        assert result.report("link_prediction").metrics


class TestMmapArtifacts:
    def test_run_then_serve_memory_mapped(self, tmp_path):
        """run → from_artifact → query with embeddings left on disk."""
        artifact_dir = str(tmp_path / "artifact")
        Experiment(make_spec(epochs=1), artifact_dir=artifact_dir).run()
        assert os.path.isdir(os.path.join(artifact_dir, "weights"))

        engine = InferenceEngine.from_artifact(artifact_dir)  # mmap="auto"
        for name, param in engine.model.named_parameters():
            assert isinstance(param.data, np.memmap), name
        result = engine.top_k_tails(3, 1, k=5)
        assert len(result.entities) == 5
        assert list(result.scores) == sorted(result.scores)

    def test_mmap_answers_match_dense_answers(self, tmp_path):
        artifact_dir = str(tmp_path / "artifact")
        Experiment(make_spec(epochs=1), artifact_dir=artifact_dir).run()
        mapped = InferenceEngine.from_artifact(artifact_dir, mmap=True)
        dense = InferenceEngine.from_artifact(artifact_dir, mmap=False)
        assert not any(isinstance(p.data, np.memmap)
                       for p in dense.model.parameters())
        for head in range(5):
            a = mapped.top_k_tails(head, 1, k=7)
            b = dense.top_k_tails(head, 1, k=7)
            assert a.entities == b.entities
            np.testing.assert_allclose(a.scores, b.scores)

    def test_mmap_requires_weight_files(self, tmp_path):
        artifact_dir = str(tmp_path / "artifact")
        Experiment(make_spec(epochs=1), artifact_dir=artifact_dir).run()
        import shutil

        shutil.rmtree(os.path.join(artifact_dir, "weights"))
        with pytest.raises(FileNotFoundError):
            InferenceEngine.from_artifact(artifact_dir, mmap=True)
        # auto falls back to the dense load.
        engine = InferenceEngine.from_artifact(artifact_dir)
        assert engine.top_k_tails(0, 0, k=3).entities


class TestSparseResumeRegression:
    """Satellite regression: lazy sparse optimiser state + the data pipeline
    must both survive save → load → resume and continue the identical
    trajectory of an uninterrupted run."""

    @pytest.mark.parametrize("optimizer", ["adam", "adagrad"])
    def test_resume_continues_identical_trajectory(self, tmp_path, optimizer):
        spec = make_spec(epochs=6)
        spec = spec.replace(
            name=f"resume-{optimizer}",
            training=spec.training.replace(optimizer=optimizer))

        uninterrupted = Experiment(spec).run()

        half = spec.replace(training=spec.training.replace(epochs=3))
        checkpoint = str(tmp_path / "half.npz")
        Experiment(half, checkpoint_path=checkpoint).run()
        resumed = Experiment(spec, resume=checkpoint).run()

        assert len(resumed.training.losses) == 3
        np.testing.assert_array_equal(
            uninterrupted.training.losses[3:], resumed.training.losses)
        for (name, a), (_, b) in zip(
                uninterrupted.model.named_parameters(),
                resumed.model.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

    def test_resume_restores_optimizer_step_count(self, tmp_path):
        spec = make_spec(epochs=2)
        checkpoint = str(tmp_path / "ck.npz")
        Experiment(spec, checkpoint_path=checkpoint).run()
        from repro.training import load_checkpoint

        metadata = load_checkpoint(checkpoint).metadata
        assert metadata["optimizer_step_count"] > 0

    def test_resume_with_workers_is_rejected(self, tmp_path):
        spec = make_spec(epochs=4)
        checkpoint = str(tmp_path / "ck.npz")
        Experiment(spec.replace(training=spec.training.replace(epochs=2)),
                   checkpoint_path=checkpoint).run()
        multi = spec.replace(training=spec.training.replace(num_workers=2))
        with pytest.raises(ValueError, match="num_workers"):
            Experiment(multi, resume=checkpoint).run()
