"""Tests for the real multiprocess data-parallel trainer."""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    InMemoryTripleStore,
    SQLiteKGStore,
    StreamingBatchIterator,
    UniformNegativeSampler,
    generate_synthetic_kg,
)
from repro.models import SpTransE
from repro.training import MultiprocessResult, MultiprocessTrainer, Trainer, TrainingConfig
from repro.utils.seeding import new_rng


@pytest.fixture
def kg():
    return generate_synthetic_kg(60, 6, 480, rng=0)


def config(**overrides):
    base = dict(epochs=2, batch_size=120, learning_rate=0.01, seed=0,
                sparse_grads=True)
    base.update(overrides)
    return TrainingConfig(**base)


def memory_factory(kg, cfg):
    def build():
        rng = new_rng(cfg.seed)
        sampler = UniformNegativeSampler(kg.n_entities, rng=rng)
        return BatchIterator(kg, batch_size=cfg.batch_size, sampler=sampler,
                             shuffle=cfg.shuffle,
                             regenerate_negatives=cfg.regenerate_negatives,
                             rng=rng)
    return build


class TestMultiprocessTrainer:
    def test_validation(self, kg):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        with pytest.raises(ValueError):
            MultiprocessTrainer(model, memory_factory(kg, config()), 0, config())

    def test_matches_single_worker_trajectory(self, kg):
        """Two processes exchanging row-sparse gradients follow the exact
        single-worker parameter trajectory (the DDP guarantee, measured)."""
        cfg = config(epochs=3, optimizer="adam")
        single = SpTransE(kg.n_entities, kg.n_relations, 16, rng=3)
        result_single = Trainer(single, config=cfg,
                                batches=memory_factory(kg, cfg)()).train()
        multi = SpTransE(kg.n_entities, kg.n_relations, 16, rng=3)
        result_multi = MultiprocessTrainer(
            multi, memory_factory(kg, cfg), 2, cfg).train()
        np.testing.assert_allclose(result_single.losses, result_multi.losses,
                                   rtol=1e-9)
        np.testing.assert_allclose(single.embeddings.weight.data,
                                   multi.embeddings.weight.data,
                                   rtol=1e-9, atol=1e-12)

    def test_replicas_stay_in_sync(self, kg):
        """verify_sync hashes every replica's bytes — passing it IS the test."""
        cfg = config()
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = MultiprocessTrainer(model, memory_factory(kg, cfg), 3, cfg,
                                     verify_sync=True).train()
        assert isinstance(result, MultiprocessResult)
        assert result.steps > 0

    def test_result_reports_measured_and_modeled_comm(self, kg):
        cfg = config(epochs=1)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = MultiprocessTrainer(model, memory_factory(kg, cfg), 2, cfg).train()
        assert result.n_workers == 2
        assert result.steps == 4  # 480 triples / batch 120
        assert result.allreduce_nbytes > 0
        assert result.comm_time > 0
        assert result.modeled_comm_time > 0
        payload = result.to_dict()
        assert payload["n_workers"] == 2.0
        assert payload["allreduce_mb"] > 0

    def test_sparse_exchange_volume_below_dense(self, kg):
        """Row-sparse all-reduce ships only touched rows, not the table."""
        cfg = config(epochs=1, batch_size=24)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        dense_nbytes = sum(p.nbytes for p in model.parameters())
        result = MultiprocessTrainer(model, memory_factory(kg, cfg), 2, cfg).train()
        assert result.allreduce_nbytes / result.steps < dense_nbytes

    def test_single_worker_degenerates_to_plain_training(self, kg):
        cfg = config(epochs=2)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=1)
        result = MultiprocessTrainer(model, memory_factory(kg, cfg), 1, cfg).train()
        reference = SpTransE(kg.n_entities, kg.n_relations, 8, rng=1)
        Trainer(reference, config=cfg, batches=memory_factory(kg, cfg)()).train()
        np.testing.assert_allclose(model.embeddings.weight.data,
                                   reference.embeddings.weight.data,
                                   rtol=1e-12)

    def test_loss_decreases(self, kg):
        cfg = config(epochs=4, learning_rate=0.05)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        result = MultiprocessTrainer(model, memory_factory(kg, cfg), 2, cfg).train()
        assert result.losses[-1] < result.losses[0]

    def test_worker_error_propagates(self, kg):
        cfg = config(epochs=1)

        def broken_factory():
            raise RuntimeError("factory exploded")

        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        trainer = MultiprocessTrainer(model, broken_factory, 2, cfg)
        with pytest.raises(RuntimeError):
            trainer.train()


class TestMultiprocessStreaming:
    def test_sqlite_streaming_across_workers(self, kg, tmp_path):
        """Workers each open their own SQLite connection and stay lockstep."""
        db = str(tmp_path / "kg.sqlite")
        with SQLiteKGStore(db) as store:
            store.ingest_dataset(kg)
        cfg = config(epochs=2)

        def sqlite_factory():
            return StreamingBatchIterator(
                SQLiteKGStore(db), batch_size=cfg.batch_size,
                sampler=UniformNegativeSampler(kg.n_entities, rng=new_rng(7)),
                seed=0)

        def memory_twin_factory():
            return StreamingBatchIterator(
                InMemoryTripleStore(kg), batch_size=cfg.batch_size,
                sampler=UniformNegativeSampler(kg.n_entities, rng=new_rng(7)),
                seed=0)

        multi = SpTransE(kg.n_entities, kg.n_relations, 8, rng=2)
        result_multi = MultiprocessTrainer(multi, sqlite_factory, 2, cfg).train()
        single = SpTransE(kg.n_entities, kg.n_relations, 8, rng=2)
        result_single = Trainer(single, config=cfg,
                                batches=memory_twin_factory()).train()
        np.testing.assert_allclose(result_single.losses, result_multi.losses,
                                   rtol=1e-9)
        np.testing.assert_allclose(single.embeddings.weight.data,
                                   multi.embeddings.weight.data,
                                   rtol=1e-9, atol=1e-12)
