"""Unit tests for the deadline-aware batching primitives.

The batcher and estimator are deliberately clock-free (callers pass
monotonic timestamps), so every scenario here is deterministic: we feed
synthetic "now" values and assert on ship decisions directly.
"""

import pytest

from repro.serving.deadline import DeadlineBatcher, ServiceTimeEstimator


class TestServiceTimeEstimator:
    def test_default_before_observations(self):
        est = ServiceTimeEstimator(default_ms=5.0)
        assert est.per_row_ms() == pytest.approx(5.0)
        assert est.estimate_s(4) == pytest.approx(0.020)

    def test_ewma_converges_toward_observations(self):
        est = ServiceTimeEstimator(default_ms=10.0, alpha=0.5)
        # Repeated 2 ms/row observations pull the estimate down geometrically.
        for _ in range(20):
            est.observe(batch_size=4, seconds=0.008)  # 2 ms per row
        assert est.per_row_ms() == pytest.approx(2.0, rel=1e-3)

    def test_observe_normalises_by_batch_size(self):
        est = ServiceTimeEstimator(default_ms=4.0, alpha=1.0)
        est.observe(batch_size=8, seconds=0.016)  # 16 ms / 8 rows = 2 ms/row
        assert est.per_row_ms() == pytest.approx(2.0)

    def test_rejects_bad_observations(self):
        est = ServiceTimeEstimator()
        before = est.per_row_ms()
        est.observe(batch_size=0, seconds=0.5)
        est.observe(batch_size=4, seconds=-1.0)
        assert est.per_row_ms() == before


class TestDeadlineBatcher:
    def make(self, max_batch=4, default_ms=5.0, slack_ms=1.0):
        est = ServiceTimeEstimator(default_ms=default_ms)
        return DeadlineBatcher(max_batch=max_batch, estimator=est,
                               slack_ms=slack_ms), est

    def test_ships_when_full(self):
        batcher, _ = self.make(max_batch=3)
        for i in range(3):
            batcher.add(i, deadline=100.0)
        # Full batch ships immediately regardless of how far the deadline is.
        assert batcher.ready(now=0.0)
        assert batcher.wait_budget(now=0.0) == 0.0
        assert [item for item, _ in batcher.take()] == [0, 1, 2]
        assert len(batcher) == 0

    def test_ships_at_deadline_minus_estimate(self):
        # 5 ms/row default, slack 1 ms, batch of 1 pending → for a deadline at
        # t=1.0 the ship time is 1.0 - estimate(2) - slack = 1.0 - 0.011.
        batcher, _ = self.make(max_batch=4, default_ms=5.0, slack_ms=1.0)
        batcher.add("a", deadline=1.0)
        ship = batcher.ship_time()
        assert ship == pytest.approx(1.0 - 0.010 - 0.001)
        assert not batcher.ready(now=ship - 0.005)
        assert batcher.ready(now=ship)

    def test_oldest_deadline_governs(self):
        batcher, _ = self.make(max_batch=8)
        batcher.add("late", deadline=50.0)
        batcher.add("early", deadline=1.0)
        batcher.add("later", deadline=60.0)
        # Ship time tracks the most urgent request, not arrival order.
        assert batcher.ship_time() < 1.0

    def test_wait_budget_semantics(self):
        batcher, _ = self.make(max_batch=2)
        # Empty queue: block indefinitely.
        assert batcher.wait_budget(now=0.0) is None
        batcher.add("a", deadline=10.0)
        budget = batcher.wait_budget(now=0.0)
        assert budget is not None and 0.0 < budget < 10.0
        # Past the ship time the budget clamps to zero.
        assert batcher.wait_budget(now=20.0) == 0.0

    def test_take_pops_at_most_max_batch_fifo(self):
        batcher, _ = self.make(max_batch=2)
        for i in range(5):
            batcher.add(i, deadline=float(i))
        assert [item for item, _ in batcher.take()] == [0, 1]
        assert [item for item, _ in batcher.take()] == [2, 3]
        # Remaining item's deadline is re-derived from what is left.
        assert len(batcher) == 1
        assert batcher.ship_time() < 4.0

    def test_take_on_empty_returns_empty(self):
        batcher, _ = self.make()
        assert batcher.take() == []

    def test_faster_estimates_delay_shipping(self):
        slow, est_slow = self.make(default_ms=20.0, slack_ms=0.0)
        fast, est_fast = self.make(default_ms=1.0, slack_ms=0.0)
        slow.add("x", deadline=1.0)
        fast.add("x", deadline=1.0)
        # A faster engine can afford to wait longer for batch-mates.
        assert fast.ship_time() > slow.ship_time()
