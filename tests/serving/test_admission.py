"""Unit tests for the SLO admission controller and latency metrics."""

import pytest

from repro.serving.admission import AdmissionController, retry_after_header
from repro.serving.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    batch_size_distribution,
    merge_batch_distributions,
)


class TestAdmissionController:
    def test_admits_when_prediction_fits(self):
        ctrl = AdmissionController(workers=2, default_service_ms=5.0)
        admitted, retry = ctrl.admit("/v1/x", deadline_budget_ms=50.0)
        assert admitted and retry is None
        assert ctrl.inflight == 1
        assert ctrl.admitted == 1

    def test_sheds_when_prediction_busts_deadline(self):
        ctrl = AdmissionController(workers=1, default_service_ms=100.0)
        admitted, retry = ctrl.admit("/v1/x", deadline_budget_ms=10.0)
        assert not admitted
        assert retry is not None and retry >= 0.010
        assert ctrl.shed == 1
        assert ctrl.inflight == 0  # shed requests never occupy a slot

    def test_queue_depth_raises_prediction(self):
        ctrl = AdmissionController(workers=2, default_service_ms=10.0)
        base = ctrl.predicted_completion_ms("/v1/x")
        for _ in range(4):
            assert ctrl.admit("/v1/x", deadline_budget_ms=1e6)[0]
        # 4 inflight over 2 workers: wait = 10 * 2, total 30 vs base 10.
        assert ctrl.predicted_completion_ms("/v1/x") == pytest.approx(30.0)
        assert base == pytest.approx(10.0)

    def test_release_returns_occupancy_and_feeds_ewma(self):
        ctrl = AdmissionController(workers=1, default_service_ms=50.0, alpha=0.5)
        ctrl.admit("/v1/x", deadline_budget_ms=1e6)
        ctrl.release("/v1/x", service_ms=10.0)
        assert ctrl.inflight == 0
        # First observation replaces the default outright.
        assert ctrl.service_ms("/v1/x") == pytest.approx(10.0)
        ctrl.release("/v1/x", service_ms=20.0)
        assert ctrl.service_ms("/v1/x") == pytest.approx(15.0)

    def test_release_without_measurement_keeps_estimate(self):
        ctrl = AdmissionController(workers=1, default_service_ms=7.0)
        ctrl.admit("/v1/x", deadline_budget_ms=1e6)
        ctrl.release("/v1/x", service_ms=None)
        assert ctrl.service_ms("/v1/x") == pytest.approx(7.0)

    def test_headroom_sheds_earlier(self):
        lax = AdmissionController(workers=1, default_service_ms=10.0)
        strict = AdmissionController(workers=1, default_service_ms=10.0,
                                     headroom=2.0)
        assert lax.admit("/v1/x", deadline_budget_ms=15.0)[0]
        assert not strict.admit("/v1/x", deadline_budget_ms=15.0)[0]

    def test_per_route_estimates_are_independent(self):
        ctrl = AdmissionController(workers=1, default_service_ms=5.0)
        ctrl.observe("/v1/a", 50.0)
        assert ctrl.service_ms("/v1/a") == pytest.approx(50.0)
        assert ctrl.service_ms("/v1/b") == pytest.approx(5.0)

    def test_sustained_shedding_decays_estimate_until_a_probe_is_admitted(self):
        # A transiently inflated estimate must not starve the route forever:
        # every shed decays it geometrically, so the gate re-opens and the
        # next admitted request re-measures the real service time.
        ctrl = AdmissionController(workers=1, default_service_ms=1_000.0)
        admitted = False
        for _ in range(300):
            admitted, _ = ctrl.admit("/v1/x", deadline_budget_ms=50.0)
            if admitted:
                break
        assert admitted, "estimate never decayed below the deadline"
        assert ctrl.shed > 0
        # The probe's measurement snaps the estimate back to reality.
        ctrl.release("/v1/x", service_ms=400.0)
        assert not ctrl.admit("/v1/x", deadline_budget_ms=50.0)[0]

    def test_stats_payload(self):
        ctrl = AdmissionController(workers=3)
        ctrl.admit("/v1/x", 1e6)
        stats = ctrl.stats()
        assert stats["workers"] == 3
        assert stats["inflight"] == 1
        assert stats["admitted"] == 1

    def test_retry_after_header_rounds_up(self):
        assert retry_after_header(0.01) == "1"
        assert retry_after_header(1.2) == "2"


class TestLatencyHistogram:
    def test_percentiles_bracket_observations(self):
        hist = LatencyHistogram()
        for ms in [1.0] * 90 + [100.0] * 10:
            hist.observe(ms)
        # Geometric bins give ~4% relative error.
        assert hist.percentile(50) == pytest.approx(1.0, rel=0.10)
        assert hist.percentile(99) == pytest.approx(100.0, rel=0.10)

    def test_empty_summary(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0

    def test_summary_fields(self):
        hist = LatencyHistogram()
        hist.observe(5.0)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["max_ms"] == pytest.approx(5.0)
        assert summary["p95_ms"] == pytest.approx(5.0, rel=0.10)


class TestMetricsRegistry:
    def test_routes_lazily_created_and_snapshotted(self):
        registry = MetricsRegistry()
        registry.route("/v1/a").observe_ok(2.0, within_deadline=True)
        registry.route("/v1/a").observe_ok(3.0, within_deadline=False)
        registry.route("/v1/b").shed += 1
        snap = registry.snapshot()
        assert snap["/v1/a"]["ok"] == 1
        assert snap["/v1/a"]["deadline_miss"] == 1
        assert snap["/v1/a"]["latency"]["count"] == 2
        assert snap["/v1/b"]["shed"] == 1


class TestBatchDistribution:
    def test_single_distribution(self):
        dist = batch_size_distribution({1: 3, 4: 2})
        assert dist["batches"] == 5
        assert dist["requests"] == 11
        assert dist["largest_batch"] == 4
        assert dist["multi_query_batches"] == 2
        assert dist["mean_batch_size"] == pytest.approx(11 / 5)

    def test_merge(self):
        a = batch_size_distribution({1: 2})
        b = batch_size_distribution({2: 1, 1: 1})
        merged = merge_batch_distributions([a, b])
        assert merged["batches"] == 4
        assert merged["requests"] == 5
        assert merged["multi_query_batches"] == 1

    def test_empty(self):
        dist = batch_size_distribution({})
        assert dist["batches"] == 0
        assert merge_batch_distributions([])["requests"] == 0
