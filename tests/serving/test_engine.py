"""Tests for the inference engine: correctness vs brute force, filters, cache."""

import numpy as np
import pytest

from repro.registry import ModelSpec, build_model
from repro.serving import InferenceEngine, TopKQuery
from repro.training.checkpoint import save_checkpoint


def make_model(name="transe", formulation="sparse", n_entities=40, n_relations=6,
               dim=8, rng=0):
    return build_model(ModelSpec(model=name, formulation=formulation,
                                 n_entities=n_entities, n_relations=n_relations,
                                 embedding_dim=dim), rng=rng)


@pytest.fixture
def engine():
    return InferenceEngine(make_model(), cache_size=64)


class TestTopKCorrectness:
    @pytest.mark.parametrize("name,formulation", [
        ("transe", "sparse"), ("transh", "sparse"), ("distmult", "sparse"),
        ("rotate", "sparse"), ("transe", "dense"), ("transd", "dense"),
    ])
    def test_matches_brute_force_argsort(self, name, formulation):
        model = make_model(name, formulation)
        engine = InferenceEngine(model, cache_size=0)
        result = engine.top_k_tails(3, 1, k=7)
        scores = model.score_all_tails(np.array([3]), np.array([1]))[0]
        expected = np.argsort(scores, kind="stable")[:7]
        assert list(result.entities) == [int(i) for i in expected]
        np.testing.assert_allclose(result.scores, scores[expected])

    def test_matches_predict_tails(self, engine):
        direct = engine.model.predict_tails(5, 2, k=9)
        served = engine.top_k_tails(5, 2, k=9)
        assert list(served.entities) == [int(i) for i in direct]

    def test_heads_direction(self, engine):
        result = engine.top_k_heads(relation=2, tail=7, k=5)
        scores = engine.model.score_all_heads(np.array([2]), np.array([7]))[0]
        expected = np.argsort(scores, kind="stable")[:5]
        assert list(result.entities) == [int(i) for i in expected]

    def test_k_larger_than_vocabulary(self, engine):
        result = engine.top_k_tails(0, 0, k=10_000)
        assert len(result.entities) == engine.model.n_entities
        assert list(result.scores) == sorted(result.scores)

    def test_scores_are_ascending(self, engine):
        result = engine.top_k_tails(1, 1, k=10)
        assert list(result.scores) == sorted(result.scores)


class TestFilteredMasks:
    def test_known_tails_excluded(self):
        model = make_model()
        known = [(0, 1, 2), (0, 1, 3), (9, 0, 4)]
        engine = InferenceEngine(model, known_triples=known)
        raw = engine.top_k_tails(0, 1, k=model.n_entities)
        filtered = engine.top_k_tails(0, 1, k=model.n_entities, filtered=True)
        assert {2, 3} <= set(raw.entities)
        assert {2, 3}.isdisjoint(set(filtered.entities))
        # Other queries are unaffected by (0, 1)'s filter list.
        other = engine.top_k_tails(9, 1, k=model.n_entities, filtered=True)
        assert len(other.entities) == model.n_entities

    def test_known_heads_excluded(self):
        engine = InferenceEngine(make_model(), known_triples=[(6, 2, 7)])
        filtered = engine.top_k_heads(relation=2, tail=7, k=100, filtered=True)
        assert 6 not in filtered.entities

    def test_filtered_without_known_triples_is_raw(self, engine):
        raw = engine.top_k_tails(4, 1, k=6)
        filtered = engine.top_k_tails(4, 1, k=6, filtered=True)
        assert raw.entities == filtered.entities


class TestBatching:
    def test_batch_matches_singles(self):
        model = make_model()
        batch_engine = InferenceEngine(model, cache_size=0)
        single_engine = InferenceEngine(model, cache_size=0)
        queries = [TopKQuery(h, r, 5) for h in range(4) for r in range(3)]
        batched = batch_engine.top_k_tails_batch(queries)
        singles = [single_engine.top_k_tails(q.anchor, q.relation, q.k)
                   for q in queries]
        for b, s in zip(batched, singles):
            assert b.entities == s.entities

    def test_batch_coalesces_into_one_scoring_call(self):
        engine = InferenceEngine(make_model(), cache_size=0)
        queries = [TopKQuery(h, 0, 3) for h in range(8)]
        engine.top_k_tails_batch(queries)
        assert engine.stats()["scoring_calls"] == 1

    def test_batch_deduplicates_repeated_pairs(self):
        engine = InferenceEngine(make_model(), cache_size=0)
        queries = [TopKQuery(1, 1, 4)] * 10
        results = engine.top_k_tails_batch(queries)
        stats = engine.stats()
        assert stats["rows_scored"] == 1
        assert all(r.entities == results[0].entities for r in results)

    def test_mixed_k_within_batch(self):
        engine = InferenceEngine(make_model(), cache_size=0)
        results = engine.top_k_tails_batch([TopKQuery(0, 0, 3), TopKQuery(0, 0, 8)])
        assert len(results[0].entities) == 3
        assert len(results[1].entities) == 8
        assert results[1].entities[:3] == results[0].entities


class TestCacheBehaviour:
    def test_repeat_query_hits_cache(self, engine):
        engine.top_k_tails(2, 2, k=5)
        calls_before = engine.stats()["scoring_calls"]
        engine.top_k_tails(2, 2, k=5)
        assert engine.stats()["scoring_calls"] == calls_before
        assert engine.cache.stats()["hits"] >= 1

    def test_different_k_is_a_different_entry(self, engine):
        engine.top_k_tails(2, 2, k=5)
        calls_before = engine.stats()["scoring_calls"]
        engine.top_k_tails(2, 2, k=6)
        assert engine.stats()["scoring_calls"] == calls_before + 1

    def test_reload_invalidates_cache_and_swaps_weights(self, tmp_path):
        model_a = make_model(rng=0)
        model_b = make_model(rng=99)
        path = str(tmp_path / "b.npz")
        save_checkpoint(path, model_b)

        engine = InferenceEngine(model_a, cache_size=64)
        before = engine.top_k_tails(0, 1, k=5)
        engine.reload(path)
        assert len(engine.cache) == 0
        after = engine.top_k_tails(0, 1, k=5)
        assert engine.stats()["reloads"] == 1
        # Different weights must change the scores (entities may coincide).
        assert before.scores != after.scores

    def test_set_known_triples_invalidates_cache(self, engine):
        engine.top_k_tails(0, 1, k=5, filtered=True)
        engine.set_known_triples([(0, 1, int(engine.top_k_tails(0, 1, k=1).entities[0]))])
        top = engine.top_k_tails(0, 1, k=5, filtered=True)
        best_raw = engine.top_k_tails(0, 1, k=1).entities[0]
        assert best_raw not in top.entities

    def test_snapshot_cached_and_dropped_on_reload(self, tmp_path):
        engine = InferenceEngine(make_model(rng=0), cache_size=4)
        snap1 = engine.entity_snapshot()
        assert snap1 is engine.entity_snapshot()
        path = str(tmp_path / "c.npz")
        save_checkpoint(path, make_model(rng=5))
        engine.reload(path)
        assert not np.array_equal(snap1, engine.entity_snapshot())


class TestNearestEntities:
    def test_matches_brute_force_and_excludes_self(self):
        engine = InferenceEngine(make_model(), cache_size=0)
        result = engine.nearest_entities(7, k=5)
        ent = engine.model.entity_embedding_matrix()
        distances = np.linalg.norm(ent - ent[7], axis=1)
        distances[7] = np.inf
        expected = np.argsort(distances, kind="stable")[:5]
        assert 7 not in result.entities
        assert list(result.entities) == [int(i) for i in expected]
        np.testing.assert_allclose(result.scores, distances[expected], atol=1e-9)

    def test_cached_and_invalidated_on_reload(self, tmp_path):
        engine = InferenceEngine(make_model(rng=0), cache_size=16)
        first = engine.nearest_entities(3, k=4)
        assert engine.nearest_entities(3, k=4) == first
        assert engine.cache.stats()["hits"] >= 1
        path = str(tmp_path / "n.npz")
        save_checkpoint(path, make_model(rng=42))
        engine.reload(path)
        after = engine.nearest_entities(3, k=4)
        assert first.scores != after.scores

    def test_out_of_range_entity_raises(self):
        engine = InferenceEngine(make_model(), cache_size=0)
        with pytest.raises(IndexError, match="out of range"):
            engine.nearest_entities(10_000)


class TestScoringAPI:
    def test_score_matches_model(self, engine):
        expected = float(engine.model.score_triples(np.array([[1, 2, 3]]))[0])
        assert engine.score(1, 2, 3) == pytest.approx(expected)

    def test_classify_threshold(self, engine):
        scores = engine.score_triples([(0, 0, 1), (2, 1, 3)])
        threshold = float(scores.mean())
        labels = engine.classify([(0, 0, 1), (2, 1, 3)], threshold)
        assert labels == [bool(s <= threshold) for s in scores]

    def test_from_checkpoint_round_trip(self, tmp_path):
        model = make_model(rng=7)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        engine = InferenceEngine.from_checkpoint(path)
        assert engine.spec().model == "transe"
        direct = model.predict_tails(2, 1, k=4)
        assert list(engine.top_k_tails(2, 1, k=4).entities) == [int(i) for i in direct]
