"""HTTP-level tests: a real server on an ephemeral port, queried with urllib."""

import http.client
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.registry import ModelSpec, build_model
from repro.serving import InferenceEngine, make_server


@pytest.fixture
def served():
    """A live server on an ephemeral port; yields (server, model)."""
    model = build_model(ModelSpec(model="transe", formulation="sparse",
                                  n_entities=30, n_relations=4,
                                  embedding_dim=8), rng=0)
    engine = InferenceEngine(model, known_triples=[(0, 1, 2)], cache_size=32)
    server = make_server(engine, port=0, max_wait_ms=1.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, model
    server.shutdown()
    server.close()
    thread.join(timeout=5.0)


def get(server, path):
    with urllib.request.urlopen(server.url + path) as response:
        return json.loads(response.read().decode("utf-8"))


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def post_error(server, path, payload) -> urllib.error.HTTPError:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(server, path, payload)
    return excinfo.value


class TestEndpoints:
    def test_health(self, served):
        server, _ = served
        payload = get(server, "/v1/health")
        assert payload["status"] == "ok"
        assert payload["model"] == "SpTransE"

    def test_spec_round_trips(self, served):
        server, model = served
        payload = get(server, "/v1/spec")
        spec = ModelSpec.from_dict(payload)
        rebuilt = build_model(spec, rng=0)
        assert type(rebuilt) is type(model)

    def test_top_k_tails_matches_predict_tails(self, served):
        server, model = served
        out = post(server, "/v1/top_k_tails", {"head": 3, "relation": 1, "k": 6})
        expected = model.predict_tails(3, 1, k=6)
        assert out["entities"] == [int(i) for i in expected]
        assert len(out["scores"]) == 6

    def test_top_k_heads(self, served):
        server, model = served
        out = post(server, "/v1/top_k_heads", {"tail": 5, "relation": 2, "k": 4})
        expected = model.predict_heads(2, 5, k=4)
        assert out["entities"] == [int(i) for i in expected]

    def test_filtered_excludes_known_positive(self, served):
        server, model = served
        out = post(server, "/v1/top_k_tails",
                   {"head": 0, "relation": 1, "k": model.n_entities,
                    "filtered": True})
        assert 2 not in out["entities"]

    def test_score_and_classify(self, served):
        server, model = served
        triples = [[0, 1, 2], [3, 2, 4]]
        scored = post(server, "/v1/score", {"triples": triples})
        expected = model.score_triples(np.asarray(triples))
        np.testing.assert_allclose(scored["scores"], expected)

        labels = post(server, "/v1/classify",
                      {"triples": triples, "threshold": float(expected.mean())})
        assert labels["labels"] == [bool(s <= expected.mean()) for s in expected]

    def test_nearest_entities(self, served):
        server, model = served
        out = post(server, "/v1/nearest", {"entity": 4, "k": 3})
        assert 4 not in out["entities"]
        assert len(out["entities"]) == 3
        expected = server.engine.nearest_entities(4, k=3)
        assert out["entities"] == list(expected.entities)

    def test_nearest_out_of_range_is_400(self, served):
        server, _ = served
        error = post_error(server, "/v1/nearest", {"entity": 10_000})
        assert error.code == 400

    def test_stats_exposes_engine_cache_and_batcher(self, served):
        server, _ = served
        post(server, "/v1/top_k_tails", {"head": 1, "relation": 1})
        payload = get(server, "/v1/stats")
        assert payload["queries_served"] >= 1
        assert "cache" in payload and "batcher" in payload


class TestErrorHandling:
    def test_missing_field_is_400(self, served):
        server, _ = served
        error = post_error(server, "/v1/top_k_tails", {"head": 1})
        assert error.code == 400
        assert "relation" in json.loads(error.read().decode())["error"]

    def test_out_of_range_id_is_400(self, served):
        server, _ = served
        error = post_error(server, "/v1/top_k_tails",
                           {"head": 10_000, "relation": 0})
        assert error.code == 400

    def test_non_integer_id_is_400(self, served):
        server, _ = served
        error = post_error(server, "/v1/top_k_tails",
                           {"head": "zero", "relation": 0})
        assert error.code == 400

    def test_malformed_json_is_400(self, served):
        server, _ = served
        request = urllib.request.Request(
            server.url + "/v1/top_k_tails", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, served):
        server, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/nope")
        assert excinfo.value.code == 404

    def test_unknown_post_path_is_404(self, served):
        server, _ = served
        error = post_error(server, "/v1/nope", {"head": 1})
        assert error.code == 404
        # The connection must survive the 404 (body drained, keep-alive intact).
        out = post(server, "/v1/top_k_tails", {"head": 1, "relation": 0, "k": 2})
        assert len(out["entities"]) == 2

    def test_bad_triples_shape_is_400(self, served):
        server, _ = served
        error = post_error(server, "/v1/score", {"triples": [[1, 2]]})
        assert error.code == 400

    def test_score_with_out_of_range_id_is_400(self, served):
        server, _ = served
        error = post_error(server, "/v1/score", {"triples": [[99_999, 0, 0]]})
        assert error.code == 400


class TestCoalescingOverHTTP:
    def test_concurrent_http_queries_share_scoring_calls(self, served):
        server, _ = served
        server.engine.cache.clear()
        baseline_calls = server.engine.stats()["scoring_calls"]
        barrier = threading.Barrier(8)
        results = {}

        def worker(i):
            barrier.wait()
            results[i] = post(server, "/v1/top_k_tails",
                              {"head": i, "relation": 0, "k": 3})

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(results) == 8
        batcher_stats = server.batcher.stats()
        assert batcher_stats["requests"] >= 8
        # Eight distinct queries must have cost fewer than eight scoring calls.
        assert server.engine.stats()["scoring_calls"] - baseline_calls < 8


class TestAnnOverrides:
    """Per-request "ann"/"nprobe" payload fields (parsed even with no index)."""

    def test_ann_false_answers_exactly_and_bypasses_batcher(self, served):
        server, model = served
        before = server.batcher.stats()["requests"]
        out = post(server, "/v1/top_k_tails",
                   {"head": 3, "relation": 1, "k": 4, "ann": False})
        assert out["entities"] == [int(i) for i in model.predict_tails(3, 1, k=4)]
        assert server.batcher.stats()["requests"] == before

    def test_nprobe_override_bypasses_batcher(self, served):
        server, _ = served
        before = server.batcher.stats()["requests"]
        out = post(server, "/v1/top_k_heads",
                   {"tail": 5, "relation": 2, "k": 3, "nprobe": 4})
        assert len(out["entities"]) == 3
        assert server.batcher.stats()["requests"] == before

    def test_non_boolean_ann_is_400(self, served):
        server, _ = served
        error = post_error(server, "/v1/top_k_tails",
                           {"head": 3, "relation": 1, "ann": "yes"})
        assert error.code == 400

    @pytest.mark.parametrize("nprobe", [0, -2, "4", True])
    def test_invalid_nprobe_is_400(self, served, nprobe):
        server, _ = served
        error = post_error(server, "/v1/top_k_tails",
                           {"head": 3, "relation": 1, "nprobe": nprobe})
        assert error.code == 400


class TestKeepAlive:
    """Satellite regression: HTTP/1.1 keep-alive on the threaded tier.

    Two sequential requests over one http.client connection must both be
    answered on the same socket with correct Content-Length framing — this
    is what lets bench/replay clients reuse connections instead of paying a
    TCP handshake per query.
    """

    def test_two_sequential_requests_share_one_connection(self, served):
        server, model = served
        conn = http.client.HTTPConnection(server.server_address[0],
                                          server.server_address[1], timeout=10)
        try:
            conn.request("GET", "/v1/health")
            first = conn.getresponse()
            assert first.status == 200
            body = first.read()
            assert int(first.getheader("Content-Length")) == len(body)
            sock = conn.sock
            assert sock is not None

            payload = json.dumps({"head": 1, "relation": 0, "k": 3}).encode()
            conn.request("POST", "/v1/top_k_tails", body=payload,
                         headers={"Content-Type": "application/json"})
            second = conn.getresponse()
            assert second.status == 200
            answer = json.loads(second.read())
            assert answer["entities"] == [int(i)
                                          for i in model.predict_tails(1, 0, k=3)]
            # Same socket object → the server kept the connection open.
            assert conn.sock is sock
        finally:
            conn.close()

    def test_error_response_keeps_connection_alive(self, served):
        server, _ = served
        conn = http.client.HTTPConnection(server.server_address[0],
                                          server.server_address[1], timeout=10)
        try:
            bad = json.dumps({"relation": 0}).encode()
            conn.request("POST", "/v1/top_k_tails", body=bad,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            response.read()
            sock = conn.sock
            conn.request("GET", "/v1/health")
            ok = conn.getresponse()
            assert ok.status == 200
            ok.read()
            assert conn.sock is sock
        finally:
            conn.close()
