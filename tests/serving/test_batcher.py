"""Tests for the request batcher: coalescing, correctness, error isolation."""

import threading
import time

import pytest

from repro.registry import ModelSpec, build_model
from repro.serving import EngineClosed, InferenceEngine, RequestBatcher


def make_engine(n_entities=40, cache_size=0):
    model = build_model(ModelSpec(model="transe", formulation="sparse",
                                  n_entities=n_entities, n_relations=6,
                                  embedding_dim=8), rng=0)
    return InferenceEngine(model, cache_size=cache_size)


class TestBatcher:
    def test_single_request_round_trip(self):
        engine = make_engine()
        with RequestBatcher(engine, max_batch=8, max_wait_ms=1.0) as batcher:
            result = batcher.top_k_tails(0, 1, k=5)
        expected = engine.model.predict_tails(0, 1, k=5)
        assert list(result.entities) == [int(i) for i in expected]

    def test_concurrent_requests_coalesce(self):
        engine = make_engine()
        # A long window guarantees the worker collects everything in flight.
        with RequestBatcher(engine, max_batch=64, max_wait_ms=200.0) as batcher:
            results = {}
            barrier = threading.Barrier(16)

            def worker(i):
                barrier.wait()
                results[i] = batcher.top_k_tails(i % 8, i % 3, k=4)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = batcher.stats()

        assert stats["requests"] == 16
        assert stats["batches"] < 16, "no coalescing happened"
        assert stats["mean_batch_size"] > 1.0
        for i, result in results.items():
            expected = engine.model.predict_tails(i % 8, i % 3, k=4)
            assert list(result.entities) == [int(x) for x in expected]

    def test_mixed_directions_in_one_batch(self):
        engine = make_engine()
        with RequestBatcher(engine, max_batch=8, max_wait_ms=100.0) as batcher:
            out = {}

            def tails():
                out["tails"] = batcher.top_k_tails(1, 1, k=3)

            def heads():
                out["heads"] = batcher.top_k_heads(1, 2, k=3)

            threads = [threading.Thread(target=tails), threading.Thread(target=heads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert list(out["tails"].entities) == [
            int(i) for i in engine.model.predict_tails(1, 1, k=3)]
        assert list(out["heads"].entities) == [
            int(i) for i in engine.model.predict_heads(1, 2, k=3)]

    def test_error_propagates_to_caller(self):
        engine = make_engine(n_entities=10)
        with RequestBatcher(engine, max_batch=4, max_wait_ms=1.0) as batcher:
            with pytest.raises(IndexError):
                batcher.top_k_tails(10_000, 0, k=3)
            # The worker survives a failed batch and keeps serving.
            ok = batcher.top_k_tails(0, 0, k=3)
            assert len(ok.entities) == 3

    def test_submit_after_close_fails(self):
        batcher = RequestBatcher(make_engine(), max_batch=4, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.top_k_tails(0, 0, k=1)

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError):
            RequestBatcher(make_engine(), max_batch=0)


class TestShutdownSemantics:
    """Satellite regression: requests in flight when close() runs must either
    complete or raise EngineClosed — never hang or drop their futures."""

    def test_submit_after_close_raises_engine_closed(self):
        batcher = RequestBatcher(make_engine(), max_batch=4, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(EngineClosed):
            batcher.top_k_tails(0, 0, k=1)

    def test_requests_in_flight_at_close_still_complete(self):
        """close() drains: every request enqueued before it gets a result."""
        engine = make_engine()
        outcomes = {}
        # A long window keeps the first batch open while close() arrives.
        batcher = RequestBatcher(engine, max_batch=64, max_wait_ms=100.0)
        barrier = threading.Barrier(9)

        def worker(i):
            barrier.wait()
            try:
                outcomes[i] = batcher.top_k_tails(i % 8, i % 3, k=4)
            except EngineClosed as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        barrier.wait()
        time.sleep(0.2)          # let every submission reach the queue/batch
        batcher.close()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive(), "a caller hung across close()"
        assert len(outcomes) == 8
        # close() joins the worker, which drains the queue: everything that
        # made it into the queue before the sentinel completes for real.
        for i, outcome in outcomes.items():
            assert not isinstance(outcome, Exception), outcome
            expected = engine.model.predict_tails(i % 8, i % 3, k=4)
            assert list(outcome.entities) == [int(x) for x in expected]

    def test_wedged_worker_fails_queued_requests_instead_of_hanging(self):
        """If the engine wedges past close()'s timeout, queued requests get
        EngineClosed instead of waiting forever."""
        engine = make_engine()
        release = threading.Event()
        original = engine.top_k_tails_batch

        def slow_batch(queries):
            release.wait(timeout=30.0)
            return original(queries)

        engine.top_k_tails_batch = slow_batch
        batcher = RequestBatcher(engine, max_batch=1, max_wait_ms=0.1)
        outcomes = {}

        def worker(i):
            try:
                outcomes[i] = batcher.top_k_tails(0, 0, k=2)
            except EngineClosed as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        # Wait until the worker thread is wedged inside the engine call and
        # the remaining requests sit in the queue behind it.
        deadline = time.monotonic() + 5.0
        while batcher._queue.qsize() < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        batcher.close(timeout=0.2)
        release.set()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive(), "a caller hung across a wedged close()"
        assert len(outcomes) == 3
        assert any(isinstance(o, EngineClosed) for o in outcomes.values())

    def test_double_close_is_idempotent(self):
        batcher = RequestBatcher(make_engine(), max_batch=4, max_wait_ms=1.0)
        batcher.close()
        batcher.close()
        with pytest.raises(EngineClosed):
            batcher.top_k_heads(0, 0, k=1)

    def test_close_races_with_concurrent_submissions(self):
        """close() fired with no synchronisation against a wave of submitters:
        every caller must get either a real result or EngineClosed, and the
        whole thing must settle (no hung thread, no dropped future)."""
        engine = make_engine()
        batcher = RequestBatcher(engine, max_batch=8, max_wait_ms=5.0)
        outcomes = {}
        start = threading.Barrier(13)

        def worker(i):
            start.wait()
            try:
                outcomes[i] = batcher.top_k_tails(i % 8, i % 3, k=4)
            except EngineClosed as exc:
                outcomes[i] = exc

        def closer():
            start.wait()
            time.sleep(0.005)   # land mid-wave, not before it
            batcher.close()

        threads = ([threading.Thread(target=worker, args=(i,))
                    for i in range(12)]
                   + [threading.Thread(target=closer)])
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive(), "a caller hung across a racing close()"

        assert len(outcomes) == 12
        for i, outcome in outcomes.items():
            if isinstance(outcome, EngineClosed):
                continue
            expected = engine.model.predict_tails(i % 8, i % 3, k=4)
            assert list(outcome.entities) == [int(x) for x in expected]

    def test_concurrent_close_calls_are_safe(self):
        batcher = RequestBatcher(make_engine(), max_batch=4, max_wait_ms=1.0)
        threads = [threading.Thread(target=batcher.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive()
        with pytest.raises(EngineClosed):
            batcher.top_k_tails(0, 0, k=1)
