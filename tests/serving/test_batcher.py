"""Tests for the request batcher: coalescing, correctness, error isolation."""

import threading

import pytest

from repro.registry import ModelSpec, build_model
from repro.serving import InferenceEngine, RequestBatcher


def make_engine(n_entities=40, cache_size=0):
    model = build_model(ModelSpec(model="transe", formulation="sparse",
                                  n_entities=n_entities, n_relations=6,
                                  embedding_dim=8), rng=0)
    return InferenceEngine(model, cache_size=cache_size)


class TestBatcher:
    def test_single_request_round_trip(self):
        engine = make_engine()
        with RequestBatcher(engine, max_batch=8, max_wait_ms=1.0) as batcher:
            result = batcher.top_k_tails(0, 1, k=5)
        expected = engine.model.predict_tails(0, 1, k=5)
        assert list(result.entities) == [int(i) for i in expected]

    def test_concurrent_requests_coalesce(self):
        engine = make_engine()
        # A long window guarantees the worker collects everything in flight.
        with RequestBatcher(engine, max_batch=64, max_wait_ms=200.0) as batcher:
            results = {}
            barrier = threading.Barrier(16)

            def worker(i):
                barrier.wait()
                results[i] = batcher.top_k_tails(i % 8, i % 3, k=4)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = batcher.stats()

        assert stats["requests"] == 16
        assert stats["batches"] < 16, "no coalescing happened"
        assert stats["mean_batch_size"] > 1.0
        for i, result in results.items():
            expected = engine.model.predict_tails(i % 8, i % 3, k=4)
            assert list(result.entities) == [int(x) for x in expected]

    def test_mixed_directions_in_one_batch(self):
        engine = make_engine()
        with RequestBatcher(engine, max_batch=8, max_wait_ms=100.0) as batcher:
            out = {}

            def tails():
                out["tails"] = batcher.top_k_tails(1, 1, k=3)

            def heads():
                out["heads"] = batcher.top_k_heads(1, 2, k=3)

            threads = [threading.Thread(target=tails), threading.Thread(target=heads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert list(out["tails"].entities) == [
            int(i) for i in engine.model.predict_tails(1, 1, k=3)]
        assert list(out["heads"].entities) == [
            int(i) for i in engine.model.predict_heads(1, 2, k=3)]

    def test_error_propagates_to_caller(self):
        engine = make_engine(n_entities=10)
        with RequestBatcher(engine, max_batch=4, max_wait_ms=1.0) as batcher:
            with pytest.raises(IndexError):
                batcher.top_k_tails(10_000, 0, k=3)
            # The worker survives a failed batch and keeps serving.
            ok = batcher.top_k_tails(0, 0, k=3)
            assert len(ok.entities) == 3

    def test_submit_after_close_fails(self):
        batcher = RequestBatcher(make_engine(), max_batch=4, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.top_k_tails(0, 0, k=1)

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError):
            RequestBatcher(make_engine(), max_batch=0)
