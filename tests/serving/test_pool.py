"""WorkerPool tests: forked engines answering over the pipe protocol.

These use the synchronous :meth:`WorkerPool.call` path — the asyncio
front-end has its own HTTP-level tests in ``test_async_server.py``.
"""

import time

import pytest

from repro.registry import ModelSpec, build_model
from repro.serving import InferenceEngine, PoolClosed, WorkerError, WorkerPool

SPEC = ModelSpec(model="transe", formulation="sparse",
                 n_entities=40, n_relations=5, embedding_dim=8)


def make_engine():
    model = build_model(SPEC, rng=0)
    return InferenceEngine(model, known_triples=[(0, 1, 2)], cache_size=32)


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(make_engine, workers=2, max_batch=8,
                    default_service_ms=2.0) as pool:
        yield pool


class TestRoundTrips:
    def test_tail_matches_direct_engine(self, pool):
        out = pool.call(0, "tail", {"anchor": 3, "relation": 1, "k": 5})
        expected = make_engine().top_k_tails(3, 1, k=5)
        assert out["entities"] == list(expected.entities)
        assert out["scores"] == pytest.approx(list(expected.scores))

    def test_head_matches_direct_engine(self, pool):
        out = pool.call(1, "head", {"anchor": 7, "relation": 2, "k": 4})
        expected = make_engine().top_k_heads(relation=2, tail=7, k=4)
        assert out["entities"] == list(expected.entities)

    def test_filtered_flag_respected(self, pool):
        plain = pool.call(0, "tail", {"anchor": 0, "relation": 1, "k": 40})
        filtered = pool.call(0, "tail", {"anchor": 0, "relation": 1, "k": 40,
                                         "filtered": True})
        assert 2 in plain["entities"]
        assert 2 not in filtered["entities"]

    def test_immediate_ops(self, pool):
        nearest = pool.call(0, "nearest", {"entity": 4, "k": 3})
        assert len(nearest["entities"]) == 3
        scores = pool.call(0, "score", {"triples": [[0, 1, 2], [3, 0, 4]]})
        assert len(scores["scores"]) == 2
        labels = pool.call(0, "classify",
                           {"triples": [[0, 1, 2]], "threshold": 5.0})
        assert labels["labels"] == [True] or labels["labels"] == [False]

    def test_worker_error_propagates(self, pool):
        with pytest.raises(WorkerError) as excinfo:
            pool.call(0, "tail", {"anchor": 10_000, "relation": 1, "k": 5})
        assert excinfo.value.error_type in {"ValueError", "IndexError"}
        # The worker survives a failed request.
        assert pool.alive() == [True, True]


class TestControlOps:
    def test_meta_handshake_and_op(self, pool):
        assert pool.meta["n_entities"] == 40
        meta = pool.call(1, "meta")
        assert meta["model"] == "SpTransE"
        assert meta["spec"]["n_relations"] == 5

    def test_stats_reports_batching(self, pool):
        stats = pool.call(0, "stats")
        assert stats["requests"] >= 1
        assert stats["service_per_row_ms"] > 0
        dist = stats["batch_distribution"]
        assert dist["requests"] == dist["requests"]  # shape sanity
        assert set(dist) >= {"batches", "requests", "mean_batch_size",
                             "largest_batch", "multi_query_batches", "sizes"}
        assert "cache" in stats["engine"]

    def test_burst_forms_multi_query_batches(self):
        # Submit a burst with generous deadlines before reading any response:
        # the worker's deadline batcher should coalesce at least once.
        with WorkerPool(make_engine, workers=1, max_batch=16,
                        default_service_ms=1.0, slack_ms=0.5) as pool:
            deadline = time.monotonic() + 0.5
            ids = []
            for anchor in range(10):
                req_id = pool.next_request_id()
                pool.submit(0, req_id, "tail",
                            {"anchor": anchor, "relation": 0, "k": 3}, deadline)
                ids.append(req_id)
            conn = pool.connection(0)
            got = set()
            end = time.monotonic() + 10.0
            while len(got) < len(ids) and time.monotonic() < end:
                if conn.poll(0.5):
                    tag, res_id, ok, _value, meta = conn.recv()
                    assert tag == "res" and ok
                    got.add(res_id)
                    assert meta["batch_size"] >= 1
            assert got == set(ids)
            dist = pool.call(0, "stats")["batch_distribution"]
            assert dist["multi_query_batches"] >= 1
            assert dist["largest_batch"] > 1


class TestLifecycle:
    def test_close_is_idempotent_and_reaps(self):
        pool = WorkerPool(make_engine, workers=2)
        assert pool.alive() == [True, True]
        pool.close()
        pool.close()
        assert pool.alive() == [False, False]
        with pytest.raises(PoolClosed):
            pool.call(0, "meta")
        with pytest.raises(PoolClosed):
            pool.submit(0, 1, "tail", {}, 0.0)

    def test_close_drains_pending_batch(self):
        pool = WorkerPool(make_engine, workers=1, max_batch=32,
                          default_service_ms=1.0)
        deadline = time.monotonic() + 30.0  # far future: batch sits pending
        req_id = pool.next_request_id()
        pool.submit(0, req_id, "tail", {"anchor": 1, "relation": 0, "k": 3},
                    deadline)
        conn = pool.connection(0)
        pool_closed = False
        try:
            # The shutdown sentinel must flush the parked request first.
            time.sleep(0.05)
            pool.close()
            pool_closed = True
            assert conn.closed
        finally:
            if not pool_closed:
                pool.close()

    def test_startup_failure_surfaces(self):
        def broken_factory():
            raise RuntimeError("no artifact here")

        with pytest.raises(RuntimeError, match="failed to start"):
            WorkerPool(broken_factory, workers=1, start_timeout_s=30.0)
