"""Tests for the serving LRU cache."""

import threading
import time

import pytest

from repro.serving import LRUCache


class TestLRUCache:
    def test_get_miss_then_hit(self):
        cache = LRUCache(capacity=2)
        found, _ = cache.get("a")
        assert not found
        cache.put("a", 1)
        found, value = cache.get("a")
        assert found and value == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_none_is_a_cacheable_value(self):
        cache = LRUCache(capacity=2)
        cache.put("a", None)
        found, value = cache.get("a")
        assert found and value is None

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": now "b" is the LRU entry
        cache.put("c", 3)
        assert cache.get("a")[0]
        assert not cache.get("b")[0]
        assert cache.get("c")[0]
        assert cache.evictions == 1

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert not cache.get("a")[0]
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_clear_empties_but_keeps_counters(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats_and_hit_rate(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_concurrent_puts_stay_bounded(self):
        cache = LRUCache(capacity=16)

        def hammer(base):
            for i in range(300):
                cache.put((base, i), i)
                cache.get((base, i))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 16


class TestSingleFlight:
    """Satellite regression: concurrent misses on one key compute once."""

    def test_recheck_counts_separately_from_hits(self):
        cache = LRUCache(capacity=4)
        assert cache.recheck("a") == (False, None)
        cache.put("a", 1)
        found, value = cache.recheck("a")
        assert found and value == 1
        # recheck is not a first-look hit: hit_rate keeps meaning "answered
        # without entering the scoring path at all".
        assert cache.hits == 0
        assert cache.inflight_coalesced == 1
        assert cache.stats()["inflight_coalesced"] == 1

    def test_recheck_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.recheck("a")      # "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a")[0]
        assert not cache.get("b")[0]

    def test_reset_stats_zeroes_coalesced(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.recheck("a")
        cache.reset_stats()
        assert cache.inflight_coalesced == 0

    def test_concurrent_same_key_misses_score_once(self):
        """The stampede test: N threads miss the same key at once; exactly one
        enters the scoring path and the rest coalesce onto its result."""
        from repro.registry import ModelSpec, build_model
        from repro.serving import InferenceEngine

        model = build_model(ModelSpec(model="transe", formulation="sparse",
                                      n_entities=30, n_relations=4,
                                      embedding_dim=8), rng=0)
        engine = InferenceEngine(model, cache_size=32)
        original = model.score_all_tails

        def slow_score(heads, relations):
            time.sleep(0.1)     # hold the score lock so every rider queues up
            return original(heads, relations)

        model.score_all_tails = slow_score
        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            results.append(engine.top_k_tails(3, 1, k=5))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(results) == 8
        assert len({r.entities for r in results}) == 1
        assert engine.stats()["scoring_calls"] == 1
        assert engine.cache.stats()["inflight_coalesced"] >= 1
