"""HTTP-level tests for the pool serving tier (AsyncInferenceServer).

A real asyncio server on an ephemeral port backed by forked workers; queried
with urllib and http.client exactly as an external client would.
"""

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.registry import ModelSpec, build_model
from repro.serving import AsyncInferenceServer, InferenceEngine

SPEC = ModelSpec(model="transe", formulation="sparse",
                 n_entities=30, n_relations=4, embedding_dim=8)


def make_engine():
    model = build_model(SPEC, rng=0)
    return InferenceEngine(model, known_triples=[(0, 1, 2)], cache_size=32)


@pytest.fixture(scope="module")
def server():
    server = AsyncInferenceServer(make_engine, workers=2, deadline_ms=5_000.0)
    server.serve_background()
    yield server
    server.close()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def post_error(server, path, payload) -> urllib.error.HTTPError:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(server, path, payload)
    return excinfo.value


class TestEndpoints:
    def test_health(self, server):
        payload = get(server, "/v1/health")
        assert payload["status"] == "ok"
        assert payload["model"] == "SpTransE"
        assert payload["workers"] == 2
        assert payload["workers_alive"] == 2

    def test_spec_round_trips(self, server):
        payload = get(server, "/v1/spec")
        spec = ModelSpec.from_dict(payload)
        assert spec.n_entities == 30
        assert spec.model == "transe"

    def test_top_k_matches_direct_engine(self, server):
        out = post(server, "/v1/top_k_tails",
                   {"head": 3, "relation": 1, "k": 5})
        expected = make_engine().top_k_tails(3, 1, k=5)
        assert out["entities"] == list(expected.entities)
        assert out["scores"] == pytest.approx(list(expected.scores))

    def test_top_k_heads_and_filtered(self, server):
        out = post(server, "/v1/top_k_heads",
                   {"tail": 2, "relation": 1, "k": 30, "filtered": True})
        assert 0 not in out["entities"]  # (0, 1, 2) is a known triple

    def test_nearest_score_classify(self, server):
        nearest = post(server, "/v1/nearest", {"entity": 4, "k": 3})
        assert len(nearest["entities"]) == 3
        scores = post(server, "/v1/score", {"triples": [[0, 1, 2]]})
        assert len(scores["scores"]) == 1
        labels = post(server, "/v1/classify",
                      {"triples": [[0, 1, 2]], "threshold": 2.0})
        assert isinstance(labels["labels"][0], bool)

    def test_stats_shape(self, server):
        post(server, "/v1/top_k_tails", {"head": 1, "relation": 0, "k": 3})
        stats = get(server, "/v1/stats")
        assert stats["mode"] == "pool"
        assert stats["workers_alive"] == 2
        route = stats["routes"]["/v1/top_k_tails"]
        assert route["ok"] >= 1
        assert route["latency"]["p50_ms"] > 0
        assert set(route) >= {"ok", "deadline_miss", "shed", "timeout",
                              "error", "coalesced", "latency"}
        assert stats["admission"]["workers"] == 2
        assert "multi_query_batches" in stats["batching"]
        engine_stats = [w["engine"] for w in stats["worker_stats"] if w]
        assert engine_stats and "cache" in engine_stats[0]


class TestErrors:
    def test_missing_field_is_400(self, server):
        err = post_error(server, "/v1/top_k_tails", {"relation": 1})
        assert err.code == 400
        assert "head" in json.loads(err.read())["error"]

    def test_out_of_range_ids_are_400(self, server):
        assert post_error(server, "/v1/top_k_tails",
                          {"head": 999, "relation": 1}).code == 400
        assert post_error(server, "/v1/nearest", {"entity": -1}).code == 400

    def test_bad_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/score", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_deadline_override_is_400(self, server):
        err = post_error(server, "/v1/top_k_tails",
                         {"head": 1, "relation": 1, "deadline_ms": -5})
        assert err.code == 400

    def test_unknown_path_and_method(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/v1/bogus", {})
        assert excinfo.value.code == 404
        request = urllib.request.Request(server.url + "/v1/top_k_tails",
                                         data=b"{}", method="PUT")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405


class TestKeepAlive:
    def test_two_requests_one_connection(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/v1/health")
            first = conn.getresponse()
            assert first.status == 200
            first.read()
            sock = conn.sock
            assert sock is not None
            body = json.dumps({"head": 1, "relation": 0, "k": 3}).encode()
            conn.request("POST", "/v1/top_k_tails", body=body,
                         headers={"Content-Type": "application/json"})
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["entities"]
            # Same socket object → the server honoured keep-alive.
            assert conn.sock is sock
        finally:
            conn.close()

    def test_connection_close_honoured(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/v1/health", headers={"Connection": "close"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            conn.close()


class TestAdmissionAndCoalescing:
    def test_impossible_deadline_is_shed_with_retry_after(self):
        # A cold controller estimates 100 ms service; a 1 ms budget can never
        # fit, so the very first request is shed before touching a worker.
        server = AsyncInferenceServer(make_engine, workers=1,
                                      deadline_ms=5_000.0,
                                      default_service_ms=100.0)
        server.serve_background()
        try:
            err = post_error(server, "/v1/top_k_tails",
                             {"head": 1, "relation": 0, "deadline_ms": 1.0})
            assert err.code == 503
            body = json.loads(err.read())
            assert body["error"] == "shed"
            assert body["predicted_ms"] > body["deadline_ms"]
            assert int(err.headers["Retry-After"]) >= 1
            stats = get(server, "/v1/stats")
            assert stats["routes"]["/v1/top_k_tails"]["shed"] == 1
            assert stats["admission"]["shed"] == 1
        finally:
            server.close()

    def test_concurrent_burst_batches_and_coalesces(self):
        # One worker, slow cold estimate, generous deadlines: a concurrent
        # burst must (a) form multi-query batches worker-side and (b) coalesce
        # identical queries front-end-side.  Admission is off so nothing sheds.
        server = AsyncInferenceServer(make_engine, workers=1,
                                      deadline_ms=2_000.0, max_batch=32,
                                      default_service_ms=20.0, admission=False)
        server.serve_background()
        try:
            results = []
            errors = []

            def hit(anchor):
                try:
                    results.append(post(server, "/v1/top_k_tails",
                                        {"head": anchor, "relation": 0, "k": 3}))
                except BaseException as exc:  # noqa: BLE001 — test capture
                    errors.append(exc)

            threads = ([threading.Thread(target=hit, args=(a,))
                        for a in range(12)]
                       + [threading.Thread(target=hit, args=(5,))
                          for _ in range(6)])
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert len(results) == 18
            stats = get(server, "/v1/stats")
            assert stats["batching"]["multi_query_batches"] >= 1
            assert stats["routes"]["/v1/top_k_tails"]["coalesced"] >= 1
            assert stats["admission"] is None
        finally:
            server.close()
