"""Parity suite: partitioned training must reproduce the unpartitioned trajectory.

The compacted sub-incidence SpMM preserves the exact floating-point
accumulation order of the full-matrix path, so a ``P``-way partitioned
``SpTransE`` (same backend, same seeds) must match the unpartitioned
``sparse_grads`` run **bit for bit**: per-epoch losses, every entity and
relation row, and the per-row optimiser state (lazy sparse Adam moments and
Adagrad accumulators included).  Serving answers must agree as well.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.data.synthetic import make_dataset_like
from repro.models.transe import SpTransE
from repro.serving import InferenceEngine
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer


@pytest.fixture(scope="module")
def kg():
    return make_dataset_like("FB15K", scale=0.004, rng=0)


def _digest(arrays) -> str:
    digest = hashlib.sha256()
    for arr in arrays:
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def _train(kg, partitions, optimizer_name, epochs=3):
    config = TrainingConfig(epochs=epochs, batch_size=512,
                            optimizer=optimizer_name, learning_rate=0.01,
                            sparse_grads=True, seed=0)
    model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=7,
                     partitions=partitions)
    trainer = Trainer(model, kg, config)
    result = trainer.train()
    return model, result, trainer.optimizer


def _model_digest(model) -> str:
    return _digest([model.entity_embedding_matrix(),
                    model.relation_embedding_matrix()])


def _row_state(model, optimizer):
    """Optimiser state re-assembled as full (n_entities + n_relations)-row
    buffers, whatever the parameter layout."""
    buffers = {}
    if model.n_partitions > 1:
        table = model.embeddings
        for k, param in enumerate(table.bucket_parameters()):
            state = optimizer._param_state(param)
            lo, _ = table.partition.bucket_range(k)
            for name, value in state.items():
                if isinstance(value, np.ndarray):
                    buffers.setdefault(name, {})[lo] = value
        rel_state = optimizer._param_state(table.relations)
        for name, value in rel_state.items():
            if isinstance(value, np.ndarray):
                buffers.setdefault(name, {})[model.n_entities] = value
    else:
        state = optimizer._param_state(model.embeddings.weight)
        for name, value in state.items():
            if isinstance(value, np.ndarray):
                buffers.setdefault(name, {})[0] = value
    out = {}
    for name, chunks in buffers.items():
        out[name] = np.concatenate([chunks[k] for k in sorted(chunks)], axis=0)
    return out


class TestTrajectoryParity:
    @pytest.mark.parametrize("optimizer_name", ["adam", "adagrad", "sgd"])
    @pytest.mark.parametrize("partitions", [2, 3, 4])
    def test_digest_matches_unpartitioned(self, kg, optimizer_name, partitions):
        dense_model, dense_result, dense_opt = _train(kg, 1, optimizer_name)
        model, result, optimizer = _train(kg, partitions, optimizer_name)
        assert result.losses == dense_result.losses
        assert _model_digest(model) == _model_digest(dense_model)
        if optimizer_name in ("adam", "adagrad"):
            dense_state = _row_state(dense_model, dense_opt)
            part_state = _row_state(model, optimizer)
            assert set(dense_state) == set(part_state)
            for name in dense_state:
                assert np.array_equal(dense_state[name], part_state[name]), name
        model.embeddings.close()

    def test_p2_matches_p1_partitioned_digest(self, kg):
        """The acceptance check: a P=2 run reproduces the P=1 run's digest."""
        m1, r1, _ = _train(kg, 1, "adam")
        m2, r2, _ = _train(kg, 2, "adam")
        assert r1.losses == r2.losses
        assert _model_digest(m1) == _model_digest(m2)
        m2.embeddings.close()

    def test_sparse_adam_row_state_matches(self, kg):
        """Adam's lazy per-row moments and step counters line up row-for-row."""
        dense_model, _, dense_opt = _train(kg, 1, "adam")
        part_model, _, part_opt = _train(kg, 4, "adam")
        dense_state = _row_state(dense_model, dense_opt)
        part_state = _row_state(part_model, part_opt)
        # row_t: dense keeps (N + R) rows in one buffer; partitioned keeps the
        # same values split across buckets + relations.
        assert np.array_equal(dense_state["row_t"], part_state["row_t"])
        assert np.array_equal(dense_state["m"], part_state["m"])
        assert np.array_equal(dense_state["v"], part_state["v"])
        part_model.embeddings.close()


class TestServingParity:
    def test_identical_top_k_answers(self, kg):
        dense_model, _, _ = _train(kg, 1, "adam")
        part_model, _, _ = _train(kg, 3, "adam")
        dense_engine = InferenceEngine(dense_model)
        part_engine = InferenceEngine(part_model)
        for head, relation in ((1, 0), (5, 2), (9, 1)):
            a = dense_engine.top_k_tails(head, relation, k=10)
            b = part_engine.top_k_tails(head, relation, k=10)
            assert a.entities == b.entities
            assert np.allclose(a.scores, b.scores, atol=1e-9)
            a = dense_engine.top_k_heads(relation, head, k=10)
            b = part_engine.top_k_heads(relation, head, k=10)
            assert a.entities == b.entities
        nearest_dense = dense_engine.nearest_entities(7, k=5)
        nearest_part = part_engine.nearest_entities(7, k=5)
        assert nearest_dense.entities == nearest_part.entities
        part_model.embeddings.close()

    def test_score_triples_bitwise(self, kg):
        dense_model, _, _ = _train(kg, 1, "sgd", epochs=1)
        part_model, _, _ = _train(kg, 4, "sgd", epochs=1)
        triples = kg.split.train[:100]
        assert np.array_equal(dense_model.score_triples(triples),
                              part_model.score_triples(triples))
        part_model.embeddings.close()


class TestNormalizationParity:
    def test_normalize_parameters_blockwise_bitwise(self, kg):
        dense_model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=7)
        part_model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=7,
                              partitions=4)
        dense_model.normalize_parameters()
        part_model.normalize_parameters()
        assert np.array_equal(dense_model.entity_embedding_matrix(),
                              part_model.entity_embedding_matrix())
        part_model.embeddings.close()
