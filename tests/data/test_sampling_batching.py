"""Tests for negative samplers and the batch iterator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    BatchIterator,
    BernoulliNegativeSampler,
    TripletBatch,
    UniformNegativeSampler,
    generate_synthetic_kg,
)


@pytest.fixture
def kg():
    return generate_synthetic_kg(40, 4, 300, rng=0)


class TestUniformSampler:
    def test_corrupts_exactly_one_slot(self, kg):
        sampler = UniformNegativeSampler(kg.n_entities, rng=0)
        positives = kg.split.train[:100]
        negatives = sampler.corrupt(positives)
        head_changed = negatives[:, 0] != positives[:, 0]
        tail_changed = negatives[:, 2] != positives[:, 2]
        relation_changed = negatives[:, 1] != positives[:, 1]
        assert not relation_changed.any()
        assert np.all(head_changed ^ tail_changed)

    def test_roughly_balanced_head_tail_corruption(self, kg):
        sampler = UniformNegativeSampler(kg.n_entities, rng=1)
        positives = np.repeat(kg.split.train[:10], 100, axis=0)
        negatives = sampler.corrupt(positives)
        head_fraction = (negatives[:, 0] != positives[:, 0]).mean()
        assert 0.4 < head_fraction < 0.6

    def test_never_returns_the_original_triple(self, kg):
        sampler = UniformNegativeSampler(kg.n_entities, rng=2)
        positives = kg.split.train
        negatives = sampler.corrupt(positives)
        assert not np.any(np.all(negatives == positives, axis=1))

    def test_indices_stay_in_range(self, kg):
        sampler = UniformNegativeSampler(kg.n_entities, rng=3)
        negatives = sampler.corrupt(kg.split.train)
        assert negatives[:, [0, 2]].max() < kg.n_entities

    def test_empty_batch(self, kg):
        sampler = UniformNegativeSampler(kg.n_entities, rng=0)
        out = sampler.corrupt(np.empty((0, 3), dtype=np.int64))
        assert out.shape == (0, 3)

    def test_filtered_mode_avoids_known_positives(self, kg):
        known = kg.known_triples()
        sampler = UniformNegativeSampler(kg.n_entities, rng=4, filtered=True,
                                         known_triples=known)
        negatives = sampler.corrupt(kg.split.train)
        collisions = sum(tuple(row) in known for row in negatives.tolist())
        # Best-effort filtering: collisions should be essentially eliminated.
        assert collisions <= 1

    def test_filtered_requires_known_triples(self, kg):
        with pytest.raises(ValueError):
            UniformNegativeSampler(kg.n_entities, filtered=True)

    def test_needs_two_entities(self):
        with pytest.raises(ValueError):
            UniformNegativeSampler(1)

    def test_corrupt_many_shape(self, kg):
        sampler = UniformNegativeSampler(kg.n_entities, rng=5)
        out = sampler.corrupt_many(kg.split.train[:10], num_negatives=4)
        assert out.shape == (10, 4, 3)
        with pytest.raises(ValueError):
            sampler.corrupt_many(kg.split.train[:10], num_negatives=0)


class TestBernoulliSampler:
    def test_probabilities_in_unit_interval(self, kg):
        sampler = BernoulliNegativeSampler(kg, rng=0)
        assert np.all(sampler.head_probabilities >= 0)
        assert np.all(sampler.head_probabilities <= 1)
        assert sampler.head_probabilities.shape == (kg.n_relations,)

    def test_one_to_many_relation_prefers_head_corruption(self):
        # Relation 0: one head fans out to many tails -> tph high -> corrupt head more.
        triples = np.array([[0, 0, t] for t in range(1, 11)] + [[5, 1, 6]])
        from repro.data import KGDataset

        kg = KGDataset(triples=triples, n_entities=12, n_relations=2)
        sampler = BernoulliNegativeSampler(kg, rng=0)
        assert sampler.head_probabilities[0] > 0.8

    def test_corruption_respects_relation_statistics(self):
        triples = np.array([[0, 0, t] for t in range(1, 11)])
        from repro.data import KGDataset

        kg = KGDataset(triples=triples, n_entities=12, n_relations=1)
        sampler = BernoulliNegativeSampler(kg, rng=1)
        positives = np.repeat(triples, 50, axis=0)
        negatives = sampler.corrupt(positives)
        head_fraction = (negatives[:, 0] != positives[:, 0]).mean()
        assert head_fraction > 0.8


class TestBatchIterator:
    def test_covers_every_triple_once(self, kg):
        iterator = BatchIterator(kg, batch_size=64, rng=0)
        seen = sum(batch.size for batch in iterator)
        assert seen == kg.n_triples
        assert len(iterator) == int(np.ceil(kg.n_triples / 64))

    def test_drop_last(self, kg):
        iterator = BatchIterator(kg, batch_size=64, drop_last=True, rng=0)
        sizes = [batch.size for batch in iterator]
        assert all(s == 64 for s in sizes)
        assert len(iterator) == kg.n_triples // 64

    def test_batches_align_positives_and_negatives(self, kg):
        iterator = BatchIterator(kg, batch_size=32, rng=0)
        for batch in iterator:
            assert batch.positives.shape == batch.negatives.shape

    def test_pregenerated_negatives_are_stable_across_epochs(self, kg):
        iterator = BatchIterator(kg, batch_size=kg.n_triples, shuffle=False, rng=0)
        first = next(iter(iterator)).negatives
        second = next(iter(iterator)).negatives
        np.testing.assert_array_equal(first, second)

    def test_regenerated_negatives_change_across_epochs(self, kg):
        iterator = BatchIterator(kg, batch_size=kg.n_triples, shuffle=False,
                                 regenerate_negatives=True, rng=0)
        first = next(iter(iterator)).negatives
        second = next(iter(iterator)).negatives
        assert not np.array_equal(first, second)

    def test_shuffle_changes_order_but_not_content(self, kg):
        iterator = BatchIterator(kg, batch_size=kg.n_triples, shuffle=True, rng=0)
        batch = next(iter(iterator))
        assert not np.array_equal(batch.positives, kg.split.train)
        assert {tuple(t) for t in batch.positives.tolist()} == \
               {tuple(t) for t in kg.split.train.tolist()}

    def test_invalid_batch_size(self, kg):
        with pytest.raises(ValueError):
            BatchIterator(kg, batch_size=0)

    def test_triplet_batch_validation(self):
        with pytest.raises(ValueError):
            TripletBatch(positives=np.zeros((3, 3), dtype=np.int64),
                         negatives=np.zeros((2, 3), dtype=np.int64))


class TestSamplerProperties:
    @given(seed=st.integers(min_value=0, max_value=500),
           n_entities=st.integers(min_value=3, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_corruption_always_changes_exactly_one_entity(self, seed, n_entities):
        rng = np.random.default_rng(seed)
        m = 20
        positives = np.column_stack([
            rng.integers(0, n_entities, m),
            rng.integers(0, 3, m),
            rng.integers(0, n_entities, m),
        ])
        sampler = UniformNegativeSampler(n_entities, rng=seed)
        negatives = sampler.corrupt(positives)
        changed = (negatives != positives).sum(axis=1)
        assert np.all(changed <= 1)
        assert negatives[:, [0, 2]].max() < n_entities
