"""Tests for the learnable (translation-realisable) synthetic generator."""

import numpy as np
import pytest

from repro.data import generate_learnable_kg


class TestGenerateLearnableKG:
    def test_exact_sizes_and_bounds(self):
        kg = generate_learnable_kg(80, 5, 600, latent_dim=8, rng=0)
        assert kg.n_entities == 80
        assert kg.n_relations == 5
        assert kg.n_triples == 600
        assert kg.split.train[:, [0, 2]].max() < 80
        assert kg.split.train[:, 1].max() < 5

    def test_no_duplicates_or_self_loops(self):
        kg = generate_learnable_kg(80, 5, 600, latent_dim=8, rng=1)
        triples = kg.split.train
        assert len({tuple(t) for t in triples.tolist()}) == 600
        assert np.all(triples[:, 0] != triples[:, 2])

    def test_reproducible(self):
        a = generate_learnable_kg(50, 4, 200, rng=3)
        b = generate_learnable_kg(50, 4, 200, rng=3)
        np.testing.assert_array_equal(a.split.train, b.split.train)

    def test_splits(self):
        kg = generate_learnable_kg(80, 5, 600, rng=2, valid_fraction=0.1, test_fraction=0.1)
        assert kg.split.n_valid == 60
        assert kg.split.n_test == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_learnable_kg(2, 2, 10)
        with pytest.raises(ValueError):
            generate_learnable_kg(10, 0, 10)
        with pytest.raises(ValueError):
            generate_learnable_kg(10, 2, 10, noise=0.0)
        with pytest.raises(ValueError):
            generate_learnable_kg(5, 1, 10**6)

    def test_structure_is_learnable_by_transe(self):
        """A short TransE run must beat the untrained ranking by a clear margin —
        the property the accuracy benchmarks (Figure 5, Table 8) rely on."""
        from repro.evaluation import evaluate_link_prediction
        from repro.models import SpTransE
        from repro.training import Trainer, TrainingConfig

        kg = generate_learnable_kg(150, 8, 1500, latent_dim=12, noise=0.05, rng=0,
                                   test_fraction=0.1)
        model = SpTransE(kg.n_entities, kg.n_relations, 32, rng=0)
        before = evaluate_link_prediction(model, kg.split.test,
                                          known_triples=kg.known_triples()).hits[10]
        Trainer(model, kg, TrainingConfig(epochs=25, batch_size=512, learning_rate=0.05,
                                          seed=0)).train()
        after = evaluate_link_prediction(model, kg.split.test,
                                         known_triples=kg.known_triples()).hits[10]
        assert after > before + 0.1

    def test_higher_noise_reduces_structure(self):
        """With a very flat tail distribution the graph approaches a random KG."""
        structured = generate_learnable_kg(60, 4, 300, noise=0.02, rng=5)
        diffuse = generate_learnable_kg(60, 4, 300, noise=50.0, rng=5)
        # Structured graphs reuse far fewer distinct tails per (head, relation).
        def mean_tail_diversity(kg):
            pairs = {}
            for h, r, t in kg.split.train.tolist():
                pairs.setdefault((h, r), set()).add(t)
            return np.mean([len(v) for v in pairs.values()])

        assert mean_tail_diversity(structured) <= mean_tail_diversity(diffuse)
