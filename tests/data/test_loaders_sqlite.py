"""Tests for file loaders and the SQLite-backed store."""

import numpy as np
import pytest

from repro.data import SQLiteKGStore, load_csv, load_triples_file, load_tsv, load_ttl
from repro.data.loaders import parse_ttl_lines
from repro.data.synthetic import generate_synthetic_kg


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "kg.csv"
    path.write_text(
        "alice,knows,bob\n"
        "bob,knows,carol\n"
        "\n"
        "carol,likes,alice\n"
    )
    return str(path)


@pytest.fixture
def tsv_file(tmp_path):
    path = tmp_path / "kg.tsv"
    path.write_text("h\tr\tt\nalice\tknows\tbob\nbob\tlikes\tcarol\n")
    return str(path)


@pytest.fixture
def ttl_file(tmp_path):
    path = tmp_path / "kg.ttl"
    path.write_text(
        "@prefix ex: <http://example.org/> .\n"
        "# a comment line\n"
        "ex:alice ex:knows ex:bob .\n"
        "<http://example.org/bob> <http://example.org/knows> <http://example.org/carol> .\n"
        'ex:carol ex:name "Carol" .\n'
    )
    return str(path)


class TestCSVLoader:
    def test_load_and_vocab(self, csv_file):
        kg = load_csv(csv_file)
        assert kg.n_triples == 3
        assert kg.n_entities == 3
        assert kg.n_relations == 2
        assert kg.entity_vocab.index("alice") == 0

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            load_csv("/nonexistent/file.csv")

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            load_csv(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("\n\n")
        with pytest.raises(ValueError):
            load_csv(str(path))

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("x,alice,knows,bob\nx,bob,knows,carol\n")
        kg = load_csv(str(path), columns=(1, 2, 3))
        assert kg.n_triples == 2

    def test_tsv_with_header(self, tsv_file):
        kg = load_tsv(tsv_file, skip_header=True)
        assert kg.n_triples == 2
        assert kg.n_relations == 2


class TestTTLLoader:
    def test_load(self, ttl_file):
        kg = load_ttl(ttl_file)
        assert kg.n_triples == 3
        assert kg.n_relations == 2  # knows, name
        assert "http://example.org/alice" in kg.entity_vocab

    def test_prefix_expansion(self):
        triples = list(parse_ttl_lines([
            "@prefix ex: <http://ex.org/> .",
            "ex:a ex:p ex:b .",
        ]))
        assert triples == [("http://ex.org/a", "http://ex.org/p", "http://ex.org/b")]

    def test_semicolon_and_comma_shorthand(self):
        triples = list(parse_ttl_lines([
            "<s> <p> <o1> ;",
            "<p2> <o2> ,",
            "<o3> .",
        ]))
        assert ("s", "p", "o1") in triples
        assert ("s", "p2", "o2") in triples
        assert ("s", "p2", "o3") in triples

    def test_malformed_statement(self):
        with pytest.raises(ValueError):
            list(parse_ttl_lines(["<s> <p> ."]))

    def test_literal_object(self):
        triples = list(parse_ttl_lines(['<s> <p> "some value" .']))
        assert triples[0][2] == "some value"


class TestDispatch:
    def test_by_extension(self, csv_file, tsv_file, ttl_file):
        assert load_triples_file(csv_file).n_triples == 3
        assert load_triples_file(ttl_file).n_triples == 3

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "kg.parquet"
        path.write_text("x")
        with pytest.raises(ValueError):
            load_triples_file(str(path))


class TestSQLiteStore:
    def test_ingest_and_counts(self):
        kg = generate_synthetic_kg(30, 4, 100, rng=0, valid_fraction=0.1, test_fraction=0.1)
        with SQLiteKGStore() as store:
            store.ingest_dataset(kg)
            assert store.n_entities == kg.n_entities
            assert store.n_relations == kg.n_relations
            assert store.n_triples("train") == kg.split.n_train
            assert store.n_triples(None) == (kg.split.n_train + kg.split.n_valid
                                             + kg.split.n_test)

    def test_round_trip_to_dataset(self):
        kg = generate_synthetic_kg(20, 3, 60, rng=1, valid_fraction=0.1)
        with SQLiteKGStore() as store:
            store.ingest_dataset(kg)
            back = store.to_dataset()
            np.testing.assert_array_equal(
                np.sort(back.split.train, axis=0), np.sort(kg.split.train, axis=0)
            )
            assert back.n_entities == kg.n_entities

    def test_iter_batches_streams_everything(self):
        kg = generate_synthetic_kg(20, 3, 55, rng=2)
        with SQLiteKGStore() as store:
            store.ingest_dataset(kg)
            batches = list(store.iter_batches(batch_size=16))
            assert sum(b.shape[0] for b in batches) == 55
            assert all(b.shape[1] == 3 for b in batches)
            assert batches[0].shape[0] == 16

    def test_iter_batches_validation(self):
        with SQLiteKGStore() as store:
            with pytest.raises(ValueError):
                list(store.iter_batches(batch_size=0))

    def test_ingest_labeled_triples_grows_vocab(self):
        with SQLiteKGStore() as store:
            store.ingest_labeled_triples([("a", "r", "b"), ("b", "r", "c")])
            assert store.n_entities == 3
            assert store.n_relations == 1
            assert store.n_triples("train") == 2
            vocab = store.entity_vocabulary()
            assert vocab.index("a") == 0

    def test_ingest_triple_batches_streams_blocks_in(self):
        """The out-of-core ingestion path: integer blocks + registered vocab
        sizes reproduce ingest_dataset without ever holding the full graph."""
        kg = generate_synthetic_kg(25, 3, 90, rng=4)
        train = kg.split.train

        def blocks():
            for start in range(0, train.shape[0], 16):
                yield train[start:start + 16]

        with SQLiteKGStore() as store:
            store.register_vocab_sizes(kg.n_entities, kg.n_relations)
            written = store.ingest_triple_batches(blocks())
            assert written == train.shape[0]
            assert store.n_entities == kg.n_entities
            assert store.n_relations == kg.n_relations
            assert store.n_triples("train") == train.shape[0]
            streamed = np.concatenate(list(store.iter_batches(32)), axis=0)
            np.testing.assert_array_equal(streamed, train)

    def test_ingest_triple_batches_skips_empty_blocks(self):
        with SQLiteKGStore() as store:
            written = store.ingest_triple_batches(
                [np.empty((0, 3), dtype=np.int64),
                 np.array([[0, 0, 1], [1, 0, 2]])])
            assert written == 2
            assert store.n_triples("train") == 2

    def test_block_bounds_and_fetch_block_cover_a_split(self):
        kg = generate_synthetic_kg(20, 3, 70, rng=5, valid_fraction=0.2)
        with SQLiteKGStore() as store:
            store.ingest_dataset(kg)
            for split in ("train", "valid"):
                bounds = store.block_bounds(16, split=split)
                total = sum(store.fetch_block(lo, hi, split=split).shape[0]
                            for lo, hi in bounds)
                assert total == store.n_triples(split)
            fetched = np.concatenate(
                [store.fetch_block(lo, hi) for lo, hi in store.block_bounds(16)],
                axis=0)
            np.testing.assert_array_equal(fetched, kg.split.train)

    def test_file_backed_store(self, tmp_path):
        path = str(tmp_path / "kg.db")
        kg = generate_synthetic_kg(10, 2, 20, rng=3)
        store = SQLiteKGStore(path)
        store.ingest_dataset(kg)
        store.close()
        reopened = SQLiteKGStore(path)
        assert reopened.n_triples("train") == 20
        reopened.close()
