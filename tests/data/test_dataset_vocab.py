"""Tests for Vocabulary, KGDataset, and TripleSplit."""

import numpy as np
import pytest

from repro.data import KGDataset, TripleSplit, Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0
        assert vocab.index("b") == 1
        assert vocab.label(0) == "a"
        assert len(vocab) == 2
        assert "a" in vocab and "z" not in vocab

    def test_initial_labels_and_iteration(self):
        vocab = Vocabulary(["x", "y", "z"])
        assert list(vocab) == ["x", "y", "z"]

    def test_frozen_rejects_new_labels(self):
        vocab = Vocabulary(["a"]).freeze()
        assert vocab.add("a") == 0
        with pytest.raises(KeyError):
            vocab.add("b")

    def test_non_string_labels_coerced(self):
        vocab = Vocabulary()
        vocab.add(42)
        assert vocab.index("42") == 0

    def test_round_trip_dict(self):
        vocab = Vocabulary(["a", "b", "c"])
        rebuilt = Vocabulary.from_dict(vocab.to_dict())
        assert rebuilt == vocab

    def test_from_dict_requires_contiguous_indices(self):
        with pytest.raises(ValueError):
            Vocabulary.from_dict({"a": 0, "b": 2})

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().index("missing")


class TestTripleSplit:
    def test_counts_and_concat(self):
        split = TripleSplit(
            train=np.array([[0, 0, 1], [1, 0, 2]]),
            valid=np.array([[2, 0, 0]]),
            test=np.empty((0, 3), dtype=np.int64),
        )
        assert (split.n_train, split.n_valid, split.n_test) == (2, 1, 0)
        assert split.all_triples().shape == (3, 3)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            TripleSplit(train=np.zeros((2, 2)), valid=np.empty((0, 3)), test=np.empty((0, 3)))


class TestKGDataset:
    def test_infers_sizes(self):
        triples = np.array([[0, 0, 1], [3, 2, 0]])
        kg = KGDataset(triples=triples)
        assert kg.n_entities == 4
        assert kg.n_relations == 3
        assert kg.n_triples == 2
        assert len(kg) == 2

    def test_explicit_sizes_validated(self):
        triples = np.array([[0, 0, 5]])
        with pytest.raises(ValueError):
            KGDataset(triples=triples, n_entities=3)
        with pytest.raises(ValueError):
            KGDataset(triples=np.array([[0, 4, 1]]), n_relations=2)

    def test_requires_triples_or_split(self):
        with pytest.raises(ValueError):
            KGDataset()

    def test_from_labeled_triples(self):
        kg = KGDataset.from_labeled_triples(
            [("alice", "knows", "bob"), ("bob", "knows", "carol"), ("alice", "likes", "carol")]
        )
        assert kg.n_entities == 3
        assert kg.n_relations == 2
        assert kg.entity_vocab.index("carol") == 2
        assert kg.relation_vocab.index("likes") == 1

    def test_vocab_size_mismatch(self):
        vocab = Vocabulary(["only-one"])
        with pytest.raises(ValueError):
            KGDataset(triples=np.array([[0, 0, 1]]), entity_vocab=vocab)

    def test_split_train_valid_test_partitions(self):
        triples = np.column_stack([
            np.arange(100) % 20,
            np.zeros(100, dtype=int),
            (np.arange(100) + 7) % 20,
        ])
        kg = KGDataset(triples=triples, n_entities=20, n_relations=1)
        split = kg.split_train_valid_test(0.1, 0.2, rng=0)
        assert split.split.n_valid == 10
        assert split.split.n_test == 20
        assert split.split.n_train == 70
        total = {tuple(t) for t in split.split.all_triples().tolist()}
        assert len(total) <= 100

    def test_split_fraction_validation(self):
        kg = KGDataset(triples=np.array([[0, 0, 1]]))
        with pytest.raises(ValueError):
            kg.split_train_valid_test(0.6, 0.5)

    def test_known_triples_and_maps(self):
        triples = np.array([[0, 0, 1], [0, 0, 2], [2, 1, 0]])
        kg = KGDataset(triples=triples)
        assert kg.known_triples() == {(0, 0, 1), (0, 0, 2), (2, 1, 0)}
        tails = kg.tails_by_head_relation()
        np.testing.assert_array_equal(tails[(0, 0)], [1, 2])
        heads = kg.heads_by_relation_tail()
        np.testing.assert_array_equal(heads[(1, 0)], [2])

    def test_statistics(self):
        triples = np.array([[0, 0, 1], [1, 0, 2], [2, 1, 0]])
        stats = KGDataset(triples=triples).statistics()
        assert stats["n_train"] == 3
        assert stats["mean_degree"] == pytest.approx(2.0)

    def test_relation_frequencies_and_degrees(self):
        triples = np.array([[0, 0, 1], [1, 0, 2], [2, 1, 0]])
        kg = KGDataset(triples=triples)
        np.testing.assert_array_equal(kg.relation_frequencies(), [2, 1])
        np.testing.assert_array_equal(kg.entity_degrees(), [2, 2, 2])

    def test_subsample(self):
        triples = np.column_stack([
            np.arange(50) % 10, np.zeros(50, dtype=int), (np.arange(50) + 3) % 10
        ])
        kg = KGDataset(triples=triples, n_entities=10, n_relations=1)
        sub = kg.subsample(20, rng=0)
        assert sub.n_triples == 20
        assert sub.n_entities == 10
        assert kg.subsample(500, rng=0) is kg
        with pytest.raises(ValueError):
            kg.subsample(0)
