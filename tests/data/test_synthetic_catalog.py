"""Tests for the synthetic generator and the paper-dataset catalog."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import PAPER_DATASETS, generate_synthetic_kg, get_dataset_spec, make_dataset_like
from repro.data.catalog import BENCHMARK_DATASETS, DatasetSpec


class TestCatalog:
    def test_table3_statistics_present(self):
        assert PAPER_DATASETS["FB15K"].n_entities == 14951
        assert PAPER_DATASETS["FB15K"].n_relations == 1345
        assert PAPER_DATASETS["FB15K"].n_training_triples == 483142
        assert PAPER_DATASETS["WN18RR"].n_training_triples == 86835
        assert PAPER_DATASETS["BIOKG"].n_training_triples == 4762678
        assert PAPER_DATASETS["COVID19"].n_entities == 60820

    def test_benchmark_set_has_seven_datasets(self):
        assert len(BENCHMARK_DATASETS) == 7
        assert set(BENCHMARK_DATASETS) <= set(PAPER_DATASETS)

    def test_lookup_is_case_and_punctuation_insensitive(self):
        assert get_dataset_spec("fb15k").name == "FB15K"
        assert get_dataset_spec("yago3_10").name == "YAGO3-10"
        with pytest.raises(KeyError):
            get_dataset_spec("freebase-full")

    def test_scaling_preserves_aspect_ratio_roughly(self):
        spec = PAPER_DATASETS["FB15K"].scaled(0.01)
        assert spec.n_training_triples == pytest.approx(4831, rel=0.01)
        assert spec.n_entities < PAPER_DATASETS["FB15K"].n_entities
        ratio_full = PAPER_DATASETS["FB15K"].n_training_triples / PAPER_DATASETS["FB15K"].n_entities
        ratio_scaled = spec.n_training_triples / spec.n_entities
        assert 0.05 * ratio_full < ratio_scaled < 1.5 * ratio_full

    def test_scale_one_returns_same_spec(self):
        spec = PAPER_DATASETS["WN18"]
        assert spec.scaled(1.0) is spec

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            PAPER_DATASETS["WN18"].scaled(0.0)
        with pytest.raises(ValueError):
            PAPER_DATASETS["WN18"].scaled(2.0)


class TestSyntheticGenerator:
    def test_exact_sizes(self):
        kg = generate_synthetic_kg(50, 5, 400, rng=0)
        assert kg.n_entities == 50
        assert kg.n_relations == 5
        assert kg.n_triples == 400

    def test_no_duplicates_or_self_loops(self):
        kg = generate_synthetic_kg(30, 3, 500, rng=1)
        triples = kg.split.train
        assert len({tuple(t) for t in triples.tolist()}) == 500
        assert np.all(triples[:, 0] != triples[:, 2])

    def test_indices_in_range(self):
        kg = generate_synthetic_kg(40, 6, 300, rng=2)
        assert kg.split.train[:, [0, 2]].max() < 40
        assert kg.split.train[:, 1].max() < 6

    def test_reproducible_with_seed(self):
        a = generate_synthetic_kg(30, 3, 100, rng=7)
        b = generate_synthetic_kg(30, 3, 100, rng=7)
        np.testing.assert_array_equal(a.split.train, b.split.train)

    def test_different_seeds_differ(self):
        a = generate_synthetic_kg(30, 3, 100, rng=7)
        b = generate_synthetic_kg(30, 3, 100, rng=8)
        assert not np.array_equal(a.split.train, b.split.train)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            generate_synthetic_kg(3, 1, 100, rng=0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            generate_synthetic_kg(1, 1, 1)
        with pytest.raises(ValueError):
            generate_synthetic_kg(10, 0, 1)
        with pytest.raises(ValueError):
            generate_synthetic_kg(10, 1, 0)

    def test_relation_skew_produces_dominant_relations(self):
        kg = generate_synthetic_kg(200, 20, 3000, rng=3, relation_skew=1.5)
        freq = kg.relation_frequencies()
        assert freq.max() > 3 * np.median(freq[freq > 0])

    def test_splits_generated_when_requested(self):
        kg = generate_synthetic_kg(50, 5, 400, rng=4, valid_fraction=0.1, test_fraction=0.1)
        assert kg.split.n_valid == 40
        assert kg.split.n_test == 40
        assert kg.split.n_train == 320

    def test_uniform_sampling_when_skew_zero(self):
        kg = generate_synthetic_kg(50, 5, 400, rng=5, entity_skew=0.0, relation_skew=0.0)
        assert kg.n_triples == 400


class TestMakeDatasetLike:
    def test_scaled_fb15k(self):
        kg = make_dataset_like("FB15K", scale=0.002, rng=0)
        spec = get_dataset_spec("FB15K").scaled(0.002)
        assert kg.n_entities == spec.n_entities
        assert kg.n_relations == spec.n_relations
        assert kg.n_triples == spec.n_training_triples

    def test_explicit_spec_overrides_name(self):
        spec = DatasetSpec("custom", 25, 4, 100)
        kg = make_dataset_like("ignored", spec=spec, rng=0)
        assert kg.n_entities == 25
        assert kg.name == "custom"

    @given(scale=st.floats(min_value=0.001, max_value=0.01))
    @settings(max_examples=5, deadline=None)
    def test_any_small_scale_produces_valid_dataset(self, scale):
        kg = make_dataset_like("WN18RR", scale=scale, rng=0)
        assert kg.n_triples >= 64
        assert kg.split.train[:, [0, 2]].max() < kg.n_entities
