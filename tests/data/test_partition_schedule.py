"""Bucket-pair batch schedule: coverage, the ≤2-bucket invariant, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    InMemoryTripleStore,
    PartitionedStreamingIterator,
    SQLiteKGStore,
    generate_synthetic_kg,
)
from repro.partition import EntityPartition


@pytest.fixture(scope="module")
def kg():
    return generate_synthetic_kg(60, 6, 400, rng=3, name="sched")


@pytest.fixture
def sqlite_store(kg):
    store = SQLiteKGStore(":memory:")
    store.ingest_dataset(kg)
    yield store
    store.close()


def _multiset(triples_list):
    stacked = np.concatenate(triples_list, axis=0)
    return sorted(map(tuple, stacked.tolist()))


class TestPairRuns:
    def test_runs_cover_every_row(self, sqlite_store, kg):
        runs = sqlite_store.pair_runs(bucket_size=15)
        total = sum(hi - lo + 1 for pair in runs.values() for lo, hi in pair)
        assert total == kg.split.train.shape[0]

    def test_runs_agree_with_in_memory_twin(self, sqlite_store, kg):
        """Same pair keys and the same number of rows per pair on both stores."""
        memory_runs = InMemoryTripleStore(kg).pair_runs(bucket_size=15)
        sqlite_runs = sqlite_store.pair_runs(bucket_size=15)
        assert set(memory_runs) == set(sqlite_runs)
        for pair in memory_runs:
            count = lambda runs: sum(hi - lo + 1 for lo, hi in runs)  # noqa: E731
            assert count(memory_runs[pair]) == count(sqlite_runs[pair])

    def test_cluster_by_partition_compacts_runs(self, sqlite_store, kg):
        before = sqlite_store.pair_runs(bucket_size=15)
        sqlite_store.cluster_by_partition(15)
        after = sqlite_store.pair_runs(bucket_size=15)
        assert set(before) == set(after)
        # clustered: exactly one contiguous run per populated pair
        assert all(len(runs) == 1 for runs in after.values())
        # content preserved
        assert sorted(map(tuple, sqlite_store.to_dataset().split.train.tolist())) \
            == sorted(map(tuple, kg.split.train.tolist()))

    def test_cluster_is_idempotent(self, sqlite_store):
        sqlite_store.cluster_by_partition(15)
        first = sqlite_store.pair_runs(bucket_size=15)
        sqlite_store.cluster_by_partition(15)
        assert sqlite_store.pair_runs(bucket_size=15) == first

    def test_cluster_recovers_from_interrupted_attempt(self, sqlite_store, kg):
        """Debris from a mid-clustering crash (a leftover triples_clustered
        table) must not wedge the store forever."""
        sqlite_store._conn.execute(
            "CREATE TABLE triples_clustered (leftover INTEGER)")
        sqlite_store.cluster_by_partition(15)
        assert all(len(runs) == 1
                   for runs in sqlite_store.pair_runs(bucket_size=15).values())
        assert sqlite_store.n_triples("train") == kg.split.train.shape[0]


class TestPartitionedStreamingIterator:
    def _iterator(self, store, kg, partitions=4, batch_size=32, **kwargs):
        partition = EntityPartition(kg.n_entities, partitions)
        return PartitionedStreamingIterator(store, batch_size=batch_size,
                                            partition=partition, seed=5,
                                            **kwargs), partition

    def test_epoch_covers_every_positive_once(self, sqlite_store, kg):
        iterator, _ = self._iterator(sqlite_store, kg)
        positives = [batch.positives for batch in iterator]
        assert _multiset(positives) == sorted(map(tuple, kg.split.train.tolist()))

    def test_len_matches_yielded_batches(self, sqlite_store, kg):
        iterator, _ = self._iterator(sqlite_store, kg)
        assert len(iterator) == sum(1 for _ in iterator)

    def test_batches_touch_at_most_two_buckets(self, sqlite_store, kg):
        """The PBG invariant: positives AND negatives of one batch stay inside
        one (head_bucket, tail_bucket) pair."""
        iterator, partition = self._iterator(sqlite_store, kg)
        for batch in iterator:
            entities = np.concatenate([
                batch.positives[:, 0], batch.positives[:, 2],
                batch.negatives[:, 0], batch.negatives[:, 2]])
            buckets = set(partition.bucket_of(entities).tolist())
            assert len(buckets) <= 2, buckets

    def test_bucket_local_corruption_ranges(self, sqlite_store, kg):
        iterator, partition = self._iterator(sqlite_store, kg)
        for batch in iterator:
            head_buckets = partition.bucket_of(batch.positives[:, 0])
            tail_buckets = partition.bucket_of(batch.positives[:, 2])
            assert np.all(partition.bucket_of(batch.negatives[:, 0])
                          == head_buckets)
            assert np.all(partition.bucket_of(batch.negatives[:, 2])
                          == tail_buckets)

    def test_deterministic_across_recreations(self, kg):
        """Lockstep contract: two iterators built from the same description
        yield bit-identical batch streams, epoch after epoch."""
        def stream(epochs=2):
            store = SQLiteKGStore(":memory:")
            store.ingest_dataset(kg)
            iterator, _ = self._iterator(store, kg)
            out = []
            for _ in range(epochs):
                out.extend((b.positives.copy(), b.negatives.copy())
                           for b in iterator)
            store.close()
            return out

        first, second = stream(), stream()
        assert len(first) == len(second)
        for (p1, n1), (p2, n2) in zip(first, second):
            assert np.array_equal(p1, p2) and np.array_equal(n1, n2)

    def test_epochs_differ(self, sqlite_store, kg):
        iterator, _ = self._iterator(sqlite_store, kg)
        first = [b.positives.copy() for b in iterator]
        second = [b.positives.copy() for b in iterator]
        assert any(not np.array_equal(a, b) for a, b in zip(first, second))

    def test_set_epoch_replays(self, sqlite_store, kg):
        iterator, _ = self._iterator(sqlite_store, kg)
        first = [b.positives.copy() for b in iterator]
        iterator.set_epoch(0)
        replay = [b.positives.copy() for b in iterator]
        assert all(np.array_equal(a, b) for a, b in zip(first, replay))

    def test_num_negatives_tiles_positives(self, sqlite_store, kg):
        iterator, _ = self._iterator(sqlite_store, kg, num_negatives=3)
        total = sum(b.positives.shape[0] for b in iterator)
        assert total == 3 * kg.split.train.shape[0]
        assert len(iterator) == sum(1 for _ in iterator) + 0  # second epoch count matches too

    def test_works_against_in_memory_store(self, kg):
        iterator, partition = self._iterator(InMemoryTripleStore(kg), kg)
        positives = [b.positives for b in iterator]
        assert _multiset(positives) == sorted(map(tuple, kg.split.train.tolist()))

    def test_trains_a_partitioned_model(self, sqlite_store, kg):
        """End to end: the schedule drives a partitioned model whose resident
        set stays at two buckets."""
        from repro.models.transe import SpTransE
        from repro.training.config import TrainingConfig
        from repro.training.trainer import Trainer

        sqlite_store.cluster_by_partition(EntityPartition(kg.n_entities, 4).bucket_size)
        iterator, _ = self._iterator(sqlite_store, kg)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=1, partitions=4)
        config = TrainingConfig(epochs=2, batch_size=32, sparse_grads=True,
                                learning_rate=0.01)
        result = Trainer(model, config=config, batches=iterator).train()
        assert len(result.losses) == 2
        assert model.embeddings.stats()["peak_resident"] <= 2
        model.embeddings.close()
