"""Tests for the SQLite-backed streaming batch iterator."""

import numpy as np
import pytest

from repro.data import (
    InMemoryTripleStore,
    SQLiteKGStore,
    StreamingBatchIterator,
    UniformNegativeSampler,
    generate_synthetic_kg,
)
from repro.models import SpTransE
from repro.optim import Adam


@pytest.fixture
def kg():
    return generate_synthetic_kg(40, 4, 250, rng=0, valid_fraction=0.1)


@pytest.fixture
def store(kg):
    s = SQLiteKGStore()
    s.ingest_dataset(kg)
    yield s
    s.close()


class TestStreamingBatchIterator:
    def test_covers_every_training_triple(self, store):
        iterator = StreamingBatchIterator(store, batch_size=64, rng=0)
        total = sum(batch.size for batch in iterator)
        assert total == store.n_triples("train")
        assert len(iterator) == int(np.ceil(store.n_triples("train") / 64))

    def test_batches_are_aligned_and_in_range(self, store):
        iterator = StreamingBatchIterator(store, batch_size=32, rng=0)
        for batch in iterator:
            assert batch.positives.shape == batch.negatives.shape
            assert batch.negatives[:, [0, 2]].max() < store.n_entities

    def test_drop_last(self, store):
        iterator = StreamingBatchIterator(store, batch_size=64, drop_last=True, rng=0)
        sizes = [b.size for b in iterator]
        assert all(s == 64 for s in sizes)
        assert len(iterator) == store.n_triples("train") // 64

    def test_split_selection(self, store):
        iterator = StreamingBatchIterator(store, batch_size=16, split="valid", rng=0)
        assert sum(b.size for b in iterator) == store.n_triples("valid")

    def test_custom_sampler(self, store):
        sampler = UniformNegativeSampler(store.n_entities, rng=7)
        iterator = StreamingBatchIterator(store, batch_size=50, sampler=sampler)
        batch = next(iter(iterator))
        assert not np.array_equal(batch.positives, batch.negatives)

    def test_batch_size_validation(self, store):
        with pytest.raises(ValueError):
            StreamingBatchIterator(store, batch_size=0)

    def test_drop_last_len_matches_yielded_batches(self, store):
        """``__len__`` counts exactly what ``__iter__`` yields, both modes."""
        for drop_last in (False, True):
            iterator = StreamingBatchIterator(store, batch_size=48,
                                              drop_last=drop_last, rng=0)
            assert sum(1 for _ in iterator) == len(iterator)

    def test_epochs_are_shuffled_and_distinct(self, store):
        """Each epoch sees a fresh order — not SQLite insert order replayed."""
        iterator = StreamingBatchIterator(store, batch_size=64, rng=0, seed=7)
        insert_order = np.concatenate(
            [b for b in store.iter_batches(64)], axis=0)
        epoch1 = np.concatenate([b.positives for b in iterator], axis=0)
        epoch2 = np.concatenate([b.positives for b in iterator], axis=0)
        assert not np.array_equal(epoch1, insert_order)
        assert not np.array_equal(epoch1, epoch2)
        # Same multiset of triples every epoch.
        assert np.array_equal(np.sort(epoch1.view("i8,i8,i8"), axis=0),
                              np.sort(epoch2.view("i8,i8,i8"), axis=0))

    def test_shuffle_is_deterministic_per_seed_and_epoch(self, store):
        a = StreamingBatchIterator(store, batch_size=64, rng=0, seed=3)
        b = StreamingBatchIterator(store, batch_size=64, rng=0, seed=3)
        for batch_a, batch_b in zip(a, b):
            np.testing.assert_array_equal(batch_a.positives, batch_b.positives)
            np.testing.assert_array_equal(batch_a.negatives, batch_b.negatives)
        c = StreamingBatchIterator(store, batch_size=64, rng=0, seed=4)
        first_a = next(iter(StreamingBatchIterator(store, batch_size=64,
                                                   rng=0, seed=3)))
        assert not np.array_equal(first_a.positives, next(iter(c)).positives)

    def test_set_epoch_aligns_replicas(self, store):
        one = StreamingBatchIterator(store, batch_size=64, rng=0, seed=9)
        for _ in one:  # consume epoch 0
            pass
        other = StreamingBatchIterator(store, batch_size=64, rng=0, seed=9)
        other.set_epoch(1)
        for batch_a, batch_b in zip(one, other):
            np.testing.assert_array_equal(batch_a.positives, batch_b.positives)

    def test_shuffle_disabled_replays_insert_order(self, store):
        iterator = StreamingBatchIterator(store, batch_size=64, rng=0,
                                          shuffle=False)
        streamed = np.concatenate([b.positives for b in iterator], axis=0)
        insert_order = np.concatenate([b for b in store.iter_batches(64)], axis=0)
        np.testing.assert_array_equal(streamed, insert_order)

    def test_num_negatives_tiles_the_epoch_not_the_batch(self, store):
        """K>1 multiplies steps per epoch (memory-path semantics): batches
        stay batch_size rows and every positive appears exactly K times."""
        iterator = StreamingBatchIterator(store, batch_size=32, rng=0,
                                          num_negatives=3)
        batches = list(iterator)
        assert len(batches) == len(iterator)
        positives = np.concatenate([b.positives for b in batches], axis=0)
        assert positives.shape[0] == 3 * store.n_triples("train")
        assert batches[0].size == 32
        _, counts = np.unique(positives, axis=0, return_counts=True)
        assert (counts % 3 == 0).all()  # every distinct triple tiled 3x


class TestInMemoryTripleStore:
    def test_protocol_parity_with_sqlite(self, kg, store):
        """Same algorithm + same seeds over RAM vs SQLite → identical batches."""
        memory = InMemoryTripleStore(kg)
        assert memory.n_entities == store.n_entities
        assert memory.n_triples("train") == store.n_triples("train")
        sqlite_it = StreamingBatchIterator(store, batch_size=32, rng=1, seed=5)
        memory_it = StreamingBatchIterator(memory, batch_size=32, rng=1, seed=5)
        pairs = list(zip(sqlite_it, memory_it))
        assert len(pairs) == len(memory_it) == len(sqlite_it)
        for sqlite_batch, memory_batch in pairs:
            np.testing.assert_array_equal(sqlite_batch.positives,
                                          memory_batch.positives)
            np.testing.assert_array_equal(sqlite_batch.negatives,
                                          memory_batch.negatives)

    def test_block_bounds_cover_split(self, kg):
        memory = InMemoryTripleStore(kg)
        bounds = memory.block_bounds(64, split="train")
        total = sum(hi - lo + 1 for lo, hi in bounds)
        assert total == memory.n_triples("train")
        fetched = np.concatenate(
            [memory.fetch_block(lo, hi) for lo, hi in bounds], axis=0)
        np.testing.assert_array_equal(fetched, kg.split.train)

    def test_streaming_training_loop_reduces_loss(self, store):
        """The streaming iterator plugs into a manual training loop unchanged."""
        model = SpTransE(store.n_entities, store.n_relations, 16, rng=0)
        optimizer = Adam(model.parameters(), lr=0.02)
        iterator = StreamingBatchIterator(store, batch_size=64, rng=0)
        losses = []
        for _ in range(3):
            epoch = []
            for batch in iterator:
                model.zero_grad()
                loss = model.loss(batch)
                loss.backward()
                optimizer.step()
                epoch.append(loss.item())
            losses.append(float(np.mean(epoch)))
        assert losses[-1] < losses[0]
