"""Tests for the SQLite-backed streaming batch iterator."""

import numpy as np
import pytest

from repro.data import (
    SQLiteKGStore,
    StreamingBatchIterator,
    UniformNegativeSampler,
    generate_synthetic_kg,
)
from repro.models import SpTransE
from repro.optim import Adam


@pytest.fixture
def store():
    kg = generate_synthetic_kg(40, 4, 250, rng=0, valid_fraction=0.1)
    s = SQLiteKGStore()
    s.ingest_dataset(kg)
    yield s
    s.close()


class TestStreamingBatchIterator:
    def test_covers_every_training_triple(self, store):
        iterator = StreamingBatchIterator(store, batch_size=64, rng=0)
        total = sum(batch.size for batch in iterator)
        assert total == store.n_triples("train")
        assert len(iterator) == int(np.ceil(store.n_triples("train") / 64))

    def test_batches_are_aligned_and_in_range(self, store):
        iterator = StreamingBatchIterator(store, batch_size=32, rng=0)
        for batch in iterator:
            assert batch.positives.shape == batch.negatives.shape
            assert batch.negatives[:, [0, 2]].max() < store.n_entities

    def test_drop_last(self, store):
        iterator = StreamingBatchIterator(store, batch_size=64, drop_last=True, rng=0)
        sizes = [b.size for b in iterator]
        assert all(s == 64 for s in sizes)
        assert len(iterator) == store.n_triples("train") // 64

    def test_split_selection(self, store):
        iterator = StreamingBatchIterator(store, batch_size=16, split="valid", rng=0)
        assert sum(b.size for b in iterator) == store.n_triples("valid")

    def test_custom_sampler(self, store):
        sampler = UniformNegativeSampler(store.n_entities, rng=7)
        iterator = StreamingBatchIterator(store, batch_size=50, sampler=sampler)
        batch = next(iter(iterator))
        assert not np.array_equal(batch.positives, batch.negatives)

    def test_batch_size_validation(self, store):
        with pytest.raises(ValueError):
            StreamingBatchIterator(store, batch_size=0)

    def test_streaming_training_loop_reduces_loss(self, store):
        """The streaming iterator plugs into a manual training loop unchanged."""
        model = SpTransE(store.n_entities, store.n_relations, 16, rng=0)
        optimizer = Adam(model.parameters(), lr=0.02)
        iterator = StreamingBatchIterator(store, batch_size=64, rng=0)
        losses = []
        for _ in range(3):
            epoch = []
            for batch in iterator:
                model.zero_grad()
                loss = model.loss(batch)
                loss.backward()
                optimizer.step()
                epoch.append(loss.item())
            losses.append(float(np.mean(epoch)))
        assert losses[-1] < losses[0]
