"""Tests for the relation-category (1-1 / 1-N / N-1 / N-N) analysis."""

import numpy as np
import pytest

from repro.data import KGDataset, generate_learnable_kg
from repro.evaluation import classify_relations, evaluate_by_relation_category
from repro.evaluation.relation_categories import CATEGORIES
from repro.models import SpTransE


def _dataset_with_known_categories() -> KGDataset:
    """Hand-built graph where each relation's category is known by construction."""
    triples = []
    # relation 0: 1-to-1 — a bijection between entity blocks.
    for i in range(5):
        triples.append((i, 0, 10 + i))
    # relation 1: 1-to-N — one head fans out to many tails.
    for t in range(10, 18):
        triples.append((0, 1, t))
    # relation 2: N-to-1 — many heads point at one tail.
    for h in range(1, 9):
        triples.append((h, 2, 19))
    # relation 3: N-to-N — every pairing of two small blocks.
    for h in range(3):
        for t in range(15, 18):
            triples.append((h, 3, t))
    return KGDataset(triples=np.array(triples), n_entities=20, n_relations=4)


class TestClassifyRelations:
    def test_hand_built_categories(self):
        kg = _dataset_with_known_categories()
        categories = classify_relations(kg)
        assert categories[0] == "1-1"
        assert categories[1] == "1-N"
        assert categories[2] == "N-1"
        assert categories[3] == "N-N"

    def test_unused_relation_defaults_to_one_to_one(self):
        kg = KGDataset(triples=np.array([[0, 0, 1]]), n_entities=3, n_relations=2)
        assert classify_relations(kg)[1] == "1-1"

    def test_every_relation_classified(self):
        kg = generate_learnable_kg(80, 6, 600, rng=0)
        categories = classify_relations(kg)
        assert set(categories) == set(range(kg.n_relations))
        assert set(categories.values()) <= set(CATEGORIES)

    def test_threshold_controls_strictness(self):
        kg = _dataset_with_known_categories()
        # With an absurdly high threshold everything collapses to 1-1.
        loose = classify_relations(kg, threshold=100.0)
        assert set(loose.values()) == {"1-1"}


class TestEvaluateByCategory:
    @pytest.fixture
    def setup(self):
        kg = generate_learnable_kg(100, 8, 1000, latent_dim=12, rng=0, test_fraction=0.1)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        return kg, model

    def test_breakdown_structure(self, setup):
        kg, model = setup
        breakdown = evaluate_by_relation_category(model, kg, ks=(1, 10))
        assert sum(breakdown.counts.values()) == kg.split.n_test
        for metrics in breakdown.per_category.values():
            assert set(metrics) == {"mean_rank", "mrr", "hits@1", "hits@10"}
            assert 0 <= metrics["mrr"] <= 1
        assert "hits@10" in breakdown.overall
        assert "per_category" in breakdown.to_dict()

    def test_only_populated_categories_reported(self, setup):
        kg, model = setup
        breakdown = evaluate_by_relation_category(model, kg)
        for category, metrics in breakdown.per_category.items():
            assert breakdown.counts[category] > 0

    def test_requires_evaluation_triples(self, setup):
        kg, model = setup
        with pytest.raises(ValueError):
            evaluate_by_relation_category(model, kg, triples=np.empty((0, 3), dtype=np.int64))

    def test_explicit_triples_and_filter(self, setup):
        kg, model = setup
        triples = kg.split.test[:20]
        breakdown = evaluate_by_relation_category(model, kg, triples=triples,
                                                  known_triples=kg.known_triples())
        assert sum(breakdown.counts.values()) == 20
