"""Tests for ranking utilities, link prediction, and triple classification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import generate_synthetic_kg
from repro.evaluation import (
    RankingProtocol,
    compute_ranks,
    evaluate_link_prediction,
    evaluate_triple_classification,
)
from repro.evaluation.ranks import hits_at_k, mean_rank, mean_reciprocal_rank
from repro.models import SpTransE


class TestComputeRanks:
    def test_best_candidate_gets_rank_one(self):
        scores = np.array([[0.1, 0.5, 0.9]])
        assert compute_ranks(scores, np.array([0]))[0] == 1

    def test_worst_candidate_gets_last_rank(self):
        scores = np.array([[0.1, 0.5, 0.9]])
        assert compute_ranks(scores, np.array([2]))[0] == 3

    def test_ties_counted_as_half(self):
        scores = np.array([[0.5, 0.5, 0.9]])
        # One tie at the target's score -> rank 1 + 1/2.
        assert compute_ranks(scores, np.array([0]))[0] == pytest.approx(1.5)

    def test_constant_scores_give_middle_rank(self):
        n = 11
        scores = np.zeros((1, n))
        rank = compute_ranks(scores, np.array([4]))[0]
        assert rank == pytest.approx((n + 1) / 2)

    def test_filtering_removes_other_positives(self):
        scores = np.array([[0.1, 0.2, 0.9]])
        raw = compute_ranks(scores, np.array([2]))
        filtered = compute_ranks(scores, np.array([2]), [np.array([0, 1])])
        assert raw[0] == 3
        assert filtered[0] == 1

    def test_filter_never_removes_the_target_itself(self):
        scores = np.array([[0.1, 0.2, 0.9]])
        filtered = compute_ranks(scores, np.array([2]), [np.array([2])])
        assert filtered[0] == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            compute_ranks(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(IndexError):
            compute_ranks(np.zeros((1, 3)), np.array([5]))
        with pytest.raises(ValueError):
            compute_ranks(np.zeros((2, 3)), np.array([0, 1]), [np.array([0])])

    def test_metric_helpers(self):
        ranks = np.array([1.0, 2.0, 10.0])
        assert mean_rank(ranks) == pytest.approx(13 / 3)
        assert mean_reciprocal_rank(ranks) == pytest.approx((1 + 0.5 + 0.1) / 3)
        assert hits_at_k(ranks, 1) == pytest.approx(1 / 3)
        assert hits_at_k(ranks, 10) == 1.0
        with pytest.raises(ValueError):
            hits_at_k(ranks, 0)

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_rank_always_within_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.standard_normal((3, n))
        true = rng.integers(0, n, 3)
        ranks = compute_ranks(scores, true)
        assert np.all(ranks >= 1)
        assert np.all(ranks <= n)


class TestLinkPrediction:
    @pytest.fixture
    def trained_setup(self):
        kg = generate_synthetic_kg(40, 4, 400, rng=0, valid_fraction=0.0, test_fraction=0.1)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        return kg, model

    def test_result_structure(self, trained_setup):
        kg, model = trained_setup
        result = evaluate_link_prediction(model, kg.split.test[:10],
                                          known_triples=kg.known_triples())
        assert set(result.hits) == {1, 3, 10}
        assert 1 <= result.mean_rank <= kg.n_entities
        assert 0 <= result.mrr <= 1
        assert result.head_ranks.shape == result.tail_ranks.shape == (10,)
        as_dict = result.to_dict()
        assert "hits@10" in as_dict

    def test_filtered_requires_known_triples(self, trained_setup):
        kg, model = trained_setup
        with pytest.raises(ValueError):
            evaluate_link_prediction(model, kg.split.test[:5], known_triples=None)

    def test_raw_protocol_without_filter(self, trained_setup):
        kg, model = trained_setup
        result = evaluate_link_prediction(model, kg.split.test[:5],
                                          protocol=RankingProtocol.RAW)
        assert result.protocol == "raw"

    def test_filtered_never_worse_than_raw(self, trained_setup):
        kg, model = trained_setup
        test = kg.split.test[:20]
        raw = evaluate_link_prediction(model, test, protocol=RankingProtocol.RAW)
        filtered = evaluate_link_prediction(model, test, known_triples=kg.known_triples())
        assert filtered.mrr >= raw.mrr - 1e-12
        assert filtered.mean_rank <= raw.mean_rank + 1e-12

    def test_oracle_model_gets_perfect_hits(self):
        """If embeddings are constructed so h + r = t exactly for the test triples,
        filtered Hits@1 must be 1."""
        kg = generate_synthetic_kg(30, 3, 200, rng=1, test_fraction=0.1)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        # Build an oracle embedding: place entities far apart, then set
        # relation vectors so the *test* triples are exact translations.
        rng = np.random.default_rng(0)
        ent = rng.standard_normal((kg.n_entities, 8)) * 10
        model.embeddings.weight.data[:kg.n_entities] = ent
        test = kg.split.test[:5]
        # A single relation cannot satisfy several triples at once in general, so
        # give each test triple its own relation index.
        for i, (h, r, t) in enumerate(test):
            model.embeddings.weight.data[kg.n_entities + r] = ent[t] - ent[h]
            break  # only the first triple is made exact
        result = evaluate_link_prediction(model, test[:1], known_triples=kg.known_triples(),
                                          ks=(1,))
        assert result.hits[1] == 1.0

    def test_batched_evaluation_matches_unbatched(self, trained_setup):
        kg, model = trained_setup
        test = kg.split.test[:12]
        a = evaluate_link_prediction(model, test, known_triples=kg.known_triples(),
                                     batch_size=3)
        b = evaluate_link_prediction(model, test, known_triples=kg.known_triples(),
                                     batch_size=100)
        np.testing.assert_allclose(a.tail_ranks, b.tail_ranks)
        np.testing.assert_allclose(a.head_ranks, b.head_ranks)

    def test_training_improves_hits(self):
        """End-to-end sanity: a trained model ranks better than an untrained one."""
        from repro.training import Trainer, TrainingConfig

        kg = generate_synthetic_kg(30, 3, 300, rng=2, test_fraction=0.1)
        untrained = SpTransE(kg.n_entities, kg.n_relations, 24, rng=0)
        before = evaluate_link_prediction(untrained, kg.split.test,
                                          known_triples=kg.known_triples())
        model = SpTransE(kg.n_entities, kg.n_relations, 24, rng=0)
        Trainer(model, kg, TrainingConfig(epochs=60, batch_size=128, learning_rate=0.05,
                                          optimizer="adam", seed=0)).train()
        after = evaluate_link_prediction(model, kg.split.test,
                                         known_triples=kg.known_triples())
        assert after.mrr > before.mrr


class TestTripleClassification:
    def test_oracle_thresholds_give_high_accuracy(self):
        kg = generate_synthetic_kg(30, 3, 300, rng=3, valid_fraction=0.2, test_fraction=0.2)
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)

        class Oracle(SpTransE):
            def __init__(self):
                pass

        # Fake a model whose score is 0 for known triples and 1 otherwise.
        known = kg.known_triples()

        class FakeModel:
            n_entities = kg.n_entities
            n_relations = kg.n_relations

            def score_triples(self, triples):
                return np.array([0.0 if tuple(t) in known else 1.0 for t in triples.tolist()])

        result = evaluate_triple_classification(FakeModel(), kg.split.valid, kg.split.test,
                                                rng=0)
        # Unfiltered corruption occasionally produces true positives as "negatives",
        # so perfect accuracy is not attainable even for an oracle scorer.
        assert result.accuracy > 0.9
        assert 0.0 <= result.default_threshold <= 1.0

    def test_result_contains_per_relation_thresholds(self):
        kg = generate_synthetic_kg(30, 3, 300, rng=4, valid_fraction=0.2, test_fraction=0.2)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = evaluate_triple_classification(model, kg.split.valid, kg.split.test, rng=0)
        assert set(result.thresholds) <= set(range(kg.n_relations))
        assert 0.0 <= result.accuracy <= 1.0
        assert "accuracy" in result.to_dict()

    def test_requires_non_empty_splits(self):
        kg = generate_synthetic_kg(20, 2, 50, rng=5)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        with pytest.raises(ValueError):
            evaluate_triple_classification(model, np.empty((0, 3), dtype=np.int64),
                                           kg.split.train, rng=0)
