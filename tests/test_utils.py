"""Tests for the shared utilities (seeding, validation, logging)."""

import logging

import numpy as np
import pytest

from repro.utils import (
    check_array,
    check_in_range,
    check_positive,
    check_same_shape,
    check_triples,
    get_logger,
    new_rng,
    seed_everything,
    temp_seed,
)
from repro.utils.seeding import get_global_seed, spawn_rngs
from repro.utils.validation import check_choice


class TestSeeding:
    def test_seed_everything_makes_legacy_numpy_deterministic(self):
        seed_everything(123)
        a = np.random.random(5)
        seed_everything(123)
        b = np.random.random(5)
        np.testing.assert_allclose(a, b)
        assert get_global_seed() == 123

    def test_seed_everything_validation(self):
        with pytest.raises(ValueError):
            seed_everything(-1)
        with pytest.raises(ValueError):
            seed_everything("abc")

    def test_new_rng_from_int_is_deterministic(self):
        np.testing.assert_allclose(new_rng(5).random(3), new_rng(5).random(3))

    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_new_rng_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)

    def test_new_rng_validation(self):
        with pytest.raises(ValueError):
            new_rng(-3)
        with pytest.raises(TypeError):
            new_rng(3.5)

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(7, 2)
        assert not np.allclose(a.random(10), b.random(10))
        again_a, _ = spawn_rngs(7, 2)
        np.testing.assert_allclose(a.random(0), again_a.random(0))
        with pytest.raises(ValueError):
            spawn_rngs(7, 0)

    def test_temp_seed_restores_state(self):
        np.random.seed(1)
        before = np.random.get_state()[1].copy()
        with temp_seed(99):
            np.random.random(10)
        after = np.random.get_state()[1]
        np.testing.assert_array_equal(before, after)


class TestValidation:
    def test_check_array_basic(self):
        out = check_array([[1, 2], [3, 4]], ndim=2, dtype=np.float64)
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_check_array_ndim_mismatch(self):
        with pytest.raises(ValueError):
            check_array([1, 2, 3], ndim=2)

    def test_check_array_empty_rejection(self):
        with pytest.raises(ValueError):
            check_array([], allow_empty=False)

    def test_check_array_non_numeric(self):
        with pytest.raises(TypeError):
            check_array(np.array(["a", "b"]))

    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        assert check_positive(0, strict=False) == 0
        with pytest.raises(ValueError):
            check_positive(0)
        with pytest.raises(ValueError):
            check_positive(-1, strict=False)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0, 1) == 0.5
        assert check_in_range(0, 0, 1) == 0
        with pytest.raises(ValueError):
            check_in_range(0, 0, 1, inclusive=(False, True))
        with pytest.raises(ValueError):
            check_in_range(2, 0, 1)

    def test_check_triples_shape(self):
        with pytest.raises(ValueError):
            check_triples(np.zeros((3, 2)))

    def test_check_triples_bounds(self):
        triples = np.array([[0, 0, 1]])
        assert check_triples(triples, n_entities=2, n_relations=1).dtype == np.int64
        with pytest.raises(ValueError):
            check_triples(triples, n_entities=1)
        with pytest.raises(ValueError):
            check_triples(np.array([[0, 3, 1]]), n_relations=2)
        with pytest.raises(ValueError):
            check_triples(np.array([[-1, 0, 1]]))

    def test_check_triples_float_with_integral_values_ok(self):
        out = check_triples(np.array([[0.0, 1.0, 2.0]]))
        assert out.dtype == np.int64

    def test_check_triples_non_integral_floats_rejected(self):
        with pytest.raises(TypeError):
            check_triples(np.array([[0.5, 1.0, 2.0]]))

    def test_check_triples_empty(self):
        out = check_triples(np.empty((0, 3)))
        assert out.shape == (0, 3)

    def test_check_same_shape(self):
        check_same_shape(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            check_same_shape(np.zeros(3), np.ones(4))

    def test_check_choice(self):
        assert check_choice("a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            check_choice("c", ["a", "b"])


class TestLogging:
    def test_namespace(self):
        assert get_logger().name == "repro"
        assert get_logger("training").name == "repro.training"
        assert get_logger("repro.data").name == "repro.data"

    def test_enable_console_logging_idempotent(self):
        from repro.utils.logging import enable_console_logging

        enable_console_logging(logging.DEBUG)
        n_handlers = len(logging.getLogger("repro").handlers)
        enable_console_logging(logging.DEBUG)
        assert len(logging.getLogger("repro").handlers) == n_handlers
