"""Seeded k-means (repro.ann.kmeans): determinism, empty clusters, clamping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import assign_clusters, default_n_clusters, kmeans


class TestKMeansDeterminism:
    def test_fixed_seed_is_bit_reproducible(self, rng):
        rows = rng.standard_normal((120, 8))
        c1, a1 = kmeans(rows, 10, n_iters=8, seed=3)
        c2, a2 = kmeans(rows, 10, n_iters=8, seed=3)
        assert np.array_equal(c1, c2)
        assert np.array_equal(a1, a2)

    def test_different_seeds_differ(self, rng):
        rows = rng.standard_normal((120, 8))
        _, a1 = kmeans(rows, 10, seed=0)
        _, a2 = kmeans(rows, 10, seed=1)
        assert not np.array_equal(a1, a2)


class TestKMeansInvariants:
    def test_no_empty_clusters(self, rng):
        rows = rng.standard_normal((200, 6))
        centroids, assign = kmeans(rows, 16, seed=0)
        counts = np.bincount(assign, minlength=centroids.shape[0])
        assert counts.min() >= 1

    def test_no_empty_clusters_with_duplicate_rows(self):
        # 5 distinct points tiled 8x: Lloyd's update alone would starve most
        # of the 8 centroids; the reseed step must still fill every cluster.
        distinct = np.arange(30, dtype=np.float64).reshape(5, 6)
        rows = np.tile(distinct, (8, 1))
        centroids, assign = kmeans(rows, 8, seed=0)
        counts = np.bincount(assign, minlength=centroids.shape[0])
        assert centroids.shape[0] == 8
        assert counts.min() >= 1

    def test_n_clusters_clamped_to_rows(self, rng):
        rows = rng.standard_normal((3, 4))
        centroids, assign = kmeans(rows, 10, seed=0)
        assert centroids.shape == (3, 4)
        assert np.bincount(assign, minlength=3).min() >= 1

    def test_assign_is_nearest_centroid(self, rng):
        rows = rng.standard_normal((80, 5))
        centroids, assign = kmeans(rows, 6, seed=2)
        fresh, _ = assign_clusters(rows, centroids)
        assert np.array_equal(assign, fresh)

    def test_assign_dtype_and_shape(self, rng):
        rows = rng.standard_normal((40, 4)).astype(np.float32)
        centroids, assign = kmeans(rows, 5, seed=0)
        assert assign.dtype == np.int32
        assert centroids.dtype == np.float32


class TestKMeansErrors:
    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            kmeans(np.empty((0, 4), dtype=np.float64), 2)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            kmeans(np.zeros(8, dtype=np.float64), 2)

    def test_nonpositive_clusters_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            kmeans(np.zeros((4, 2), dtype=np.float64), 0)


class TestDefaultNClusters:
    @pytest.mark.parametrize("n,expected", [(0, 1), (1, 1), (4, 2), (100, 10)])
    def test_sqrt_heuristic(self, n, expected):
        assert default_n_clusters(n) == expected
