"""Shared fixtures for the ANN index tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import build_index_files, load_index
from repro.models.transe import SpTransE
from repro.training.checkpoint import save_weight_files

N_ENTITIES = 300
N_RELATIONS = 6
DIM = 12
PARTITIONS = 3


@pytest.fixture(scope="module")
def indexed_artifact(tmp_path_factory):
    """A partitioned weight artifact with an IVF index built over it."""
    directory = str(tmp_path_factory.mktemp("ann-artifact"))
    model = SpTransE(N_ENTITIES, N_RELATIONS, DIM, rng=5, partitions=PARTITIONS)
    save_weight_files(directory, model)
    manifest = build_index_files(directory, kind="ivf", seed=0)
    return directory, model, manifest


@pytest.fixture
def index(indexed_artifact):
    directory, _, _ = indexed_artifact
    return load_index(f"{directory}/index")


@pytest.fixture
def full_table(index):
    """The exact fp64 entity table, for ground-truth comparisons."""
    return index.exact_rows(np.arange(index.n_entities, dtype=np.int64))
