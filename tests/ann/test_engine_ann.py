"""run -> export -> from_artifact(ann=...) -> query: the ANN serving path."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ann import load_index
from repro.data.synthetic import make_dataset_like
from repro.experiment import DataSpec, EvalSpec, Experiment, ExperimentSpec
from repro.models.transe import SpTransE
from repro.registry import ModelSpec
from repro.serving import InferenceEngine
from repro.training.config import TrainingConfig


@pytest.fixture(scope="module")
def kg():
    return make_dataset_like("FB15K", scale=0.003, rng=1)


@pytest.fixture(scope="module")
def ann_artifact(kg, tmp_path_factory):
    """An `sptransx run`-shaped artifact trained with model.ann='ivf'."""
    directory = str(tmp_path_factory.mktemp("ann-run"))
    spec = ExperimentSpec(
        name="ann-run",
        data=DataSpec(dataset="FB15K", scale=0.003, seed=1, test_fraction=0.05),
        model=ModelSpec(model="transe", formulation="sparse",
                        n_entities=kg.n_entities, n_relations=kg.n_relations,
                        embedding_dim=12, sparse_grads=True, partitions=3,
                        ann="ivf"),
        training=TrainingConfig(epochs=2, batch_size=256, sparse_grads=True),
        eval=EvalSpec(protocols=()),
    )
    Experiment(spec, artifact_dir=directory, dataset=kg).run()
    return directory


@pytest.fixture(scope="module")
def plain_artifact(kg, tmp_path_factory):
    """The same run without ANN: partitioned weights, no index/ directory."""
    directory = str(tmp_path_factory.mktemp("plain-run"))
    spec = ExperimentSpec(
        name="plain-run",
        data=DataSpec(dataset="FB15K", scale=0.003, seed=1, test_fraction=0.05),
        model=ModelSpec(model="transe", formulation="sparse",
                        n_entities=kg.n_entities, n_relations=kg.n_relations,
                        embedding_dim=12, sparse_grads=True, partitions=3),
        training=TrainingConfig(epochs=1, batch_size=256, sparse_grads=True),
        eval=EvalSpec(protocols=()),
    )
    Experiment(spec, artifact_dir=directory, dataset=kg).run()
    return directory


@pytest.fixture(scope="module")
def engines(ann_artifact):
    """(ann engine, exact engine) over the same artifact, filtered-capable."""
    ann = InferenceEngine.from_artifact(ann_artifact, filtered=True)
    exact = InferenceEngine.from_artifact(ann_artifact, filtered=True, ann="off")
    return ann, exact


def full_probe(engine):
    return engine.ann_index.n_clusters


class TestArtifactWiring:
    def test_runner_builds_index_next_to_weights(self, ann_artifact):
        assert os.path.isdir(os.path.join(ann_artifact, "index"))
        assert os.path.exists(os.path.join(ann_artifact, "index", "index.json"))

    def test_spec_json_roundtrips_ann(self, ann_artifact):
        spec = ExperimentSpec.from_file(os.path.join(ann_artifact, "spec.json"))
        assert spec.model.ann == "ivf"

    def test_auto_loads_index(self, engines):
        ann, exact = engines
        assert ann.ann_index is not None
        assert exact.ann_index is None

    def test_auto_without_index_is_exact(self, plain_artifact):
        engine = InferenceEngine.from_artifact(plain_artifact)
        assert engine.ann_index is None

    def test_pinned_kind_without_index_rejected(self, plain_artifact):
        with pytest.raises(FileNotFoundError):
            InferenceEngine.from_artifact(plain_artifact, ann="ivf")

    def test_vocabulary_mismatch_rejected(self, ann_artifact):
        index = load_index(os.path.join(ann_artifact, "index"))
        small = SpTransE(index.n_entities // 2, 3, 12, rng=0)
        with pytest.raises(ValueError, match="entities"):
            InferenceEngine(small, ann_index=index)


class TestQueryParity:
    def test_full_probe_filtered_queries_match_exact(self, engines, kg):
        ann, exact = engines
        nprobe = full_probe(ann)
        known = set(map(tuple, kg.known_triples()))
        pairs = [(h, r) for h, r, _ in kg.split.train[:5]]
        for h, r in pairs:
            a = ann.top_k_tails(h, r, k=8, filtered=True, nprobe=nprobe)
            e = exact.top_k_tails(h, r, k=8, filtered=True)
            assert a.entities == e.entities
            assert a.scores == e.scores
            assert not any((h, r, t) in known for t in a.entities)
        for h, r in pairs[:2]:
            a = ann.top_k_heads(r, h, k=8, filtered=True, nprobe=nprobe)
            e = exact.top_k_heads(r, h, k=8, filtered=True)
            assert a.entities == e.entities

    def test_default_nprobe_recall_on_served_queries(self, engines, kg):
        ann, exact = engines
        hits = total = 0
        for h, r, _ in kg.split.train[:12]:
            a = set(ann.top_k_tails(int(h), int(r), k=10).entities)
            e = set(exact.top_k_tails(int(h), int(r), k=10).entities)
            hits += len(a & e)
            total += len(e)
        assert hits / total >= 0.85

    def test_per_query_ann_false_forces_exact(self, engines, kg):
        ann, exact = engines
        h, r, _ = map(int, kg.split.train[10])
        before = ann.stats()["ann_queries"]
        a = ann.top_k_tails(h, r, k=6, ann=False)
        assert a.entities == exact.top_k_tails(h, r, k=6).entities
        assert a.scores == exact.top_k_tails(h, r, k=6).scores
        assert ann.stats()["ann_queries"] == before

    def test_nearest_entities_full_probe_matches_exact(self, ann_artifact):
        ann = InferenceEngine.from_artifact(ann_artifact, cache_size=0)
        exact = InferenceEngine.from_artifact(ann_artifact, cache_size=0,
                                              ann="off")
        ann.ann_nprobe = full_probe(ann)
        for entity in (0, 17, 93):
            a = ann.nearest_entities(entity, k=6)
            e = exact.nearest_entities(entity, k=6)
            assert a.entities == e.entities
            assert entity not in a.entities


class TestStatsAndFallback:
    def test_ann_counters_flow_to_stats(self, ann_artifact, kg):
        engine = InferenceEngine.from_artifact(ann_artifact, cache_size=0)
        h, r, _ = map(int, kg.split.train[0])
        engine.top_k_tails(h, r, k=5)
        stats = engine.stats()
        assert stats["ann_queries"] == 1
        assert stats["fallback_queries"] == 0
        assert 0.0 < stats["probed_fraction"] <= 1.0
        assert stats["ann"]["kind"] == "ivf"
        assert stats["ann"]["nprobe"] >= 1

    def test_non_l2_model_falls_back_to_exact(self, ann_artifact, kg):
        # An L1 model has no closed-form L2 query vector: the engine must
        # answer exactly and count the fallback instead of mis-ranking.
        index = load_index(os.path.join(ann_artifact, "index"))
        model = SpTransE(kg.n_entities, kg.n_relations, 12, rng=3,
                         dissimilarity="L1", partitions=3)
        engine = InferenceEngine(model, cache_size=0, ann_index=index)
        plain = InferenceEngine(model, cache_size=0)
        h, r, _ = map(int, kg.split.train[0])
        assert engine.top_k_tails(h, r, k=5).entities == \
            plain.top_k_tails(h, r, k=5).entities
        stats = engine.stats()
        assert stats["fallback_queries"] == 1
        assert stats["ann_queries"] == 0
        model.embeddings.close()
        plain.model.embeddings.close()


class TestReload:
    def test_reload_invalidates_cache_and_keeps_index(self, ann_artifact, kg):
        engine = InferenceEngine.from_artifact(ann_artifact)
        h, r, _ = map(int, kg.split.train[3])
        first = engine.top_k_tails(h, r, k=5)
        assert len(engine.cache) > 0
        hits_before = engine.cache.hits
        engine.top_k_tails(h, r, k=5)
        assert engine.cache.hits == hits_before + 1

        engine.reload(ann_artifact)
        assert len(engine.cache) == 0  # stale answers dropped with the weights
        assert engine.ann_index is not None  # re-attached from the new artifact
        again = engine.top_k_tails(h, r, k=5)
        assert engine.cache.hits == hits_before + 1  # a miss, recomputed
        assert again.entities == first.entities
