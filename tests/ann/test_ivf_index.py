"""IVFIndex: build/load roundtrip, full-probe parity, recall, LRU residency."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import ranking
from repro.ann import (
    INDEX_MANIFEST,
    INDEX_MANIFEST_VERSION,
    build_index_files,
    get_index_class,
    index_kinds,
    load_index,
)
from repro.models.transe import SpTransE
from repro.nn.partitioned import bucket_filename
from repro.training.checkpoint import save_weight_files


class TestRegistry:
    def test_ivf_is_registered(self):
        assert "ivf" in index_kinds()
        assert get_index_class("ivf").kind == "ivf"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown ANN index kind"):
            get_index_class("flann")


class TestBuildAndLoad:
    def test_manifest_written_and_versioned(self, indexed_artifact):
        directory, _, manifest = indexed_artifact
        on_disk = json.loads(
            open(os.path.join(directory, "index", INDEX_MANIFEST)).read())
        assert on_disk["version"] == INDEX_MANIFEST_VERSION
        assert on_disk["kind"] == "ivf"
        assert on_disk == json.loads(json.dumps(manifest))
        assert sum(b["rows"] for b in on_disk["buckets"]) == on_disk["n_entities"]
        for entry in on_disk["buckets"]:
            assert os.path.exists(os.path.join(directory, "index",
                                               entry["centroids"]))
            assert os.path.exists(os.path.join(directory, "index",
                                               entry["assign"]))

    def test_build_is_deterministic(self, indexed_artifact, tmp_path):
        directory, model, manifest = indexed_artifact
        other = str(tmp_path / "again")
        save_weight_files(other, model)
        again = build_index_files(other, kind="ivf", seed=0)
        for a, b in zip(manifest["buckets"], again["buckets"]):
            assert np.array_equal(
                np.load(os.path.join(directory, "index", a["centroids"])),
                np.load(os.path.join(other, "index", b["centroids"])))
            assert np.array_equal(
                np.load(os.path.join(directory, "index", a["assign"])),
                np.load(os.path.join(other, "index", b["assign"])))
        assert manifest["nprobe"] == again["nprobe"]

    def test_version_mismatch_rejected(self, indexed_artifact, tmp_path):
        directory, _, _ = indexed_artifact
        stale = tmp_path / "stale-index"
        stale.mkdir()
        manifest = json.loads(
            open(os.path.join(directory, "index", INDEX_MANIFEST)).read())
        manifest["version"] = INDEX_MANIFEST_VERSION + 1
        (stale / INDEX_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported index manifest version"):
            load_index(str(stale))

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match=INDEX_MANIFEST):
            load_index(str(tmp_path))

    def test_unpartitioned_artifact_rejected(self, tmp_path):
        directory = str(tmp_path / "dense")
        model = SpTransE(40, 3, 8, rng=0)  # no partitions -> no partition.json
        save_weight_files(directory, model)
        with pytest.raises(ValueError, match="partition"):
            build_index_files(directory, kind="ivf")


class TestFullProbeParity:
    def test_full_probe_candidates_are_every_entity(self, index, full_table):
        q = full_table[7]
        cand = index.candidate_ids(q, nprobe=index.n_clusters)
        assert np.array_equal(cand, np.arange(index.n_entities, dtype=np.int64))

    def test_full_probe_matches_exact_bit_for_bit(self, index, full_table):
        for row in (0, 57, 211):
            q = full_table[row]
            dist = ranking.l2_distance_matrix(q[None, :], full_table)[0]
            expected = ranking.top_k(dist, 10)
            ids, got_dist = index.search(q, 10, nprobe=index.n_clusters)
            assert np.array_equal(ids, expected)
            assert np.array_equal(got_dist, dist[expected])

    def test_full_probe_ties_at_kth_score(self, tmp_path):
        # Property (satellite): with nprobe == n_clusters the IVF result is
        # bit-identical to ranking.top_k even when the k-th score ties —
        # duplicate rows force exact distance ties, and both paths must break
        # them the same way (top_k's stable index order).
        directory = str(tmp_path / "ties")
        model = SpTransE(90, 3, 6, rng=1, partitions=3)
        save_weight_files(directory, model)
        distinct = np.linspace(-1.0, 1.0, 5 * 6).reshape(5, 6)
        table = np.tile(distinct, (18, 1))  # every distance 18-way tied
        for k, entry in enumerate(json.loads(open(os.path.join(
                directory, "weights", "partition.json")).read())["buckets"]):
            lo, rows = int(entry["start"]), int(entry["rows"])
            np.save(os.path.join(directory, "weights", bucket_filename(k)),
                    table[lo:lo + rows])
        build_index_files(directory, kind="ivf", seed=0, nprobe=1)
        index = load_index(os.path.join(directory, "index"))
        full = index.exact_rows(np.arange(90, dtype=np.int64))
        assert np.array_equal(full, table)
        for row in (0, 4, 44):
            dist = ranking.l2_distance_matrix(table[row][None, :], table)[0]
            k = 7  # 7 < 18 duplicates: the k-th score is mid-tie
            expected = ranking.top_k(dist, k)
            ids, got = index.search(table[row], k, nprobe=index.n_clusters)
            assert np.array_equal(ids, expected)
            assert np.array_equal(got, dist[expected])

    def test_exclude_drops_the_query_row(self, index, full_table):
        q = full_table[12]
        ids, _ = index.search(q, 5, nprobe=index.n_clusters, exclude=12)
        assert 12 not in ids.tolist()


class TestRecall:
    def test_full_probe_recall_is_one(self, index, full_table):
        queries = full_table[::40]
        assert index.recall_probe(queries, k=10,
                                  nprobe=index.n_clusters) == pytest.approx(1.0)

    def test_default_nprobe_meets_build_target(self, index):
        # The build auto-chose the manifest nprobe for recall@10 >= 0.95 on a
        # deterministic sample; a fresh sample must land in the same regime.
        queries = index._sample_queries(16, seed=99)
        assert index.recall_probe(queries, k=10) >= 0.85

    def test_choose_nprobe_meets_target(self, index, full_table):
        queries = full_table[::60]
        nprobe = index.choose_nprobe(queries, k=5, target_recall=0.9)
        assert 1 <= nprobe <= index.n_clusters
        assert index.recall_probe(queries, k=5, nprobe=nprobe) >= 0.9

    def test_wider_probe_never_hurts_on_sample(self, index, full_table):
        queries = full_table[::75]
        narrow = index.recall_probe(queries, k=10, nprobe=1)
        wide = index.recall_probe(queries, k=10, nprobe=index.n_clusters)
        assert wide >= narrow


class TestResidency:
    def test_assignment_blocks_page_under_lru(self, indexed_artifact, full_table):
        directory, _, _ = indexed_artifact
        index = load_index(os.path.join(directory, "index"), max_resident=1)
        for row in range(0, index.n_entities, 30):
            index.search(full_table[row], 5, nprobe=index.n_clusters)
        stats = index.stats()
        assert stats["resident_blocks"] == 1
        assert stats["index_evictions"] > 0
        assert stats["index_faults"] > index.n_buckets
        assert stats["index_bytes_loaded"] > 0

    def test_unbounded_residency_faults_each_bucket_once(self, indexed_artifact,
                                                         full_table):
        directory, _, _ = indexed_artifact
        index = load_index(os.path.join(directory, "index"))
        for row in range(0, index.n_entities, 30):
            index.search(full_table[row], 5, nprobe=index.n_clusters)
        stats = index.stats()
        assert stats["index_faults"] == index.n_buckets
        assert stats["index_evictions"] == 0
