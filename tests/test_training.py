"""Tests for the training loop, callbacks, and configuration."""

import numpy as np
import pytest

from repro.baselines import DenseTransE
from repro.data import generate_synthetic_kg
from repro.models import SpTransE
from repro.optim import SGD, ExponentialLR
from repro.training import (
    EarlyStopping,
    EvaluationCallback,
    HistoryCallback,
    LRSchedulerCallback,
    Trainer,
    TrainingConfig,
)
from repro.training.trainer import build_optimizer


@pytest.fixture
def kg():
    return generate_synthetic_kg(50, 5, 400, rng=0)


@pytest.fixture
def config():
    return TrainingConfig(epochs=4, batch_size=128, learning_rate=0.01, seed=0)


class TestTrainingConfig:
    def test_defaults_match_paper_protocol(self):
        cfg = TrainingConfig()
        assert cfg.learning_rate == pytest.approx(4e-4)
        assert cfg.margin == pytest.approx(0.5)
        assert cfg.optimizer == "adam"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainingConfig(margin=-1)
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            TrainingConfig(normalize_every=-1)

    def test_to_dict_and_replace(self):
        cfg = TrainingConfig(epochs=10)
        clone = cfg.replace(epochs=20, batch_size=64)
        assert clone.epochs == 20 and clone.batch_size == 64
        assert cfg.epochs == 10
        assert cfg.to_dict()["margin"] == 0.5

    def test_build_optimizer_dispatch(self, kg):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        for name in ("adam", "sgd", "adagrad"):
            assert build_optimizer(name, model, 0.01) is not None
        with pytest.raises(ValueError):
            build_optimizer("rmsprop", model, 0.01)


class TestTrainer:
    def test_loss_decreases_over_training(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        result = Trainer(model, kg, config.replace(epochs=8)).train()
        assert result.final_loss < result.losses[0]

    def test_result_bookkeeping(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config).train()
        assert len(result.epochs) == config.epochs
        assert result.total_time > 0
        breakdown = result.breakdown()
        assert set(breakdown) == {"forward", "backward", "step", "data", "total"}
        assert breakdown["total"] == pytest.approx(
            breakdown["forward"] + breakdown["backward"] + breakdown["step"]
            + breakdown["data"]
        )

    def test_phase_times_positive(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config).train()
        assert result.forward_time > 0
        assert result.backward_time > 0
        assert result.step_time > 0

    def test_deterministic_given_seed(self, kg, config):
        losses = []
        for _ in range(2):
            model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
            losses.append(Trainer(model, kg, config).train().losses)
        np.testing.assert_allclose(losses[0], losses[1])

    def test_explicit_epoch_override(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config).train(epochs=2)
        assert len(result.epochs) == 2

    def test_train_step_returns_stats(self, kg, config):
        from repro.data import BatchIterator

        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        trainer = Trainer(model, kg, config)
        batch = next(iter(trainer.batches))
        stats = trainer.train_step(batch)
        assert stats.loss > 0
        assert stats.forward_time >= 0

    def test_works_with_dense_baseline(self, kg, config):
        model = DenseTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config).train()
        assert result.final_loss <= result.losses[0] + 1e-6

    def test_normalization_disabled(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        model.embeddings.weight.data *= 5.0
        Trainer(model, kg, config.replace(normalize_every=0, epochs=1)).train()
        # Without the maintenance step, some entity norms stay above 1.
        assert np.any(np.linalg.norm(model.embeddings.entity_embeddings(), axis=1) > 1.0)

    def test_custom_optimizer_and_criterion(self, kg, config):
        from repro.losses import LogisticLoss

        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        opt = SGD(model.parameters(), lr=0.1)
        trainer = Trainer(model, kg, config, optimizer=opt, criterion=LogisticLoss())
        result = trainer.train(epochs=2)
        assert np.isfinite(result.final_loss)
        assert trainer.optimizer is opt


class TestCallbacks:
    def test_history_callback_records_every_epoch(self, kg, config):
        history = HistoryCallback()
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        Trainer(model, kg, config, callbacks=[history]).train()
        assert len(history.losses) == config.epochs
        assert len(history.times) == config.epochs

    def test_early_stopping_halts_training(self, kg, config):
        stopper = EarlyStopping(patience=0, min_delta=1e9)  # every epoch counts as bad
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = Trainer(model, kg, config.replace(epochs=10), callbacks=[stopper]).train()
        assert len(result.epochs) < 10
        assert stopper.stopped_epoch is not None

    def test_early_stopping_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=-1)

    def test_lr_scheduler_callback(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        opt = SGD(model.parameters(), lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        Trainer(model, kg, config.replace(epochs=3), optimizer=opt,
                callbacks=[LRSchedulerCallback(sched)]).train()
        assert opt.lr == pytest.approx(0.125)

    def test_evaluation_callback_records_metrics(self):
        kg = generate_synthetic_kg(40, 4, 300, rng=1, valid_fraction=0.1)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        evaluator = EvaluationCallback(kg, every=2, split="valid", ks=(1, 10))
        Trainer(model, kg, TrainingConfig(epochs=4, batch_size=128, seed=0),
                callbacks=[evaluator]).train()
        assert len(evaluator.history) == 2
        assert "hits@10" in evaluator.history[0]

    def test_evaluation_callback_validation(self, kg):
        with pytest.raises(ValueError):
            EvaluationCallback(kg, every=0)
        with pytest.raises(ValueError):
            EvaluationCallback(kg, split="train")
