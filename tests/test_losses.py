"""Tests for the loss functions."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.losses import (
    BCEWithLogitsLoss,
    LogisticLoss,
    MarginRankingLoss,
    SelfAdversarialLoss,
    bce_with_logits_loss,
    logistic_loss,
    margin_ranking_loss,
    self_adversarial_loss,
)


def scores(values, grad=True):
    return Tensor(np.asarray(values, dtype=float), requires_grad=grad)


class TestMarginRankingLoss:
    def test_zero_when_separated_by_margin(self):
        loss = margin_ranking_loss(scores([1.0, 2.0]), scores([2.0, 3.0]), margin=0.5)
        assert loss.item() == 0.0

    def test_positive_when_violated(self):
        loss = margin_ranking_loss(scores([2.0]), scores([1.0]), margin=0.5)
        np.testing.assert_allclose(loss.item(), 1.5)

    def test_mean_vs_sum_vs_none(self):
        pos, neg = scores([2.0, 2.0]), scores([1.0, 4.0])
        per = margin_ranking_loss(pos, neg, margin=0.5, reduction="none")
        np.testing.assert_allclose(per.data, [1.5, 0.0])
        assert margin_ranking_loss(pos, neg, 0.5, "sum").item() == pytest.approx(1.5)
        assert margin_ranking_loss(pos, neg, 0.5, "mean").item() == pytest.approx(0.75)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            margin_ranking_loss(scores([1.0]), scores([1.0]), reduction="median")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            margin_ranking_loss(scores([1.0, 2.0]), scores([1.0]))

    def test_gradients_push_scores_apart(self):
        pos, neg = scores([1.0]), scores([1.0])
        margin_ranking_loss(pos, neg, margin=1.0).backward()
        assert pos.grad[0] > 0          # loss decreases if positive score decreases
        assert neg.grad[0] < 0          # loss decreases if negative score increases

    def test_module_wrapper(self):
        module = MarginRankingLoss(margin=0.5)
        assert module(scores([2.0]), scores([1.0])).item() == pytest.approx(1.5)
        with pytest.raises(ValueError):
            MarginRankingLoss(margin=-1.0)
        with pytest.raises(ValueError):
            MarginRankingLoss(reduction="bad")


class TestLogisticLoss:
    def test_value(self):
        loss = logistic_loss(scores([0.0]), scores([0.0]))
        np.testing.assert_allclose(loss.item(), 2 * np.log(2.0), rtol=1e-10)

    def test_decreases_with_better_separation(self):
        worse = logistic_loss(scores([2.0]), scores([1.0])).item()
        better = logistic_loss(scores([0.5]), scores([5.0])).item()
        assert better < worse

    def test_reductions_and_module(self):
        pos, neg = scores([0.0, 0.0]), scores([0.0, 0.0])
        assert logistic_loss(pos, neg, "sum").item() == pytest.approx(4 * np.log(2.0))
        module = LogisticLoss()
        assert module(pos, neg).item() == pytest.approx(2 * np.log(2.0))
        with pytest.raises(ValueError):
            logistic_loss(pos, neg, "bad")
        with pytest.raises(ValueError):
            LogisticLoss(reduction="bad")


class TestBCEWithLogits:
    def test_matches_reference_formula(self):
        logits = scores([0.5, -1.0, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        loss = bce_with_logits_loss(logits, targets)
        ref = np.mean(np.logaddexp(0, logits.data) - logits.data * targets)
        np.testing.assert_allclose(loss.item(), ref, rtol=1e-10)

    def test_extreme_logits_stable(self):
        loss = bce_with_logits_loss(scores([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_target_shape_check(self):
        with pytest.raises(ValueError):
            bce_with_logits_loss(scores([1.0, 2.0]), np.array([1.0]))

    def test_module_and_reductions(self):
        module = BCEWithLogitsLoss(reduction="sum")
        out = module(scores([0.0, 0.0]), np.array([1.0, 0.0]))
        np.testing.assert_allclose(out.item(), 2 * np.log(2.0), rtol=1e-10)
        with pytest.raises(ValueError):
            BCEWithLogitsLoss(reduction="bad")


class TestSelfAdversarialLoss:
    def test_decreases_with_better_separation(self):
        worse = self_adversarial_loss(scores([5.0]), scores([6.0]), margin=6.0).item()
        better = self_adversarial_loss(scores([1.0]), scores([12.0]), margin=6.0).item()
        assert better < worse

    def test_accepts_multiple_negatives(self):
        pos = scores([1.0, 2.0])
        neg = Tensor(np.array([[7.0, 8.0], [9.0, 10.0]]), requires_grad=True)
        loss = self_adversarial_loss(pos, neg)
        assert np.isfinite(loss.item())
        loss.backward()
        assert pos.grad is not None and neg.grad is not None

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            self_adversarial_loss(scores([1.0]), scores([2.0]), temperature=0.0)

    def test_module_validation(self):
        with pytest.raises(ValueError):
            SelfAdversarialLoss(margin=-1.0)
        with pytest.raises(ValueError):
            SelfAdversarialLoss(temperature=0.0)
        module = SelfAdversarialLoss(margin=6.0)
        assert np.isfinite(module(scores([1.0]), scores([8.0])).item())


class TestFusedMarginLoss:
    """The fused one-pass path must reproduce the reference bit-identically."""

    def _pair(self, seed=0, n=513):
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal(n)
        neg = rng.standard_normal(n)
        return pos, neg

    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    def test_forward_bit_identical_to_reference(self, reduction):
        pos, neg = self._pair()
        fused = margin_ranking_loss(scores(pos), scores(neg), margin=0.5,
                                    reduction=reduction, fused=True)
        ref = margin_ranking_loss(scores(pos), scores(neg), margin=0.5,
                                  reduction=reduction, fused=False)
        np.testing.assert_array_equal(fused.data, ref.data)

    @pytest.mark.parametrize("reduction", ["mean", "sum"])
    def test_gradients_bit_identical_to_reference(self, reduction):
        pos_vals, neg_vals = self._pair(seed=3)
        p_f, n_f = scores(pos_vals), scores(neg_vals)
        p_r, n_r = scores(pos_vals), scores(neg_vals)
        margin_ranking_loss(p_f, n_f, 0.5, reduction, fused=True).backward()
        margin_ranking_loss(p_r, n_r, 0.5, reduction, fused=False).backward()
        np.testing.assert_array_equal(p_f.grad, p_r.grad)
        np.testing.assert_array_equal(n_f.grad, n_r.grad)

    def test_none_reduction_gradients_match(self):
        pos_vals, neg_vals = self._pair(seed=5, n=64)
        p_f, n_f = scores(pos_vals), scores(neg_vals)
        p_r, n_r = scores(pos_vals), scores(neg_vals)
        upstream = np.random.default_rng(5).standard_normal(64)
        margin_ranking_loss(p_f, n_f, 0.5, "none", fused=True).backward(upstream)
        margin_ranking_loss(p_r, n_r, 0.5, "none", fused=False).backward(upstream)
        np.testing.assert_array_equal(p_f.grad, p_r.grad)
        np.testing.assert_array_equal(n_f.grad, n_r.grad)

    def test_module_exposes_fused_switch(self):
        fused = MarginRankingLoss(margin=0.5, fused=True)
        ref = MarginRankingLoss(margin=0.5, fused=False)
        pos, neg = self._pair(seed=7, n=32)
        np.testing.assert_array_equal(fused(scores(pos), scores(neg)).data,
                                      ref(scores(pos), scores(neg)).data)

    def test_fused_records_one_tape_node(self):
        pos, neg = scores([2.0, 0.0]), scores([1.0, 4.0])
        out = margin_ranking_loss(pos, neg, 0.5, "mean", fused=True)
        assert out._op == "margin_loss[fused]"
        assert set(out._parents) == {pos, neg}

    def test_fused_float32_keeps_dtype_in_grads(self):
        pos = Tensor(np.array([2.0, 2.0], dtype=np.float32), requires_grad=True)
        neg = Tensor(np.array([1.0, 4.0], dtype=np.float32), requires_grad=True)
        margin_ranking_loss(pos, neg, 0.5, "sum", fused=True).backward()
        assert pos.grad.dtype == np.float32
        assert neg.grad.dtype == np.float32
