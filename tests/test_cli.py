"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "transe"
        assert args.formulation == "sparse"
        assert args.dataset == "FB15K"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "kg2e"])


class TestInfoCommand:
    def test_lists_catalog_and_backends(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        payload = json.loads(out)
        assert "FB15K" in payload["datasets"]
        assert payload["datasets"]["FB15K"]["entities"] == 14951
        assert "transe" in payload["sparse_models"]
        assert "scipy" in payload["spmm_backends"]


class TestTrainCommand:
    def test_train_synthetic_and_checkpoint(self, capsys, tmp_path):
        ckpt = str(tmp_path / "model.npz")
        code, out = run_cli(
            capsys, "train", "--dataset", "WN18RR", "--scale", "0.003",
            "--model", "transe", "--epochs", "2", "--batch-size", "256",
            "--dim", "16", "--learning-rate", "0.01", "--checkpoint", ckpt,
            "--quiet",
        )
        assert code == 0
        assert "final_loss" in out
        assert (tmp_path / "model.npz").exists()

    def test_train_dense_formulation(self, capsys):
        code, out = run_cli(
            capsys, "train", "--dataset", "WN18RR", "--scale", "0.003",
            "--model", "transh", "--formulation", "dense", "--epochs", "1",
            "--batch-size", "256", "--dim", "8", "--quiet",
        )
        assert code == 0
        assert "DenseTransH" in out

    def test_train_from_triples_file_with_eval(self, capsys, tmp_path):
        rng = np.random.default_rng(0)
        rows = {(int(h), int(t)) for h, t in rng.integers(0, 20, size=(300, 2)) if h != t}
        path = tmp_path / "kg.csv"
        path.write_text("\n".join(f"e{h},r0,e{t}" for h, t in rows) + "\n")
        code, out = run_cli(
            capsys, "train", "--triples-file", str(path), "--test-fraction", "0.1",
            "--epochs", "2", "--batch-size", "64", "--dim", "8",
            "--learning-rate", "0.05", "--eval", "--quiet",
        )
        assert code == 0
        assert "link_prediction" in out

    def test_dense_only_model_with_sparse_formulation_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--model", "transd", "--formulation", "sparse",
                  "--scale", "0.003", "--epochs", "1", "--quiet"])


class TestExportSpecCommand:
    def test_writes_a_loadable_spec(self, capsys, tmp_path):
        from repro.experiment import ExperimentSpec

        path = str(tmp_path / "exp.json")
        code, out = run_cli(
            capsys, "export-spec", "--dataset", "WN18RR", "--scale", "0.003",
            "--model", "transe", "--epochs", "2", "--batch-size", "256",
            "--dim", "16", "--output", path,
        )
        assert code == 0 and path in out
        spec = ExperimentSpec.from_file(path)
        assert spec.model.model == "transe"
        assert spec.training.epochs == 2
        assert spec.name == "transe-wn18rr"
        # the canonical round trip the acceptance criterion names
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_prints_to_stdout_without_output(self, capsys):
        code, out = run_cli(
            capsys, "export-spec", "--dataset", "WN18RR", "--scale", "0.003",
            "--model", "transh", "--formulation", "dense", "--epochs", "1",
            "--dim", "8", "--name", "custom", "--tags", "a", "b",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["name"] == "custom"
        assert payload["tags"] == ["a", "b"]
        assert payload["model"]["formulation"] == "dense"


class TestRunCommand:
    def test_run_spec_end_to_end(self, capsys, tmp_path):
        spec_path = str(tmp_path / "exp.json")
        run_cli(capsys, "export-spec", "--dataset", "WN18RR", "--scale", "0.003",
                "--generator", "learnable", "--test-fraction", "0.1",
                "--model", "transe", "--epochs", "2", "--batch-size", "256",
                "--dim", "16", "--learning-rate", "0.01", "--output", spec_path)
        artifacts = str(tmp_path / "artifacts")
        code, out = run_cli(capsys, "run", spec_path, "--artifacts", artifacts,
                            "--quiet")
        assert code == 0
        payload = json.loads(out)
        assert payload["artifacts"] == artifacts
        assert "link_prediction" in payload["metrics"]["evaluations"]
        assert (tmp_path / "artifacts" / "spec.json").exists()
        assert (tmp_path / "artifacts" / "metrics.json").exists()
        assert (tmp_path / "artifacts" / "checkpoint.npz").exists()

        # the artifact directory doubles as an evaluate/serve checkpoint
        code, out = run_cli(
            capsys, "evaluate", "--checkpoint", artifacts, "--dataset", "WN18RR",
            "--scale", "0.003", "--generator", "learnable",
            "--test-fraction", "0.1", "--ks", "10",
        )
        assert code == 0
        assert "hits@10" in json.loads(out)

    def test_run_storage_and_workers_overrides(self, capsys, tmp_path):
        spec_path = str(tmp_path / "exp.json")
        run_cli(capsys, "export-spec", "--dataset", "WN18RR", "--scale", "0.003",
                "--model", "transe", "--epochs", "1", "--batch-size", "256",
                "--dim", "8", "--sparse-grads", "--output", spec_path)
        spec_payload = json.loads((tmp_path / "exp.json").read_text())
        assert spec_payload["data"]["storage"] == "memory"
        assert spec_payload["training"]["num_workers"] == 1

        artifacts = str(tmp_path / "artifacts")
        code, out = run_cli(capsys, "run", spec_path, "--artifacts", artifacts,
                            "--storage", "sqlite", "--workers", "2", "--quiet")
        assert code == 0
        assert json.loads(out)["metrics"]["epochs_trained"] == 1
        assert (tmp_path / "artifacts" / "data.sqlite").exists()
        assert (tmp_path / "artifacts" / "weights").is_dir()

    def test_run_backend_override_flows_to_model(self, capsys, tmp_path):
        spec_path = str(tmp_path / "exp.json")
        run_cli(capsys, "export-spec", "--dataset", "WN18RR", "--scale", "0.003",
                "--model", "transe", "--epochs", "1", "--batch-size", "256",
                "--dim", "8", "--output", spec_path)
        assert json.loads((tmp_path / "exp.json").read_text())["model"].get(
            "backend") is None

        artifacts = str(tmp_path / "artifacts")
        code, out = run_cli(capsys, "run", spec_path, "--artifacts", artifacts,
                            "--backend", "compiled", "--quiet")
        assert code == 0
        assert json.loads(out)["model"]["backend"] == "compiled"

        # The backend round-trips through the artifact's checkpointed spec.
        from repro.training.checkpoint import load_model

        restored = load_model(artifacts)
        assert restored.backend == "compiled"

    def test_run_quantize_writes_quantized_artifact(self, capsys, tmp_path):
        spec_path = str(tmp_path / "exp.json")
        run_cli(capsys, "export-spec", "--dataset", "WN18RR", "--scale", "0.003",
                "--model", "transe", "--epochs", "1", "--batch-size", "256",
                "--dim", "8", "--output", spec_path)
        artifacts = str(tmp_path / "artifacts")
        code, out = run_cli(capsys, "run", spec_path, "--artifacts", artifacts,
                            "--partitions", "2", "--quantize", "int8", "--quiet")
        assert code == 0
        assert json.loads(out)["quantized"] == "int8"
        weights = tmp_path / "artifacts" / "weights"
        assert (weights / "entities.bucket0.i8.npy").exists()
        assert (weights / "entities.bucket0.i8.scale.npy").exists()
        manifest = json.loads((weights / "partition.json").read_text())
        assert manifest["quantized"]["mode"] == "int8"

    def test_run_quantize_rejects_unpartitioned_model(self, capsys, tmp_path):
        spec_path = str(tmp_path / "exp.json")
        run_cli(capsys, "export-spec", "--dataset", "WN18RR", "--scale", "0.003",
                "--model", "transe", "--epochs", "1", "--batch-size", "256",
                "--dim", "8", "--output", spec_path)
        with pytest.raises(SystemExit):
            main(["run", spec_path, "--artifacts", str(tmp_path / "a"),
                  "--quantize", "fp16", "--quiet"])

    def test_train_accepts_storage_and_workers_flags(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "model.npz")
        code, out = run_cli(capsys, "train", "--dataset", "WN18RR", "--scale",
                            "0.003", "--model", "transe", "--epochs", "1",
                            "--batch-size", "256", "--dim", "8",
                            "--storage", "sqlite", "--storage-path",
                            str(tmp_path / "kg.sqlite"), "--workers", "2",
                            "--sparse-grads", "--checkpoint", checkpoint)
        assert code == 0
        assert (tmp_path / "kg.sqlite").exists()
        summary = json.loads(out[:out.rindex("}") + 1])
        assert np.isfinite(summary["final_loss"])

    def test_run_missing_spec_fails(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="cannot load"):
            main(["run", str(tmp_path / "nope.json")])

    def test_run_invalid_spec_fails(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"model": {"model": "transe"},
                                    "trainnig": {}}))
        with pytest.raises(SystemExit, match="trainnig"):
            main(["run", str(path)])


class TestEvaluateCommand:
    def test_train_then_evaluate_checkpoint(self, capsys, tmp_path):
        ckpt = str(tmp_path / "m.npz")
        code, _ = run_cli(
            capsys, "train", "--dataset", "WN18RR", "--scale", "0.003",
            "--model", "transe", "--epochs", "2", "--batch-size", "256",
            "--dim", "16", "--checkpoint", ckpt, "--quiet",
        )
        assert code == 0
        code, out = run_cli(
            capsys, "evaluate", "--checkpoint", ckpt, "--dataset", "WN18RR",
            "--scale", "0.003", "--test-fraction", "0.1", "--ks", "1", "10",
        )
        assert code == 0
        payload = json.loads(out)
        assert "hits@10" in payload
        assert 0.0 <= payload["hits@10"] <= 1.0

    def test_evaluate_empty_split_fails(self, capsys, tmp_path):
        ckpt = str(tmp_path / "m.npz")
        run_cli(capsys, "train", "--dataset", "WN18RR", "--scale", "0.003",
                "--model", "transe", "--epochs", "1", "--batch-size", "256",
                "--dim", "8", "--checkpoint", ckpt, "--quiet")
        with pytest.raises(SystemExit):
            main(["evaluate", "--checkpoint", ckpt, "--dataset", "WN18RR",
                  "--scale", "0.003", "--test-fraction", "0", "--split", "valid"])
