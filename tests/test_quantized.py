"""Quantized serving weights: codec, artifact layout, and rank parity.

The acceptance contract: int8/fp16 artifacts serve with top-k ranks identical
to full-precision serving (exact rescoring from the float64 originals) at no
more than half the resident bucket bytes.
"""

import json
import os

import numpy as np
import pytest

from repro.models.transe import SpTransE
from repro.nn import quantize
from repro.nn.partitioned import PARTITION_MANIFEST
from repro.serving.engine import InferenceEngine
from repro.training.checkpoint import save_checkpoint, save_weight_files, load_model


@pytest.fixture
def artifact(tmp_path):
    """A trained-ish partitioned artifact with both quantized modes written."""
    model = SpTransE(120, 5, 12, partitions=3, rng=7, max_resident=2)
    path = str(tmp_path / "artifact")
    os.makedirs(path)
    save_checkpoint(os.path.join(path, "checkpoint.npz"), model)
    return model, path


class TestCodec:
    def test_int8_roundtrip_error_bound(self):
        rng = np.random.default_rng(0)
        slab = rng.standard_normal((50, 16))
        codes, scales = quantize.quantize_int8(slab)
        assert codes.dtype == np.int8 and scales.dtype == np.float32
        back = quantize.dequantize_int8(codes, scales)
        assert back.dtype == np.float32
        err = np.abs(back.astype(np.float64) - slab)
        assert (err <= scales[:, None].astype(np.float64) / 2 + 1e-6).all()

    def test_int8_zero_rows(self):
        slab = np.zeros((4, 8))
        codes, scales = quantize.quantize_int8(slab)
        np.testing.assert_array_equal(quantize.dequantize_int8(codes, scales), 0.0)

    def test_filenames_and_factor(self):
        assert quantize.quantized_filenames(2, "fp16") == ["entities.bucket2.f16.npy"]
        assert quantize.quantized_filenames(0, "int8") == [
            "entities.bucket0.i8.npy", "entities.bucket0.i8.scale.npy"]
        assert quantize.compression_factor("fp16") == 4
        assert quantize.compression_factor("int8") == 2
        with pytest.raises(ValueError):
            quantize.check_mode("int4")


class TestArtifactLayout:
    def test_save_weight_files_writes_quantized_twins(self, artifact):
        model, path = artifact
        written = save_weight_files(path, model, quantize="int8")
        weights = os.path.join(path, "weights")
        for k in range(3):
            assert os.path.exists(os.path.join(weights, f"entities.bucket{k}.npy"))
            assert os.path.exists(os.path.join(weights, f"entities.bucket{k}.i8.npy"))
            assert os.path.exists(
                os.path.join(weights, f"entities.bucket{k}.i8.scale.npy"))
        with open(os.path.join(weights, PARTITION_MANIFEST)) as handle:
            manifest = json.load(handle)
        assert manifest["quantized"]["mode"] == "int8"
        assert len(manifest["quantized"]["buckets"]) == 3
        assert "entities.bucket0.i8" in written

    def test_quantize_requires_partitioned_model(self, tmp_path):
        dense = SpTransE(20, 3, 4, rng=0)
        with pytest.raises(ValueError, match="partitioned"):
            save_weight_files(str(tmp_path), dense, quantize="fp16")

    def test_disk_bytes_shrink(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="int8")
        weights = os.path.join(path, "weights")
        exact = os.path.getsize(os.path.join(weights, "entities.bucket0.npy"))
        codes = os.path.getsize(os.path.join(weights, "entities.bucket0.i8.npy"))
        assert codes < exact / 4  # int8 codes are 1/8 the float64 payload


class TestQuantizedAttach:
    def test_slab_dtype_and_resident_bytes(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="int8")
        ckpt = os.path.join(path, "checkpoint.npz")
        ref = load_model(ckpt, mmap=True)
        q = load_model(ckpt, mmap=True, quantized="int8")
        assert ref.embeddings.slab_dtype == np.float64
        assert q.embeddings.slab_dtype == np.float32
        assert q.embeddings.quantized == "int8"
        rows_ref = ref.embeddings.read_rows(np.arange(40))
        rows_q = q.embeddings.read_rows(np.arange(40))
        assert rows_q.dtype == np.float32  # no silent upcast
        # Same bucket resident on both tables: quantized costs half the bytes.
        assert q.embeddings.bucket_parameters()[0].nbytes * 2 == \
            ref.embeddings.bucket_parameters()[0].nbytes
        np.testing.assert_allclose(rows_q, rows_ref, atol=0.02)

    def test_max_resident_auto_scales(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="fp16")
        q = load_model(os.path.join(path, "checkpoint.npz"), mmap=True,
                       quantized="fp16")
        # base max_resident 2 × factor 4, capped at 3 partitions
        assert q.embeddings.max_resident == 3
        assert q.embeddings.slab_dtype == np.float16

    def test_exact_rows_match_float64_originals(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="int8")
        ckpt = os.path.join(path, "checkpoint.npz")
        ref = load_model(ckpt, mmap=True)
        q = load_model(ckpt, mmap=True, quantized="int8")
        idx = np.array([0, 55, 119, 3])
        np.testing.assert_array_equal(q.embeddings.exact_rows(idx),
                                      ref.embeddings.read_rows(idx))
        assert q.embeddings.stats()["exact_row_reads"] == idx.size

    def test_mode_mismatch_raises(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="fp16")
        with pytest.raises(ValueError, match="not quantized as"):
            load_model(os.path.join(path, "checkpoint.npz"), mmap=True,
                       quantized="int8")

    def test_auto_uses_manifest_mode(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="int8")
        q = load_model(os.path.join(path, "checkpoint.npz"), mmap=True,
                       quantized="auto")
        assert q.embeddings.quantized == "int8"

    def test_auto_without_quantized_files_is_full_precision(self, artifact):
        model, path = artifact
        save_weight_files(path, model)
        q = load_model(os.path.join(path, "checkpoint.npz"), mmap=True,
                       quantized="auto")
        assert q.embeddings.quantized is None
        assert q.embeddings.slab_dtype == np.float64

    def test_quantized_requires_mmap(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="int8")
        with pytest.raises(ValueError, match="mmap"):
            load_model(os.path.join(path, "checkpoint.npz"), quantized="int8")


class TestRankParity:
    @pytest.mark.parametrize("mode", ["fp16", "int8"])
    def test_topk_ranks_identical_after_rescore(self, artifact, mode):
        model, path = artifact
        save_weight_files(path, model, quantize=mode)
        ckpt = os.path.join(path, "checkpoint.npz")
        ref_engine = InferenceEngine(load_model(ckpt, mmap=True))
        q_engine = InferenceEngine(load_model(ckpt, mmap=True, quantized=mode))
        for anchor, rel in [(0, 0), (17, 2), (119, 4), (58, 1)]:
            a = ref_engine.top_k_tails(anchor, rel, k=10)
            b = q_engine.top_k_tails(anchor, rel, k=10)
            assert a.entities == b.entities
            np.testing.assert_allclose(a.scores, b.scores, rtol=1e-12, atol=1e-12)
            a = ref_engine.top_k_heads(rel, anchor, k=10)
            b = q_engine.top_k_heads(rel, anchor, k=10)
            assert a.entities == b.entities
        assert q_engine.stats()["rescored_queries"] > 0
        assert q_engine.stats()["quantized"] == mode
        assert ref_engine.stats()["rescored_queries"] == 0

    def test_filtered_queries_keep_parity(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="int8")
        ckpt = os.path.join(path, "checkpoint.npz")
        known = [(0, 0, t) for t in range(15)]
        ref_engine = InferenceEngine(load_model(ckpt, mmap=True),
                                     known_triples=known)
        q_engine = InferenceEngine(load_model(ckpt, mmap=True, quantized="int8"),
                                   known_triples=known)
        a = ref_engine.top_k_tails(0, 0, k=8, filtered=True)
        b = q_engine.top_k_tails(0, 0, k=8, filtered=True)
        assert a.entities == b.entities
        assert not set(a.entities) & set(range(15))

    def test_nearest_entities_parity(self, artifact):
        model, path = artifact
        save_weight_files(path, model, quantize="int8")
        ckpt = os.path.join(path, "checkpoint.npz")
        ref_engine = InferenceEngine(load_model(ckpt, mmap=True))
        q_engine = InferenceEngine(load_model(ckpt, mmap=True, quantized="int8"))
        for entity in (3, 64, 119):
            a = ref_engine.nearest_entities(entity, k=5)
            b = q_engine.nearest_entities(entity, k=5)
            assert a.entities == b.entities

    def test_rescore_expansion_validation(self, artifact):
        model, path = artifact
        with pytest.raises(ValueError):
            InferenceEngine(model, rescore_expansion=0)
