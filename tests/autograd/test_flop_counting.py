"""Tests for the FLOP / byte-traffic counter plumbing."""

import numpy as np

from repro.autograd import Tensor, flop_counter, get_flops, ops, reset_flops
from repro.autograd.function import OpCounters, count_flops, get_global_counters


class TestOpCounters:
    def test_add_and_merge(self):
        a = OpCounters()
        a.add("x", 10, bytes_streamed=100, bytes_unique=50)
        b = OpCounters()
        b.add("x", 5)
        b.add("y", 7)
        a.merge(b)
        assert a.flops == 22
        assert a.per_op == {"x": 15, "y": 7}
        assert a.bytes_streamed == 100
        assert a.calls == 3

    def test_count_flops_reaches_active_contexts(self):
        with flop_counter() as outer:
            with flop_counter() as inner:
                count_flops("manual", 3)
            count_flops("manual", 4)
        assert inner.flops == 3
        assert outer.flops == 7

    def test_global_counter_and_reset(self):
        reset_flops()
        count_flops("manual", 11)
        assert get_flops() == 11
        reset_flops()
        assert get_flops() == 0
        assert get_global_counters().flops == 0


class TestOperatorAccounting:
    def test_elementwise_flops_match_size(self):
        x = Tensor(np.ones((10, 10)))
        with flop_counter() as counters:
            _ = x + x
        assert counters.per_op.get("add") == 100

    def test_matmul_flops(self):
        a = Tensor(np.ones((4, 5)))
        b = Tensor(np.ones((5, 6)))
        with flop_counter() as counters:
            _ = a @ b
        assert counters.per_op.get("matmul") == 2 * 4 * 6 * 5

    def test_gather_records_byte_traffic(self):
        w = Tensor(np.ones((8, 4)), requires_grad=True)
        idx = np.array([0, 0, 3])
        with flop_counter() as counters:
            out = ops.gather_rows(w, idx)
        assert counters.bytes_streamed == out.nbytes
        # Two unique rows read plus the freshly written gathered copy.
        assert counters.bytes_unique == 2 * 4 * 8 + out.nbytes

    def test_backward_scatter_counted(self):
        w = Tensor(np.ones((8, 4)), requires_grad=True)
        idx = np.array([1, 2, 2])
        out = ops.gather_rows(w, idx)
        with flop_counter() as counters:
            out.sum().backward()
        assert "scatter_add" in counters.per_op


class TestPerOpSeconds:
    def test_add_accumulates_seconds(self):
        c = OpCounters()
        c.add("k", 10, seconds=0.25)
        c.add("k", 10, seconds=0.25)
        c.add("other", 1)
        assert abs(c.seconds - 0.5) < 1e-12
        assert set(c.per_op_seconds) == {"k"}
        assert abs(c.per_op_seconds["k"] - 0.5) < 1e-12

    def test_merge_sums_seconds(self):
        a, b = OpCounters(), OpCounters()
        a.add("k", 1, seconds=0.1)
        b.add("k", 1, seconds=0.2)
        b.add("j", 1, seconds=0.3)
        a.merge(b)
        assert abs(a.seconds - 0.6) < 1e-12
        assert abs(a.per_op_seconds["k"] - 0.3) < 1e-12
        assert abs(a.per_op_seconds["j"] - 0.3) < 1e-12

    def test_count_flops_forwards_seconds(self):
        with flop_counter() as counters:
            count_flops("timed", 5, seconds=0.125)
        assert abs(counters.per_op_seconds["timed"] - 0.125) < 1e-12

    def test_hot_kernels_record_wall_time(self):
        from repro.losses import margin_ranking_loss

        with flop_counter() as counters:
            margin_ranking_loss(
                Tensor(np.ones(64), requires_grad=True),
                Tensor(np.zeros(64), requires_grad=True), margin=0.5)
        assert counters.per_op_seconds.get("margin_loss[fused]", 0) > 0
