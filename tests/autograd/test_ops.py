"""Tests for the functional operators, each verified against finite differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, ops


def _rand(shape, seed=0, scale=1.0, shift=0.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale + shift, requires_grad=True)


class TestElementwiseForward:
    def test_exp(self):
        x = Tensor([0.0, 1.0])
        np.testing.assert_allclose(ops.exp(x).data, np.exp([0.0, 1.0]))

    def test_log(self):
        x = Tensor([1.0, np.e])
        np.testing.assert_allclose(ops.log(x).data, [0.0, 1.0])

    def test_sqrt(self):
        np.testing.assert_allclose(ops.sqrt(Tensor([4.0, 9.0])).data, [2.0, 3.0])

    def test_absolute(self):
        np.testing.assert_allclose(ops.absolute(Tensor([-2.0, 3.0])).data, [2.0, 3.0])

    def test_relu(self):
        np.testing.assert_allclose(ops.relu(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_clamp_min(self):
        np.testing.assert_allclose(ops.clamp_min(Tensor([-1.0, 2.0]), 0.5).data, [0.5, 2.0])

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        np.testing.assert_allclose(ops.maximum(a, b).data, [3.0, 5.0])
        np.testing.assert_allclose(ops.minimum(a, b).data, [1.0, 2.0])

    def test_sigmoid_range_and_stability(self):
        out = ops.sigmoid(Tensor([-1000.0, 0.0, 1000.0])).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], 0.5)
        assert out[0] < 1e-6 and out[2] > 1 - 1e-6

    def test_softplus_stability(self):
        out = ops.softplus(Tensor([-1000.0, 0.0, 1000.0])).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], np.log(2.0))
        np.testing.assert_allclose(out[2], 1000.0, rtol=1e-6)

    def test_logsigmoid_matches_log_of_sigmoid(self):
        x = Tensor([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(
            ops.logsigmoid(x).data, np.log(1 / (1 + np.exp(-x.data))), rtol=1e-10
        )

    def test_tanh(self):
        np.testing.assert_allclose(ops.tanh(Tensor([0.0])).data, [0.0])

    def test_sin_cos(self):
        x = Tensor([0.0, np.pi / 2])
        np.testing.assert_allclose(ops.sin(x).data, [0.0, 1.0], atol=1e-12)
        np.testing.assert_allclose(ops.cos(x).data, [1.0, 0.0], atol=1e-12)

    def test_frac(self):
        np.testing.assert_allclose(ops.frac(Tensor([1.25, -0.75, 2.0])).data,
                                   [0.25, 0.25, 0.0])


class TestElementwiseGradients:
    @pytest.mark.parametrize("fn", [
        ops.exp,
        lambda x: ops.log(x, eps=0.0),
        ops.sigmoid,
        ops.softplus,
        ops.tanh,
        ops.sin,
        ops.cos,
    ])
    def test_smooth_ops_gradcheck(self, fn):
        x = _rand((3, 4), seed=1, scale=0.5, shift=1.5)
        ok, err = gradcheck(fn, [x])
        assert ok, f"max error {err}"

    def test_sqrt_gradcheck(self):
        x = _rand((3, 3), seed=2, scale=0.2, shift=2.0)
        ok, err = gradcheck(lambda t: ops.sqrt(t), [x])
        assert ok, err

    def test_abs_gradient_sign(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        ops.absolute(x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])

    def test_relu_gradient_mask(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        ops.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_maximum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_frac_gradient_passthrough(self):
        x = Tensor([1.25, -0.75], requires_grad=True)
        ops.frac(x).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_dropout_train_and_eval(self):
        x = Tensor(np.ones((100,)), requires_grad=True)
        rng = np.random.default_rng(0)
        out = ops.dropout(x, 0.5, rng=rng, training=True)
        # Inverted dropout keeps the expectation roughly constant.
        assert 0.5 < out.data.mean() < 1.5
        identical = ops.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(identical.data, x.data)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor([1.0]), 1.0)


class TestGatherRows:
    def test_forward_values(self):
        w = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([2, 0, 2])
        np.testing.assert_allclose(ops.gather_rows(w, idx).data, w.data[idx])

    def test_backward_scatter_add(self):
        w = Tensor(np.zeros((4, 3)), requires_grad=True)
        idx = np.array([1, 1, 3])
        ops.gather_rows(w, idx).sum().backward()
        expected = np.zeros((4, 3))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(w.grad, expected)

    def test_gradcheck(self):
        w = _rand((5, 3), seed=3)
        idx = np.array([0, 2, 2, 4])
        ok, err = gradcheck(lambda t: ops.gather_rows(t, idx), [w])
        assert ok, err

    def test_index_out_of_range(self):
        w = Tensor(np.zeros((4, 3)))
        with pytest.raises(IndexError):
            ops.gather_rows(w, np.array([4]))

    def test_requires_1d_indices(self):
        w = Tensor(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            ops.gather_rows(w, np.array([[0, 1]]))


class TestBatchedProducts:
    def test_bmm_vec_forward(self):
        rng = np.random.default_rng(0)
        mats = rng.standard_normal((5, 3, 4))
        vecs = rng.standard_normal((5, 4))
        out = ops.bmm_vec(Tensor(mats), Tensor(vecs))
        np.testing.assert_allclose(out.data, np.einsum("bkd,bd->bk", mats, vecs))

    def test_bmm_vec_gradcheck(self):
        mats = _rand((3, 2, 4), seed=5)
        vecs = _rand((3, 4), seed=6)
        ok, err = gradcheck(lambda m, v: ops.bmm_vec(m, v), [mats, vecs])
        assert ok, err

    def test_bmm_vec_shape_validation(self):
        with pytest.raises(ValueError):
            ops.bmm_vec(Tensor(np.zeros((2, 3, 4))), Tensor(np.zeros((2, 5))))
        with pytest.raises(ValueError):
            ops.bmm_vec(Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 3))))

    def test_row_dot_forward(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.ones((2, 3))
        np.testing.assert_allclose(ops.row_dot(Tensor(a), Tensor(b)).data, [3.0, 12.0])

    def test_row_dot_gradcheck(self):
        a, b = _rand((4, 3), seed=7), _rand((4, 3), seed=8)
        ok, err = gradcheck(lambda x, y: ops.row_dot(x, y), [a, b])
        assert ok, err

    def test_row_dot_shape_validation(self):
        with pytest.raises(ValueError):
            ops.row_dot(Tensor(np.zeros((2, 3))), Tensor(np.zeros((3, 2))))


class TestConcatenationStack:
    def test_concatenate_forward_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((4, 3)), requires_grad=True)
        out = ops.concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((4, 3)))

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        out = ops.concatenate([a, b], axis=1)
        assert out.shape == (2, 4)
        (out * 2).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((2, 1), 2.0))

    def test_concatenate_empty_list(self):
        with pytest.raises(ValueError):
            ops.concatenate([])

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))


class TestNormsAndDistances:
    def test_l1_norm_forward(self):
        x = Tensor([[1.0, -2.0], [3.0, 4.0]])
        np.testing.assert_allclose(ops.lp_norm(x, p=1).data, [3.0, 7.0])

    def test_l2_norm_forward(self):
        x = Tensor([[3.0, 4.0]])
        np.testing.assert_allclose(ops.lp_norm(x, p=2).data, [5.0], rtol=1e-6)

    def test_lp_norm_invalid_p(self):
        with pytest.raises(ValueError):
            ops.lp_norm(Tensor([[1.0]]), p=3)

    def test_l2_norm_gradcheck(self):
        x = _rand((4, 5), seed=9, shift=0.5)
        ok, err = gradcheck(lambda t: ops.lp_norm(t, p=2), [x])
        assert ok, err

    def test_l1_norm_gradient(self):
        x = Tensor([[1.0, -2.0]], requires_grad=True)
        ops.lp_norm(x, p=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[1.0, -1.0]])

    def test_l2_norm_zero_row_is_finite(self):
        x = Tensor(np.zeros((1, 3)), requires_grad=True)
        ops.lp_norm(x, p=2).sum().backward()
        assert np.all(np.isfinite(x.grad))

    def test_squared_l2(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        out = ops.squared_l2(x)
        np.testing.assert_allclose(out.data, [5.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0, 4.0]])

    def test_torus_distance_values(self):
        # 0.25 -> 0.25, 0.75 -> 0.25, 1.9 -> 0.1
        x = Tensor([[0.25, 0.75, 1.9]])
        np.testing.assert_allclose(ops.torus_distance(x, p=1).data, [0.6], rtol=1e-10)
        np.testing.assert_allclose(
            ops.torus_distance(x, p=2).data, [0.25 ** 2 + 0.25 ** 2 + 0.1 ** 2], rtol=1e-10
        )

    def test_torus_distance_invalid_p(self):
        with pytest.raises(ValueError):
            ops.torus_distance(Tensor([[0.1]]), p=3)

    def test_torus_distance_gradcheck(self):
        # Keep values away from the fold points (0, 0.5) where the gradient kinks.
        rng = np.random.default_rng(10)
        vals = rng.uniform(0.05, 0.45, size=(3, 4))
        x = Tensor(vals, requires_grad=True)
        ok, err = gradcheck(lambda t: ops.torus_distance(t, p=2), [x])
        assert ok, err

    def test_torus_distance_periodicity(self):
        x = Tensor([[0.3, 0.8]])
        shifted = Tensor([[1.3, -0.2]])
        np.testing.assert_allclose(
            ops.torus_distance(x, p=2).data, ops.torus_distance(shifted, p=2).data
        )

    def test_normalize_rows_unit_norm(self):
        x = Tensor(np.random.default_rng(0).standard_normal((5, 4)), requires_grad=True)
        out = ops.normalize_rows(x)
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), np.ones(5), rtol=1e-6)

    def test_normalize_rows_gradcheck(self):
        x = _rand((3, 4), seed=11, shift=1.0)
        ok, err = gradcheck(lambda t: ops.normalize_rows(t), [x])
        assert ok, err
