"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, gradcheck, ops
from repro.autograd.tensor import _unbroadcast

finite_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


def arrays(shape_strategy, min_val=-10, max_val=10):
    return hnp.arrays(
        dtype=np.float64,
        shape=shape_strategy,
        elements=st.floats(min_value=min_val, max_value=max_val,
                           allow_nan=False, allow_infinity=False),
    )


small_shapes = hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5)


class TestGradientLinearity:
    @given(arrays(small_shapes))
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays(small_shapes), finite_floats)
    @settings(max_examples=30, deadline=None)
    def test_scaling_scales_gradient(self, data, alpha):
        x = Tensor(data, requires_grad=True)
        (x * alpha).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(data, alpha), atol=1e-12)

    @given(arrays(st.just((3, 4))), arrays(st.just((3, 4))))
    @settings(max_examples=30, deadline=None)
    def test_addition_gradient_independent_of_other_operand(self, a_data, b_data):
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones_like(a_data))
        np.testing.assert_allclose(b.grad, np.ones_like(b_data))

    @given(arrays(st.just((2, 3)), min_val=0.1, max_val=5.0))
    @settings(max_examples=20, deadline=None)
    def test_mul_by_self_matches_square_rule(self, data):
        x = Tensor(data, requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * data, rtol=1e-10)


class TestUnbroadcast:
    @given(arrays(st.just((4, 3))))
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_to_row(self, grad):
        reduced = _unbroadcast(grad, (3,))
        np.testing.assert_allclose(reduced, grad.sum(axis=0))

    @given(arrays(st.just((4, 3))))
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_to_column(self, grad):
        reduced = _unbroadcast(grad, (4, 1))
        np.testing.assert_allclose(reduced, grad.sum(axis=1, keepdims=True))

    @given(arrays(small_shapes))
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_identity(self, grad):
        np.testing.assert_allclose(_unbroadcast(grad, grad.shape), grad)

    @given(arrays(st.just((2, 3, 4))))
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_preserves_total_mass(self, grad):
        reduced = _unbroadcast(grad, (4,))
        np.testing.assert_allclose(reduced.sum(), grad.sum(), rtol=1e-10)


class TestGradcheckOnRandomExpressions:
    @given(arrays(st.just((3, 4)), min_val=0.2, max_val=3.0))
    @settings(max_examples=10, deadline=None)
    def test_composite_expression(self, data):
        x = Tensor(data, requires_grad=True)
        ok, err = gradcheck(lambda t: ops.sigmoid(t * 2.0) + ops.softplus(t), [x])
        assert ok, err

    @given(arrays(st.just((4, 3)), min_val=0.2, max_val=3.0))
    @settings(max_examples=10, deadline=None)
    def test_norm_of_affine(self, data):
        x = Tensor(data, requires_grad=True)
        ok, err = gradcheck(lambda t: ops.lp_norm(t * 1.5 + 0.3, p=2), [x])
        assert ok, err

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_matmul_gradcheck_random_shapes(self, m, k):
        rng = np.random.default_rng(m * 10 + k)
        a = Tensor(rng.standard_normal((m, k)), requires_grad=True)
        b = Tensor(rng.standard_normal((k, 3)), requires_grad=True)
        ok, err = gradcheck(lambda x, y: x @ y, [a, b])
        assert ok, err


class TestGatherScatterProperties:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=20, deadline=None)
    def test_gather_gradient_counts_row_usage(self, n_rows, n_lookups):
        rng = np.random.default_rng(n_rows * 100 + n_lookups)
        idx = rng.integers(0, n_rows, size=n_lookups)
        w = Tensor(rng.standard_normal((n_rows, 3)), requires_grad=True)
        ops.gather_rows(w, idx).sum().backward()
        counts = np.bincount(idx, minlength=n_rows).astype(float)
        np.testing.assert_allclose(w.grad, np.repeat(counts[:, None], 3, axis=1))

    @given(arrays(st.just((5, 3))))
    @settings(max_examples=20, deadline=None)
    def test_gather_forward_matches_numpy(self, data):
        idx = np.array([4, 0, 2, 2])
        w = Tensor(data, requires_grad=True)
        np.testing.assert_allclose(ops.gather_rows(w, idx).data, data[idx])
