"""Tests for the core Tensor / tape machinery."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, enable_grad, is_grad_enabled


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_ndarray_shares_data(self):
        arr = np.ones((2, 2))
        t = Tensor(arr)
        arr[0, 0] = 5.0
        assert t.data[0, 0] == 5.0

    def test_requires_grad_promotes_int_to_float(self):
        t = Tensor(np.array([1, 2, 3]), requires_grad=True)
        assert np.issubdtype(t.dtype, np.floating)

    def test_integer_tensor_without_grad_stays_integer(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.integer)

    def test_object_array_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array([object()]))

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)

    def test_randn_uses_rng(self):
        rng = np.random.default_rng(0)
        a = Tensor.randn((4, 4), rng=rng)
        rng2 = np.random.default_rng(0)
        b = Tensor.randn((4, 4), rng=rng2)
        np.testing.assert_allclose(a.data, b.data)

    def test_properties(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.ndim == 2
        assert t.size == 12
        assert t.nbytes == 12 * 8
        assert len(t) == 3

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()
        assert Tensor([3.5]).item() == 3.5

    def test_detach_cuts_tape(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b.is_leaf


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_sub_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_div_backward(self):
        a = Tensor([6.0, 8.0], requires_grad=True)
        b = Tensor([2.0, 4.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.25])
        np.testing.assert_allclose(b.grad, [-1.5, -0.5])

    def test_neg_backward(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_pow_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0, 27.0])

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor([2.0], requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_scalar_operand(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (2.0 * a + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        np.testing.assert_allclose((10.0 - a).data, [8.0, 6.0])
        np.testing.assert_allclose((8.0 / a).data, [4.0, 2.0])

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        ((a * 2) + (a * 3)).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_chain_rule_through_deep_graph(self):
        a = Tensor([0.5], requires_grad=True)
        x = a
        for _ in range(20):
            x = x * 1.1
        x.backward()
        np.testing.assert_allclose(a.grad, [1.1 ** 20], rtol=1e-10)


class TestBroadcasting:
    def test_broadcast_add_row_vector(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_mul_column(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((3, 1)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((3, 1), 4.0))

    def test_broadcast_scalar_tensor(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.array(2.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, 4.0)


class TestMatmul:
    def test_matmul_forward(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_matmul_backward(self):
        a = Tensor(np.random.default_rng(0).standard_normal((2, 3)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).standard_normal((3, 4)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 4)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 4)))

    def test_matvec_backward(self):
        a = Tensor(np.random.default_rng(0).standard_normal((3, 4)), requires_grad=True)
        v = Tensor(np.random.default_rng(1).standard_normal(4), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(v.grad, a.data.T @ np.ones(3))

    def test_vecmat_backward(self):
        v = Tensor(np.random.default_rng(0).standard_normal(3), requires_grad=True)
        a = Tensor(np.random.default_rng(1).standard_normal((3, 4)), requires_grad=True)
        (v @ a).sum().backward()
        np.testing.assert_allclose(v.grad, a.data @ np.ones(4))


class TestReductionsAndShapes:
    def test_sum_all(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 1.0 / 6.0))

    def test_mean_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.mean(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 0.5))

    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_grad(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.T.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_transpose_with_axes(self):
        a = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = a.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_getitem_slice(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_getitem_fancy_index_duplicates_accumulate(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        idx = np.array([0, 0, 1])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0, 0.0, 0.0, 0.0])


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_requires_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [2.0, 20.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_intermediate_grads_freed(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a * 2
        c = b.sum()
        c.backward()
        assert b.grad is None
        assert a.grad is not None

    def test_second_backward_accumulates_on_leaves(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_comparisons_return_plain_arrays(self):
        a = Tensor([1.0, 2.0])
        assert isinstance(a > 1.5, np.ndarray)
        assert (a >= 1.0).all()
        assert (a < 3.0).all()
        assert (a <= 2.0).all()


class TestGradMode:
    def test_no_grad_blocks_tape(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad
        assert b.is_leaf

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                b = a * 2
        assert b.requires_grad

    def test_tensor_created_under_no_grad_never_requires_grad(self):
        with no_grad():
            a = Tensor([1.0], requires_grad=True)
        assert not a.requires_grad
