"""Autograd sanitizer: NaN/Inf, dtype-widening, and shape guards on the tape."""

import numpy as np
import pytest

from repro.autograd import SanitizerError, Tensor, sanitize, sanitize_enabled
from repro.losses.margin import margin_ranking_loss
from repro.sparse import kernels
from repro.training.config import TrainingConfig


@pytest.fixture(autouse=True)
def _sanitizer_off_after():
    yield
    sanitize(False)


class TestToggle:
    def test_off_by_default(self):
        assert not sanitize_enabled()

    def test_sticky_enable(self):
        sanitize(True)
        assert sanitize_enabled()
        sanitize(False)
        assert not sanitize_enabled()

    def test_context_manager_restores(self):
        with sanitize(True):
            assert sanitize_enabled()
        assert not sanitize_enabled()

    def test_nested_scopes(self):
        sanitize(True)
        with sanitize(False):
            assert not sanitize_enabled()
        assert sanitize_enabled()


class TestForwardChecks:
    def test_nan_output_names_the_op(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True, name="a")
        with sanitize(True):
            with pytest.raises(SanitizerError, match=r"op 'mul'.*\ba\b"):
                a * np.array([np.nan, 1.0])

    def test_inf_output_flagged(self):
        a = Tensor(np.array([1e308]), requires_grad=True)
        with sanitize(True):
            with pytest.raises(SanitizerError, match="non-finite"):
                a + np.array([1e308])

    def test_clean_ops_pass(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with sanitize(True):
            out = (a * 3.0 + 1.0).sum()
            out.backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0])

    def test_disabled_lets_nan_through(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a * np.array([np.nan])
        assert np.isnan(out.data).all()

    def test_forward_dtype_widening_flagged(self):
        parent = Tensor(np.ones(3, dtype=np.float32), requires_grad=True,
                        name="w32")
        with sanitize(True):
            with pytest.raises(SanitizerError, match="widening.*float32.*float64"):
                Tensor._make(np.ones(3, dtype=np.float64), (parent,),
                             lambda g: None, "bad_cast")

    def test_same_width_passes(self):
        parent = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
        with sanitize(True):
            out = Tensor._make(np.ones(3), (parent,), lambda g: None, "ok")
        assert out.data.dtype == np.float64


class TestKernelInjection:
    def test_nan_injected_into_fused_kernel_names_it(self, monkeypatch):
        # The acceptance scenario: a NaN produced *inside* a fused kernel
        # must surface naming the tape op, not as a poisoned metric later.
        def poisoned(pos, neg, margin):
            return float("nan"), np.zeros(pos.shape[0], dtype=bool)

        monkeypatch.setattr(kernels, "margin_loss_sum", poisoned)
        pos = Tensor(np.array([0.1, 0.2]), requires_grad=True, name="pos")
        neg = Tensor(np.array([0.3, 0.4]), requires_grad=True, name="neg")
        with sanitize(True):
            with pytest.raises(SanitizerError) as excinfo:
                margin_ranking_loss(pos, neg, margin=0.5, fused=True)
        message = str(excinfo.value)
        assert "margin_loss[fused]" in message
        assert "pos" in message and "neg" in message

    def test_clean_fused_loss_passes_and_backprops(self):
        pos = Tensor(np.array([0.1, 0.9]), requires_grad=True)
        neg = Tensor(np.array([0.3, 0.4]), requires_grad=True)
        with sanitize(True):
            loss = margin_ranking_loss(pos, neg, margin=0.5, fused=True)
            loss.backward()
        assert pos.grad is not None and neg.grad is not None


class TestBackwardChecks:
    def test_upstream_shape_mismatch_flagged(self):
        parent = Tensor(np.ones((2, 3)), requires_grad=True)
        with sanitize(True):
            out = Tensor._make(np.ones((2, 3)), (parent,),
                               lambda g: None, "noop")
        with pytest.raises(SanitizerError, match="does not match output shape"):
            out._backward(np.ones((3, 2)))

    def test_nan_upstream_gradient_flagged(self):
        parent = Tensor(np.ones(2), requires_grad=True)
        with sanitize(True):
            out = Tensor._make(np.ones(2), (parent,), lambda g: None, "noop")
        with pytest.raises(SanitizerError, match="upstream gradient"):
            out._backward(np.array([np.nan, 1.0]))

    def test_parent_grad_shape_mismatch_flagged(self):
        parent = Tensor(np.ones((2, 3)), requires_grad=True, name="p")

        def bad_backward(grad):
            parent._grad = np.ones(5)

        with sanitize(True):
            out = Tensor._make(np.ones(4), (parent,), bad_backward, "bad_bwd")
        with pytest.raises(SanitizerError,
                           match="does not match parameter shape"):
            out._backward(np.ones(4))

    def test_parent_grad_dtype_widening_flagged(self):
        parent = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)

        def widening_backward(grad):
            parent._grad = np.ones(2, dtype=np.float64)

        with sanitize(True):
            out = Tensor._make(np.ones(2, dtype=np.float32), (parent,),
                               widening_backward, "widen_bwd")
        with pytest.raises(SanitizerError, match="widens the float32"):
            out._backward(np.ones(2, dtype=np.float32))

    def test_nan_parent_gradient_flagged(self):
        parent = Tensor(np.ones(2), requires_grad=True)

        def nan_backward(grad):
            parent._grad = np.array([np.nan, 0.0])

        with sanitize(True):
            out = Tensor._make(np.ones(2), (parent,), nan_backward, "nan_bwd")
        with pytest.raises(SanitizerError, match="accumulated gradient"):
            out._backward(np.ones(2))


class TestTrainingWiring:
    def test_config_field_round_trips(self):
        config = TrainingConfig(epochs=1, sanitize=True)
        assert TrainingConfig.from_dict(config.to_dict()).sanitize is True

    def test_trainer_arms_sanitizer(self):
        from repro.data.synthetic import generate_synthetic_kg
        from repro.models.transe import SpTransE
        from repro.training.trainer import Trainer

        kg = generate_synthetic_kg(n_entities=20, n_relations=3, n_triples=40)
        model = SpTransE(kg.n_entities, kg.n_relations, embedding_dim=8)
        Trainer(model, kg, config=TrainingConfig(
            epochs=1, batch_size=16, sanitize=True))
        assert sanitize_enabled()

    def test_sanitized_training_step_runs_clean(self):
        from repro.data.synthetic import generate_synthetic_kg
        from repro.models.transe import SpTransE
        from repro.training.trainer import Trainer

        kg = generate_synthetic_kg(n_entities=20, n_relations=3, n_triples=40)
        model = SpTransE(kg.n_entities, kg.n_relations, embedding_dim=8)
        trainer = Trainer(model, kg, config=TrainingConfig(
            epochs=1, batch_size=16, sanitize=True))
        result = trainer.train()
        assert np.isfinite(result.final_loss)


class TestCliWiring:
    def test_train_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["train", "--epochs", "1", "--sanitize"])
        assert args.sanitize is True

    def test_run_override_sets_spec(self):
        import argparse

        from repro.cli import _apply_run_overrides
        from repro.experiment import DataSpec, EvalSpec, ExperimentSpec
        from repro.registry import ModelSpec

        spec = ExperimentSpec(
            name="t",
            data=DataSpec(dataset="FB15K", scale=0.001),
            model=ModelSpec(model="transe", formulation="sparse",
                            n_entities=10, n_relations=2, embedding_dim=4),
            training=TrainingConfig(epochs=1),
            eval=EvalSpec(protocols=()),
        )
        args = argparse.Namespace(storage=None, storage_path=None,
                                  workers=None, partitions=None,
                                  backend=None, sanitize=True)
        assert _apply_run_overrides(spec, args).training.sanitize is True
