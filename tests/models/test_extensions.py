"""Tests for the extension models (TransM, TransC, TransA) built on the hrt SpMM."""

import numpy as np
import pytest

from repro.models import SPARSE_MODELS, SpTransA, SpTransC, SpTransE, SpTransM
from repro.optim import SGD

DIM = 12

EXTENSIONS = [SpTransM, SpTransC, SpTransA]


def make(cls, kg):
    return cls(kg.n_entities, kg.n_relations, DIM, rng=0)


class TestCommon:
    @pytest.mark.parametrize("cls", EXTENSIONS)
    def test_scores_shape_and_nonnegative(self, cls, small_kg, random_triples):
        model = make(cls, small_kg)
        out = model.scores(random_triples)
        assert out.shape == (len(random_triples),)
        assert np.all(out.data >= -1e-9)

    @pytest.mark.parametrize("cls", EXTENSIONS)
    def test_training_step_reduces_loss(self, cls, small_kg, small_batch):
        model = make(cls, small_kg)
        optimizer = SGD(model.parameters(), lr=0.05)
        before = model.loss(small_batch)
        value = before.item()
        before.backward()
        optimizer.step()
        from repro.autograd import no_grad

        with no_grad():
            after = model.loss(small_batch).item()
        assert after <= value + 1e-9

    @pytest.mark.parametrize("cls", EXTENSIONS)
    def test_registered_in_sparse_models(self, cls, small_kg):
        assert cls in SPARSE_MODELS.values()

    @pytest.mark.parametrize("cls", EXTENSIONS)
    def test_trainable_end_to_end(self, cls, small_kg):
        from repro.training import Trainer, TrainingConfig

        model = make(cls, small_kg)
        result = Trainer(model, small_kg,
                         TrainingConfig(epochs=3, batch_size=128, learning_rate=0.02,
                                        seed=0)).train()
        assert result.final_loss < result.losses[0] + 1e-9


class TestSpTransM:
    def test_initial_weights_reduce_to_transe(self, small_kg, random_triples):
        transm = make(SpTransM, small_kg)
        transe = make(SpTransE, small_kg)
        transe.embeddings.weight.data[...] = transm.embeddings.weight.data
        np.testing.assert_allclose(
            transm.score_triples(random_triples),
            transe.score_triples(random_triples),
            rtol=1e-6,
        )

    def test_relation_weights_scale_scores(self, small_kg):
        model = make(SpTransM, small_kg)
        triples = small_kg.split.train[:8]
        base = model.score_triples(triples)
        # Raise the raw weight of every relation: softplus is monotone, so all
        # scores must increase proportionally per relation.
        model.relation_weights.data += 2.0
        boosted = model.score_triples(triples)
        assert np.all(boosted > base)

    def test_relation_weights_learnable(self, small_kg, small_batch):
        model = make(SpTransM, small_kg)
        model.loss(small_batch).backward()
        assert model.relation_weights.grad is not None
        assert np.any(model.relation_weights.grad != 0)

    def test_weight_values_positive(self, small_kg):
        model = make(SpTransM, small_kg)
        model.relation_weights.data[...] = -10.0
        assert np.all(model.relation_weight_values() > 0)


class TestSpTransC:
    def test_score_is_squared_transe_distance(self, small_kg, random_triples):
        transc = make(SpTransC, small_kg)
        transe = make(SpTransE, small_kg)
        transe.embeddings.weight.data[...] = transc.embeddings.weight.data
        np.testing.assert_allclose(
            transc.score_triples(random_triples),
            transe.score_triples(random_triples) ** 2,
            rtol=1e-6,
        )

    def test_score_all_tails_uses_squared_metric(self, small_kg):
        model = make(SpTransC, small_kg)
        scores = model.score_all_tails(np.array([0]), np.array([1]))
        triples = np.column_stack([
            np.zeros(small_kg.n_entities, dtype=int),
            np.ones(small_kg.n_entities, dtype=int),
            np.arange(small_kg.n_entities),
        ])
        np.testing.assert_allclose(scores[0], model.score_triples(triples), rtol=1e-8)


class TestSpTransA:
    def test_identity_metric_reduces_to_squared_l2(self, small_kg, random_triples):
        transa = make(SpTransA, small_kg)
        transe = make(SpTransE, small_kg)
        transe.embeddings.weight.data[...] = transa.embeddings.weight.data
        np.testing.assert_allclose(
            transa.score_triples(random_triples),
            transe.score_triples(random_triples) ** 2,
            rtol=1e-6,
        )

    def test_metric_matrices_are_symmetric_psd(self, small_kg, small_batch):
        model = make(SpTransA, small_kg)
        # Perturb the factors, then check W_r = M_r M_r^T stays symmetric PSD.
        model.metric_factors.data += 0.1 * np.random.default_rng(0).standard_normal(
            model.metric_factors.shape
        )
        metrics = model.metric_matrices()
        np.testing.assert_allclose(metrics, np.swapaxes(metrics, 1, 2), atol=1e-12)
        eigenvalues = np.linalg.eigvalsh(metrics)
        assert eigenvalues.min() >= -1e-9

    def test_metric_gradients_flow(self, small_kg, small_batch):
        model = make(SpTransA, small_kg)
        model.loss(small_batch).backward()
        assert model.metric_factors.grad is not None
        assert np.any(model.metric_factors.grad != 0)
