"""Tests for the SpTransX model family."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.data import TripletBatch, UniformNegativeSampler
from repro.losses import MarginRankingLoss
from repro.models import (
    SPARSE_MODELS,
    SpComplEx,
    SpDistMult,
    SpRotatE,
    SpTorusE,
    SpTransE,
    SpTransH,
    SpTransR,
)

DIM = 16

ALL_SPARSE = [SpTransE, SpTransR, SpTransH, SpTorusE, SpDistMult, SpComplEx, SpRotatE]
TRANSLATIONAL = [SpTransE, SpTransR, SpTransH, SpTorusE]


def make(cls, kg, **kwargs):
    return cls(kg.n_entities, kg.n_relations, DIM, rng=0, **kwargs)


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", ALL_SPARSE)
    def test_scores_shape_and_finiteness(self, cls, small_kg, random_triples):
        model = make(cls, small_kg)
        out = model.scores(random_triples)
        assert out.shape == (len(random_triples),)
        assert np.all(np.isfinite(out.data))

    @pytest.mark.parametrize("cls", ALL_SPARSE)
    def test_loss_is_scalar_and_differentiable(self, cls, small_kg, small_batch):
        model = make(cls, small_kg)
        loss = model.loss(small_batch)
        assert loss.size == 1
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "no gradients reached any parameter"
        assert any(np.any(g != 0) for g in grads)

    @pytest.mark.parametrize("cls", ALL_SPARSE)
    def test_one_sgd_step_reduces_batch_loss(self, cls, small_kg, small_batch):
        from repro.optim import SGD

        model = make(cls, small_kg)
        optimizer = SGD(model.parameters(), lr=0.05)
        before = model.loss(small_batch)
        before_value = before.item()
        before.backward()
        optimizer.step()
        with no_grad():
            after_value = model.loss(small_batch).item()
        assert after_value <= before_value + 1e-9

    @pytest.mark.parametrize("cls", ALL_SPARSE)
    def test_score_triples_matches_scores(self, cls, small_kg, random_triples):
        model = make(cls, small_kg)
        np.testing.assert_allclose(
            model.score_triples(random_triples),
            model.scores(random_triples).data,
            rtol=1e-10,
        )

    @pytest.mark.parametrize("cls", ALL_SPARSE)
    def test_config_is_serializable(self, cls, small_kg):
        cfg = make(cls, small_kg).config()
        assert cfg["n_entities"] == small_kg.n_entities
        assert cfg["model"] == cls.__name__
        assert cfg["n_parameters"] > 0

    @pytest.mark.parametrize("cls", ALL_SPARSE)
    def test_rejects_out_of_range_triples(self, cls, small_kg):
        model = make(cls, small_kg)
        bad = np.array([[small_kg.n_entities, 0, 0]])
        with pytest.raises((ValueError, IndexError)):
            model.scores(bad)

    @pytest.mark.parametrize("cls", TRANSLATIONAL)
    def test_embedding_matrices_have_expected_shapes(self, cls, small_kg):
        model = make(cls, small_kg)
        assert model.entity_embedding_matrix().shape == (small_kg.n_entities, DIM)
        assert model.relation_embedding_matrix().shape[0] == small_kg.n_relations

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SpTransE(0, 3, 8)
        with pytest.raises(ValueError):
            SpTransE(3, 0, 8)
        with pytest.raises(ValueError):
            SpTransE(3, 3, 0)

    def test_registry_contains_all_models(self):
        assert set(SPARSE_MODELS) == {
            "transe", "transr", "transh", "toruse",
            "transm", "transc", "transa",
            "distmult", "complex", "rotate",
        }


class TestSpTransE:
    def test_residual_matches_manual_expression(self, small_kg, random_triples):
        model = make(SpTransE, small_kg)
        res = model.residuals(random_triples).data
        ent = model.embeddings.entity_embeddings()
        rel = model.embeddings.relation_embeddings()
        expected = (ent[random_triples[:, 0]] + rel[random_triples[:, 1]]
                    - ent[random_triples[:, 2]])
        np.testing.assert_allclose(res, expected, rtol=1e-10)

    def test_perfect_triple_scores_zero(self, small_kg):
        model = make(SpTransE, small_kg)
        ent = model.embeddings.weight.data
        # Force h + r = t for triple (0, 0, 1).
        ent[1] = ent[0] + ent[small_kg.n_entities + 0]
        score = model.score_triples(np.array([[0, 0, 1]]))
        assert score[0] < 1e-5

    def test_score_all_tails_matches_triple_scoring(self, small_kg):
        model = make(SpTransE, small_kg)
        heads = np.array([0, 3])
        rels = np.array([1, 2])
        full = model.score_all_tails(heads, rels)
        assert full.shape == (2, small_kg.n_entities)
        for i in range(2):
            triples = np.column_stack([
                np.full(small_kg.n_entities, heads[i]),
                np.full(small_kg.n_entities, rels[i]),
                np.arange(small_kg.n_entities),
            ])
            np.testing.assert_allclose(full[i], model.score_triples(triples), rtol=1e-8)

    def test_score_all_heads_matches_triple_scoring(self, small_kg):
        model = make(SpTransE, small_kg)
        rels = np.array([0])
        tails = np.array([5])
        full = model.score_all_heads(rels, tails)
        triples = np.column_stack([
            np.arange(small_kg.n_entities),
            np.zeros(small_kg.n_entities, dtype=int),
            np.full(small_kg.n_entities, 5),
        ])
        np.testing.assert_allclose(full[0], model.score_triples(triples), rtol=1e-8)

    def test_normalize_parameters_constrains_entities(self, small_kg):
        model = make(SpTransE, small_kg)
        model.embeddings.weight.data *= 10
        model.normalize_parameters()
        norms = np.linalg.norm(model.embeddings.entity_embeddings(), axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_l1_dissimilarity_option(self, small_kg, random_triples):
        model = SpTransE(small_kg.n_entities, small_kg.n_relations, DIM,
                         dissimilarity="L1", rng=0)
        scores = model.score_triples(random_triples)
        assert np.all(scores >= 0)

    @pytest.mark.parametrize("backend", ["scipy", "numpy", "fused"])
    def test_backends_agree(self, backend, small_kg, random_triples):
        reference = SpTransE(small_kg.n_entities, small_kg.n_relations, DIM,
                             backend="scipy", rng=0)
        other = SpTransE(small_kg.n_entities, small_kg.n_relations, DIM,
                         backend=backend, rng=0)
        np.testing.assert_allclose(
            reference.score_triples(random_triples),
            other.score_triples(random_triples),
            rtol=1e-10,
        )

    def test_predict_tails_prefers_constructed_answer(self, small_kg):
        model = make(SpTransE, small_kg)
        ent = model.embeddings.weight.data
        ent[7] = ent[2] + ent[small_kg.n_entities + 1]
        top = model.predict_tails(head=2, relation=1, k=3)
        assert 7 in top


class TestSpTorusE:
    def test_requires_torus_dissimilarity(self, small_kg):
        with pytest.raises(ValueError):
            SpTorusE(small_kg.n_entities, small_kg.n_relations, DIM, dissimilarity="L2")

    def test_scores_are_periodic_in_embeddings(self, small_kg, random_triples):
        model = make(SpTorusE, small_kg)
        before = model.score_triples(random_triples)
        model.embeddings.weight.data += 3.0   # integer shift should not matter
        after = model.score_triples(random_triples)
        np.testing.assert_allclose(before, after, rtol=1e-8)

    def test_normalize_wraps_to_unit_interval(self, small_kg):
        model = make(SpTorusE, small_kg)
        model.embeddings.weight.data += 5.4
        model.normalize_parameters()
        assert model.embeddings.weight.data.min() >= 0.0
        assert model.embeddings.weight.data.max() < 1.0

    def test_scores_bounded_by_dimension(self, small_kg, random_triples):
        # Each component contributes at most 0.25 to the squared torus distance.
        model = make(SpTorusE, small_kg)
        scores = model.score_triples(random_triples)
        assert np.all(scores <= 0.25 * DIM + 1e-9)


class TestSpTransR:
    def test_identity_projection_reduces_to_ht_plus_r(self, small_kg, random_triples):
        model = make(SpTransR, small_kg)
        ent = model.entity_embeddings.data
        rel = model.relation_embeddings.weight.data
        expected = np.linalg.norm(
            ent[random_triples[:, 0]] - ent[random_triples[:, 2]]
            + rel[random_triples[:, 1]], axis=1
        )
        np.testing.assert_allclose(model.score_triples(random_triples), expected, rtol=1e-6)

    def test_separate_relation_dimension(self, small_kg, random_triples):
        model = SpTransR(small_kg.n_entities, small_kg.n_relations, DIM,
                         relation_dim=8, rng=0)
        assert model.relation_embeddings.weight.shape == (small_kg.n_relations, 8)
        assert model.projections.shape == (small_kg.n_relations, 8, DIM)
        assert model.scores(random_triples).shape == (len(random_triples),)

    def test_relation_dim_validation(self, small_kg):
        with pytest.raises(ValueError):
            SpTransR(small_kg.n_entities, small_kg.n_relations, DIM, relation_dim=0)

    def test_projection_gradients_flow(self, small_kg, small_batch):
        model = make(SpTransR, small_kg)
        model.loss(small_batch).backward()
        assert model.projections.grad is not None
        assert np.any(model.projections.grad != 0)

    def test_normalize_parameters(self, small_kg):
        model = make(SpTransR, small_kg)
        model.entity_embeddings.data *= 10
        model.relation_embeddings.weight.data *= 10
        model.normalize_parameters()
        assert np.all(np.linalg.norm(model.entity_embeddings.data, axis=1) <= 1 + 1e-9)
        assert np.all(np.linalg.norm(model.relation_embeddings.weight.data, axis=1) <= 1 + 1e-9)


class TestSpTransH:
    def test_projection_removes_normal_component(self, small_kg, random_triples):
        model = make(SpTransH, small_kg)
        residual = model.residuals(random_triples).data
        # Manual recomputation of the paper's rearranged expression.
        ent = model.entity_embeddings.data
        w = model.normal_vectors()[random_triples[:, 1]]
        d = model.translations.weight.data[random_triples[:, 1]]
        ht = ent[random_triples[:, 0]] - ent[random_triples[:, 2]]
        expected = ht + d - (np.sum(w * ht, axis=1, keepdims=True)) * w
        np.testing.assert_allclose(residual, expected, rtol=1e-8)

    def test_residual_orthogonal_to_normal_when_translation_on_hyperplane(self, small_kg):
        model = make(SpTransH, small_kg)
        # Force translations onto their hyperplanes: d_r <- d_r - (w·d_r) w.
        w = model.normal_vectors()
        d = model.translations.weight.data
        model.translations.weight.data[...] = d - (np.sum(w * d, axis=1, keepdims=True)) * w
        triples = small_kg.split.train[:16]
        residual = model.residuals(triples).data
        w_batch = model.normal_vectors()[triples[:, 1]]
        dots = np.abs(np.sum(residual * w_batch, axis=1))
        assert np.all(dots < 1e-8)

    def test_normal_vectors_unit_norm(self, small_kg):
        model = make(SpTransH, small_kg)
        norms = np.linalg.norm(model.normal_vectors(), axis=1)
        np.testing.assert_allclose(norms, np.ones_like(norms), rtol=1e-10)

    def test_normalize_parameters(self, small_kg):
        model = make(SpTransH, small_kg)
        model.entity_embeddings.data *= 10
        model.normals.weight.data *= 3
        model.normalize_parameters()
        assert np.all(np.linalg.norm(model.entity_embeddings.data, axis=1) <= 1 + 1e-9)
        np.testing.assert_allclose(
            np.linalg.norm(model.normals.weight.data, axis=1), 1.0, rtol=1e-9
        )


class TestSemiringModels:
    def test_distmult_score_matches_manual(self, small_kg, random_triples):
        model = make(SpDistMult, small_kg)
        ent = model.embeddings.entity_embeddings()
        rel = model.embeddings.relation_embeddings()
        expected = -(ent[random_triples[:, 0]] * rel[random_triples[:, 1]]
                     * ent[random_triples[:, 2]]).sum(axis=1)
        np.testing.assert_allclose(model.score_triples(random_triples), expected, rtol=1e-10)

    def test_distmult_symmetric_relation_scores(self, small_kg):
        model = make(SpDistMult, small_kg)
        forward = model.score_triples(np.array([[0, 1, 2]]))
        backward = model.score_triples(np.array([[2, 1, 0]]))
        np.testing.assert_allclose(forward, backward, rtol=1e-10)

    def test_complex_not_symmetric_in_general(self, small_kg):
        model = make(SpComplEx, small_kg)
        forward = model.score_triples(np.array([[0, 1, 2]]))
        backward = model.score_triples(np.array([[2, 1, 0]]))
        assert not np.allclose(forward, backward)

    def test_rotate_zero_phase_identity_rotation(self, small_kg):
        model = make(SpRotatE, small_kg)
        model.relation_phase.data[...] = 0.0
        # With r = 1 + 0i the residual is h − t, so score(h, r, h) = 0... but only
        # when the imaginary part also matches; use identical head and tail.
        score = model.score_triples(np.array([[4, 0, 4]]))
        # Only the sqrt-eps guard keeps this away from exactly zero.
        assert score[0] < 1e-4

    def test_rotate_gradients_reach_phase(self, small_kg, small_batch):
        model = make(SpRotatE, small_kg)
        model.loss(small_batch).backward()
        assert model.relation_phase.grad is not None
        assert np.any(model.relation_phase.grad != 0)

    def test_plausibility_and_scores_are_negatives(self, small_kg, random_triples):
        model = make(SpDistMult, small_kg)
        np.testing.assert_allclose(
            model.scores(random_triples).data,
            -model.plausibility(random_triples).data,
        )
