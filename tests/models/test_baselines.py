"""Tests for the dense gather/scatter baselines."""

import numpy as np
import pytest

from repro.baselines import (
    DENSE_MODELS,
    DenseComplEx,
    DenseDistMult,
    DenseTorusE,
    DenseTransD,
    DenseTransE,
    DenseTransH,
    DenseTransR,
)

DIM = 12

ALL_DENSE = [DenseTransE, DenseTransR, DenseTransH, DenseTorusE, DenseTransD,
             DenseDistMult, DenseComplEx]


def make(cls, kg, **kwargs):
    return cls(kg.n_entities, kg.n_relations, DIM, rng=0, **kwargs)


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", ALL_DENSE)
    def test_scores_shape(self, cls, small_kg, random_triples):
        model = make(cls, small_kg)
        out = model.scores(random_triples)
        assert out.shape == (len(random_triples),)
        assert np.all(np.isfinite(out.data))

    @pytest.mark.parametrize("cls", ALL_DENSE)
    def test_gradients_reach_every_parameter_touched_by_the_batch(self, cls, small_kg,
                                                                  small_batch):
        model = make(cls, small_kg)
        model.loss(small_batch).backward()
        named = dict(model.named_parameters())
        assert any(p.grad is not None and np.any(p.grad != 0) for p in named.values())

    @pytest.mark.parametrize("cls", ALL_DENSE)
    def test_config_formulation_is_dense(self, cls, small_kg):
        cfg = make(cls, small_kg).config()
        assert "dense" in cfg["formulation"]

    def test_registry(self):
        assert set(DENSE_MODELS) == {
            "transe", "transr", "transh", "toruse", "transd", "distmult", "complex"
        }


class TestDenseTransE:
    def test_residual_is_three_gathers(self, small_kg, random_triples):
        model = make(DenseTransE, small_kg)
        res = model.residuals(random_triples).data
        ent = model.entity_embeddings.weight.data
        rel = model.relation_embeddings.weight.data
        expected = (ent[random_triples[:, 0]] + rel[random_triples[:, 1]]
                    - ent[random_triples[:, 2]])
        np.testing.assert_allclose(res, expected)

    def test_score_all_tails_and_heads(self, small_kg):
        model = make(DenseTransE, small_kg)
        tails = model.score_all_tails(np.array([1]), np.array([0]))
        heads = model.score_all_heads(np.array([0]), np.array([1]))
        assert tails.shape == heads.shape == (1, small_kg.n_entities)

    def test_normalize_parameters(self, small_kg):
        model = make(DenseTransE, small_kg)
        model.entity_embeddings.weight.data *= 10
        model.normalize_parameters()
        assert np.all(np.linalg.norm(model.entity_embeddings.weight.data, axis=1) <= 1 + 1e-9)


class TestDenseTorusE:
    def test_requires_torus_dissimilarity(self, small_kg):
        with pytest.raises(ValueError):
            DenseTorusE(small_kg.n_entities, small_kg.n_relations, DIM, dissimilarity="L2")

    def test_normalize_wraps(self, small_kg):
        model = make(DenseTorusE, small_kg)
        model.entity_embeddings.weight.data += 2.7
        model.normalize_parameters()
        assert model.entity_embeddings.weight.data.max() < 1.0


class TestDenseTransD:
    def test_zero_projection_vectors_reduce_to_transe(self, small_kg, random_triples):
        model = make(DenseTransD, small_kg)
        model.entity_projections.weight.data[...] = 0.0
        model.relation_projections.weight.data[...] = 0.0
        ent = model.entity_embeddings.weight.data
        rel = model.relation_embeddings.weight.data
        expected = np.sqrt(((ent[random_triples[:, 0]] + rel[random_triples[:, 1]]
                             - ent[random_triples[:, 2]]) ** 2).sum(axis=1) + 1e-12)
        np.testing.assert_allclose(model.score_triples(random_triples), expected, rtol=1e-6)

    def test_four_parameter_tables(self, small_kg):
        model = make(DenseTransD, small_kg)
        assert len(list(model.parameters())) == 4


class TestDenseTransR:
    def test_relation_dim_and_projection_shapes(self, small_kg):
        model = DenseTransR(small_kg.n_entities, small_kg.n_relations, DIM,
                            relation_dim=6, rng=0)
        assert model.projections.shape == (small_kg.n_relations, 6, DIM)
        assert model.projection_matrices().shape == (small_kg.n_relations, 6, DIM)

    def test_relation_dim_validation(self, small_kg):
        with pytest.raises(ValueError):
            DenseTransR(small_kg.n_entities, small_kg.n_relations, DIM, relation_dim=-1)


class TestDenseTransH:
    def test_normal_vectors_unit_norm(self, small_kg):
        model = make(DenseTransH, small_kg)
        np.testing.assert_allclose(
            np.linalg.norm(model.normal_vectors(), axis=1), 1.0, rtol=1e-10
        )

    def test_projection_is_idempotent(self, small_kg):
        """Projecting an already-projected entity changes nothing: the residual of
        (h, r, h) with d_r = 0 is exactly zero."""
        model = make(DenseTransH, small_kg)
        model.translations.weight.data[...] = 0.0
        score = model.score_triples(np.array([[3, 1, 3]]))
        assert score[0] < 1e-5


class TestDenseBilinear:
    def test_distmult_symmetry(self, small_kg):
        model = make(DenseDistMult, small_kg)
        np.testing.assert_allclose(
            model.score_triples(np.array([[0, 1, 2]])),
            model.score_triples(np.array([[2, 1, 0]])),
        )

    def test_complex_conjugation_antisymmetry_structure(self, small_kg):
        """Swapping head and tail conjugates the relation product, so scores differ
        unless the relation is real — with a zeroed imaginary relation part the
        score becomes symmetric."""
        model = make(DenseComplEx, small_kg)
        model.relation_imag.weight.data[...] = 0.0
        np.testing.assert_allclose(
            model.score_triples(np.array([[0, 1, 2]])),
            model.score_triples(np.array([[2, 1, 0]])),
            rtol=1e-10,
        )
