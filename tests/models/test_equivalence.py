"""Sparse-vs-dense equivalence tests.

The paper's central correctness claim (Section 6.2.5): the sparse formulation
"does not change the computational steps and thus does not affect the model
accuracy".  These tests verify the strongest form of that claim on our
implementations — given identical parameters, the sparse and dense models
produce identical scores, identical losses, and identical parameter gradients.
"""

import numpy as np
import pytest

from repro.baselines import (
    DenseComplEx,
    DenseDistMult,
    DenseTorusE,
    DenseTransE,
    DenseTransH,
    DenseTransR,
)
from repro.data import TripletBatch, UniformNegativeSampler
from repro.models import (
    SpComplEx,
    SpDistMult,
    SpTorusE,
    SpTransE,
    SpTransH,
    SpTransR,
)

DIM = 12


def _sync_transe_like(sparse, dense):
    """Copy the dense model's tables into the sparse stacked matrix."""
    sparse.embeddings.load_pretrained(
        entity_matrix=dense.entity_embeddings.weight.data,
        relation_matrix=dense.relation_embeddings.weight.data,
    )


def _sync_transr(sparse, dense):
    sparse.entity_embeddings.data[...] = dense.entity_embeddings.weight.data
    sparse.relation_embeddings.weight.data[...] = dense.relation_embeddings.weight.data
    sparse.projections.data[...] = dense.projections.data


def _sync_transh(sparse, dense):
    sparse.entity_embeddings.data[...] = dense.entity_embeddings.weight.data
    sparse.translations.weight.data[...] = dense.translations.weight.data
    sparse.normals.weight.data[...] = dense.normals.weight.data


def _sync_distmult(sparse, dense):
    sparse.embeddings.load_pretrained(
        entity_matrix=dense.entity_embeddings.weight.data,
        relation_matrix=dense.relation_embeddings.weight.data,
    )


def _sync_complex(sparse, dense):
    sparse.real.load_pretrained(dense.entity_real.weight.data,
                                dense.relation_real.weight.data)
    sparse.imag.load_pretrained(dense.entity_imag.weight.data,
                                dense.relation_imag.weight.data)


PAIRS = [
    (SpTransE, DenseTransE, _sync_transe_like, {}),
    (SpTorusE, DenseTorusE, _sync_transe_like, {}),
    (SpTransR, DenseTransR, _sync_transr, {"relation_dim": 8}),
    (SpTransH, DenseTransH, _sync_transh, {}),
    (SpDistMult, DenseDistMult, _sync_distmult, {}),
    (SpComplEx, DenseComplEx, _sync_complex, {}),
]


def build_pair(sparse_cls, dense_cls, sync, kwargs, kg):
    dense = dense_cls(kg.n_entities, kg.n_relations, DIM, rng=1, **kwargs)
    sparse = sparse_cls(kg.n_entities, kg.n_relations, DIM, rng=2, **kwargs)
    sync(sparse, dense)
    return sparse, dense


@pytest.mark.parametrize("sparse_cls,dense_cls,sync,kwargs", PAIRS)
class TestScoreEquivalence:
    def test_identical_scores(self, sparse_cls, dense_cls, sync, kwargs,
                              small_kg, random_triples):
        sparse, dense = build_pair(sparse_cls, dense_cls, sync, kwargs, small_kg)
        np.testing.assert_allclose(
            sparse.score_triples(random_triples),
            dense.score_triples(random_triples),
            rtol=1e-8, atol=1e-10,
        )

    def test_identical_losses(self, sparse_cls, dense_cls, sync, kwargs,
                              small_kg, small_batch):
        sparse, dense = build_pair(sparse_cls, dense_cls, sync, kwargs, small_kg)
        np.testing.assert_allclose(
            sparse.loss(small_batch).item(),
            dense.loss(small_batch).item(),
            rtol=1e-8,
        )


class TestGradientEquivalence:
    def test_transe_entity_gradients_match(self, small_kg, small_batch):
        sparse, dense = build_pair(SpTransE, DenseTransE, _sync_transe_like, {}, small_kg)
        sparse.loss(small_batch).backward()
        dense.loss(small_batch).backward()

        n = small_kg.n_entities
        sparse_grad = sparse.embeddings.weight.grad
        np.testing.assert_allclose(
            sparse_grad[:n], dense.entity_embeddings.weight.grad, rtol=1e-7, atol=1e-10
        )
        np.testing.assert_allclose(
            sparse_grad[n:], dense.relation_embeddings.weight.grad, rtol=1e-7, atol=1e-10
        )

    def test_transh_gradients_match(self, small_kg, small_batch):
        sparse, dense = build_pair(SpTransH, DenseTransH, _sync_transh, {}, small_kg)
        sparse.loss(small_batch).backward()
        dense.loss(small_batch).backward()
        np.testing.assert_allclose(
            sparse.entity_embeddings.grad, dense.entity_embeddings.weight.grad,
            rtol=1e-7, atol=1e-10,
        )
        np.testing.assert_allclose(
            sparse.translations.weight.grad, dense.translations.weight.grad,
            rtol=1e-7, atol=1e-10,
        )
        np.testing.assert_allclose(
            sparse.normals.weight.grad, dense.normals.weight.grad,
            rtol=1e-7, atol=1e-10,
        )

    def test_distmult_gradients_match(self, small_kg, small_batch):
        sparse, dense = build_pair(SpDistMult, DenseDistMult, _sync_distmult, {}, small_kg)
        sparse.loss(small_batch).backward()
        dense.loss(small_batch).backward()
        n = small_kg.n_entities
        np.testing.assert_allclose(
            sparse.embeddings.weight.grad[:n], dense.entity_embeddings.weight.grad,
            rtol=1e-7, atol=1e-10,
        )


class TestTrainingTrajectoryEquivalence:
    def test_transe_sgd_trajectories_match(self, small_kg):
        """With identical init, batches, and optimiser, sparse and dense TransE
        follow the same parameter trajectory (the paper's accuracy-parity claim)."""
        from repro.optim import SGD

        sparse, dense = build_pair(SpTransE, DenseTransE, _sync_transe_like, {}, small_kg)
        sampler = UniformNegativeSampler(small_kg.n_entities, rng=9)
        positives = small_kg.split.train[:128]
        batch = TripletBatch(positives=positives, negatives=sampler.corrupt(positives))

        opt_sparse = SGD(sparse.parameters(), lr=0.05)
        opt_dense = SGD(dense.parameters(), lr=0.05)
        for _ in range(5):
            sparse.zero_grad()
            sparse.loss(batch).backward()
            opt_sparse.step()
            dense.zero_grad()
            dense.loss(batch).backward()
            opt_dense.step()

        n = small_kg.n_entities
        np.testing.assert_allclose(
            sparse.embeddings.weight.data[:n], dense.entity_embeddings.weight.data,
            rtol=1e-6, atol=1e-9,
        )
        np.testing.assert_allclose(
            sparse.embeddings.weight.data[n:], dense.relation_embeddings.weight.data,
            rtol=1e-6, atol=1e-9,
        )

    def test_transr_losses_track_each_other_during_training(self, small_kg):
        from repro.optim import Adam

        sparse, dense = build_pair(SpTransR, DenseTransR, _sync_transr,
                                   {"relation_dim": 8}, small_kg)
        sampler = UniformNegativeSampler(small_kg.n_entities, rng=5)
        positives = small_kg.split.train[:128]
        batch = TripletBatch(positives=positives, negatives=sampler.corrupt(positives))
        opt_s, opt_d = Adam(sparse.parameters(), lr=0.01), Adam(dense.parameters(), lr=0.01)
        for _ in range(3):
            sparse.zero_grad()
            ls = sparse.loss(batch)
            ls.backward()
            opt_s.step()
            dense.zero_grad()
            ld = dense.loss(batch)
            ld.backward()
            opt_d.step()
            np.testing.assert_allclose(ls.item(), ld.item(), rtol=1e-6)
