"""Property-based sparse-vs-dense equivalence over random graph shapes.

Hypothesis drives the vocabulary sizes, embedding width, and triple batches;
for every draw the SpMM formulation and the gather/scatter formulation must
produce identical scores once their parameters are synchronised.  This is the
randomized generalisation of the fixed-seed equivalence tests.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import DenseTorusE, DenseTransE
from repro.models import SpTorusE, SpTransE
from repro.sparse import build_hrt_incidence


@st.composite
def kg_shapes(draw):
    n_entities = draw(st.integers(min_value=4, max_value=60))
    n_relations = draw(st.integers(min_value=1, max_value=8))
    dim = draw(st.integers(min_value=1, max_value=16))
    n_triples = draw(st.integers(min_value=1, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return n_entities, n_relations, dim, n_triples, seed


def _random_triples(rng, n_entities, n_relations, n_triples):
    return np.column_stack([
        rng.integers(0, n_entities, n_triples),
        rng.integers(0, n_relations, n_triples),
        rng.integers(0, n_entities, n_triples),
    ])


class TestRandomizedEquivalence:
    @given(kg_shapes())
    @settings(max_examples=25, deadline=None)
    def test_transe_scores_match_for_any_shape(self, shape):
        n_entities, n_relations, dim, n_triples, seed = shape
        rng = np.random.default_rng(seed)
        triples = _random_triples(rng, n_entities, n_relations, n_triples)
        dense = DenseTransE(n_entities, n_relations, dim, rng=seed)
        sparse = SpTransE(n_entities, n_relations, dim, rng=seed + 1)
        sparse.embeddings.load_pretrained(dense.entity_embeddings.weight.data,
                                          dense.relation_embeddings.weight.data)
        np.testing.assert_allclose(sparse.score_triples(triples),
                                   dense.score_triples(triples),
                                   rtol=1e-8, atol=1e-10)

    @given(kg_shapes())
    @settings(max_examples=15, deadline=None)
    def test_toruse_scores_match_for_any_shape(self, shape):
        n_entities, n_relations, dim, n_triples, seed = shape
        rng = np.random.default_rng(seed)
        triples = _random_triples(rng, n_entities, n_relations, n_triples)
        dense = DenseTorusE(n_entities, n_relations, dim, rng=seed)
        sparse = SpTorusE(n_entities, n_relations, dim, rng=seed + 1)
        sparse.embeddings.load_pretrained(dense.entity_embeddings.weight.data,
                                          dense.relation_embeddings.weight.data)
        np.testing.assert_allclose(sparse.score_triples(triples),
                                   dense.score_triples(triples),
                                   rtol=1e-8, atol=1e-10)

    @given(kg_shapes())
    @settings(max_examples=20, deadline=None)
    def test_transe_gradients_match_for_any_shape(self, shape):
        n_entities, n_relations, dim, n_triples, seed = shape
        rng = np.random.default_rng(seed)
        triples = _random_triples(rng, n_entities, n_relations, n_triples)
        dense = DenseTransE(n_entities, n_relations, dim, rng=seed)
        sparse = SpTransE(n_entities, n_relations, dim, rng=seed + 1)
        sparse.embeddings.load_pretrained(dense.entity_embeddings.weight.data,
                                          dense.relation_embeddings.weight.data)

        sparse.scores(triples).sum().backward()
        dense.scores(triples).sum().backward()
        stacked_grad = sparse.embeddings.weight.grad
        np.testing.assert_allclose(stacked_grad[:n_entities],
                                   dense.entity_embeddings.weight.grad,
                                   rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(stacked_grad[n_entities:],
                                   dense.relation_embeddings.weight.grad,
                                   rtol=1e-7, atol=1e-9)

    @given(kg_shapes())
    @settings(max_examples=25, deadline=None)
    def test_hrt_incidence_matches_gather_expression_for_any_shape(self, shape):
        n_entities, n_relations, dim, n_triples, seed = shape
        rng = np.random.default_rng(seed)
        triples = _random_triples(rng, n_entities, n_relations, n_triples)
        E = rng.standard_normal((n_entities + n_relations, dim))
        A = build_hrt_incidence(triples, n_entities, n_relations)
        expected = (E[triples[:, 0]] + E[n_entities + triples[:, 1]] - E[triples[:, 2]])
        np.testing.assert_allclose(A.matmul_dense(E), expected, rtol=1e-10, atol=1e-12)
