"""CLI surface of partitioned tables: --partitions on export-spec/train/run."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiment import ExperimentSpec


class TestExportSpecPartitions:
    def test_partitions_written_into_spec(self, tmp_path, capsys):
        out = tmp_path / "spec.json"
        code = main(["export-spec", "--dataset", "WN18RR", "--scale", "0.003",
                     "--model", "transe", "--epochs", "1", "--dim", "8",
                     "--partitions", "4", "--output", str(out)])
        assert code == 0
        spec = ExperimentSpec.from_file(str(out))
        assert spec.model.partitions == 4
        # partitioned tables only have a row-sparse path; the spec records it
        assert spec.model.sparse_grads is True

    def test_partitions_default_omitted(self, tmp_path):
        out = tmp_path / "spec.json"
        main(["export-spec", "--dataset", "WN18RR", "--scale", "0.003",
              "--model", "transe", "--epochs", "1", "--dim", "8",
              "--output", str(out)])
        payload = json.loads(out.read_text())
        assert "partitions" not in payload["model"]


class TestRunOverride:
    def test_run_partitions_override(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        main(["export-spec", "--dataset", "WN18RR", "--scale", "0.003",
              "--model", "transe", "--epochs", "1", "--batch-size", "256",
              "--dim", "8", "--test-fraction", "0.1", "--generator", "learnable",
              "--storage", "sqlite", "--output", str(spec_path)])
        capsys.readouterr()
        artifacts = tmp_path / "artifact"
        code = main(["run", str(spec_path), "--artifacts", str(artifacts),
                     "--partitions", "2", "--quiet"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"]["partitions"] == 2
        stored = ExperimentSpec.from_file(str(artifacts / "spec.json"))
        assert stored.model.partitions == 2
        assert (artifacts / "weights" / "entities.bucket0.npy").exists()
        assert (artifacts / "weights" / "partition.json").exists()

    def test_parser_exposes_partitions_everywhere(self):
        parser = build_parser()
        for argv in (["train", "--partitions", "2"],
                     ["export-spec", "--partitions", "2"],
                     ["run", "spec.json", "--partitions", "2"]):
            args = parser.parse_args(argv)
            assert args.partitions == 2

    def test_invalid_partition_counts_fail_loudly(self, tmp_path):
        for bad in ("0", "-4"):
            with pytest.raises(SystemExit, match="partitions"):
                main(["export-spec", "--dataset", "WN18RR", "--scale", "0.003",
                      "--model", "transe", "--dim", "8", "--partitions", bad,
                      "--output", str(tmp_path / "spec.json")])


class TestScheduleConfigGuards:
    def test_bernoulli_sampler_rejected_with_partitions(self):
        from repro.experiment import DataSpec, EvalSpec, Experiment, ExperimentSpec
        from repro.registry import ModelSpec
        from repro.training import TrainingConfig

        data = DataSpec(dataset="WN18RR", scale=0.003, storage="sqlite",
                        negative_sampler="bernoulli", test_fraction=0.05)
        n_e, n_r = data.vocab_sizes()
        spec = ExperimentSpec(
            name="guard", data=data,
            model=ModelSpec(model="transe", formulation="sparse",
                            n_entities=n_e, n_relations=n_r, embedding_dim=8,
                            sparse_grads=True, partitions=2),
            training=TrainingConfig(epochs=1, batch_size=128, sparse_grads=True),
            eval=EvalSpec(protocols=()),
        )
        with pytest.raises(ValueError, match="bucket-local"):
            Experiment(spec).run()

    def test_user_supplied_store_is_not_reordered(self, tmp_path):
        """Clustering would change the seeded block shuffle of later
        unpartitioned runs sharing the database, so a user-supplied
        storage_path is streamed as-is."""
        from repro.data import SQLiteKGStore
        from repro.experiment import DataSpec, EvalSpec, Experiment, ExperimentSpec
        from repro.registry import ModelSpec
        from repro.training import TrainingConfig

        db = str(tmp_path / "shared.sqlite")
        data = DataSpec(dataset="WN18RR", scale=0.003, storage="sqlite",
                        storage_path=db, test_fraction=0.05)
        n_e, n_r = data.vocab_sizes()
        spec = ExperimentSpec(
            name="shared-store", data=data,
            model=ModelSpec(model="transe", formulation="sparse",
                            n_entities=n_e, n_relations=n_r, embedding_dim=8,
                            sparse_grads=True, partitions=2),
            training=TrainingConfig(epochs=1, batch_size=128, sparse_grads=True),
            eval=EvalSpec(protocols=()),
        )
        Experiment(spec).run()
        with SQLiteKGStore(db) as store:
            assert store.get_meta("clustered_bucket_size") is None
