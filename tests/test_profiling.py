"""Tests for the profiling substrate: FLOPs, memory model, cache model, timers, report."""

import time

import numpy as np
import pytest

from repro.baselines import DenseTransE, DenseTransH
from repro.data import TripletBatch, UniformNegativeSampler, generate_synthetic_kg
from repro.models import SpTransE, SpTransH
from repro.optim import Adam
from repro.profiling import (
    CacheModel,
    PhaseTimer,
    count_training_flops,
    estimate_training_memory,
    measure_cache_behaviour,
    measure_training_memory,
    profile_training_step,
)

DIM = 32


@pytest.fixture
def kg():
    return generate_synthetic_kg(200, 10, 2000, rng=0)


@pytest.fixture
def batch(kg):
    sampler = UniformNegativeSampler(kg.n_entities, rng=1)
    positives = kg.split.train[:512]
    return TripletBatch(positives=positives, negatives=sampler.corrupt(positives))


class TestFlops:
    def test_breakdown_fields(self, kg, batch):
        model = SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        optimizer = Adam(model.parameters(), lr=1e-3)
        breakdown = count_training_flops(model, batch, optimizer)
        assert breakdown.forward > 0
        assert breakdown.backward > 0
        assert breakdown.step > 0
        assert breakdown.total == breakdown.forward + breakdown.backward + breakdown.step
        assert breakdown.to_dict()["total"] == breakdown.total
        assert breakdown.per_op

    def test_step_omitted_without_optimizer(self, kg, batch):
        model = SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        breakdown = count_training_flops(model, batch)
        assert breakdown.step == 0

    def test_flops_scale_with_embedding_dim(self, kg, batch):
        small = count_training_flops(SpTransE(kg.n_entities, kg.n_relations, 16, rng=0), batch)
        large = count_training_flops(SpTransE(kg.n_entities, kg.n_relations, 64, rng=0), batch)
        assert large.total > 2 * small.total

    def test_sparse_and_dense_flops_same_order(self, kg, batch):
        """Analytic arithmetic counts for the two formulations are comparable.

        The paper's measured FLOP reduction (Table 6) includes framework
        overhead eliminated by the unified kernel; a pure-arithmetic counter
        shows the two paths performing a similar number of operations (the
        speedup comes from memory behaviour, not arithmetic).  EXPERIMENTS.md
        discusses this deviation.
        """
        sparse = count_training_flops(SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0), batch)
        dense = count_training_flops(DenseTransE(kg.n_entities, kg.n_relations, DIM, rng=0), batch)
        assert sparse.total < 2.5 * dense.total
        assert dense.total < 2.5 * sparse.total


class TestMemoryModel:
    def test_report_structure(self, kg, batch):
        model = SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        report = measure_training_memory(model, batch, optimizer="adam")
        assert report.parameter_bytes == sum(p.nbytes for p in model.parameters())
        assert report.gradient_bytes == report.parameter_bytes
        assert report.optimizer_state_bytes == 2 * report.parameter_bytes
        assert report.intermediate_bytes > 0
        assert report.total_bytes == (report.parameter_bytes + report.gradient_bytes
                                      + report.optimizer_state_bytes
                                      + report.intermediate_bytes)
        assert report.total_gb == pytest.approx(report.total_bytes / 1024 ** 3)
        assert report.to_dict()["n_intermediates"] == report.n_intermediates

    def test_unknown_optimizer(self, kg, batch):
        model = SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        with pytest.raises(ValueError):
            measure_training_memory(model, batch, optimizer="rmsprop")

    def test_sparse_intermediates_smaller_than_dense(self, kg, batch):
        """Table-5 direction: sparse TransE keeps fewer live intermediates."""
        sparse = measure_training_memory(SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0),
                                         batch)
        dense = measure_training_memory(DenseTransE(kg.n_entities, kg.n_relations, DIM, rng=0),
                                        batch)
        assert sparse.intermediate_bytes < dense.intermediate_bytes
        assert sparse.n_intermediates < dense.n_intermediates

    def test_sparse_transh_much_smaller_than_dense(self, kg, batch):
        """The paper reports TransH as the most memory-efficient sparse model."""
        sparse = measure_training_memory(SpTransH(kg.n_entities, kg.n_relations, DIM, rng=0),
                                         batch)
        dense = measure_training_memory(DenseTransH(kg.n_entities, kg.n_relations, DIM, rng=0),
                                        batch)
        assert sparse.intermediate_bytes < dense.intermediate_bytes

    def test_estimate_scales_with_batch_size(self):
        small = estimate_training_memory(1000, 10, 64, batch_size=1024, formulation="dense")
        large = estimate_training_memory(1000, 10, 64, batch_size=4096, formulation="dense")
        assert large.intermediate_bytes == 4 * small.intermediate_bytes

    def test_estimate_sparse_below_dense(self):
        sparse = estimate_training_memory(1000, 10, 64, 4096, formulation="sparse")
        dense = estimate_training_memory(1000, 10, 64, 4096, formulation="dense")
        assert sparse.total_bytes < dense.total_bytes

    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            estimate_training_memory(10, 2, 8, 16, formulation="hybrid")
        with pytest.raises(ValueError):
            estimate_training_memory(10, 2, 8, 16, optimizer="rmsprop")


class TestCacheModel:
    def test_miss_rate_bounds(self):
        cache = CacheModel()
        assert cache.miss_rate(0, 0) == 0.0
        rate = cache.miss_rate(10**9, 10**8)
        assert 0.0 <= rate <= 1.0

    def test_pure_streaming_misses_everything(self):
        cache = CacheModel(capacity_bytes=1024)
        assert cache.miss_rate(10**6, 10**6) == pytest.approx(1.0)

    def test_reuse_in_small_working_set_hits(self):
        cache = CacheModel(capacity_bytes=10**9)
        # 1 GB streamed but only 1 MB unique -> reuse hits, low miss rate.
        assert cache.miss_rate(10**9, 10**6) < 0.01

    def test_larger_cache_never_increases_miss_rate(self):
        small = CacheModel(capacity_bytes=10**6)
        large = CacheModel(capacity_bytes=10**8)
        streamed, unique = 10**9, 5 * 10**7
        assert large.miss_rate(streamed, unique) <= small.miss_rate(streamed, unique)

    def test_measure_cache_behaviour(self, kg, batch):
        model = SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        report = measure_cache_behaviour(model, batch)
        assert report.bytes_streamed > 0
        assert 0.0 <= report.miss_rate <= 1.0
        assert report.to_dict()["bytes_streamed"] == report.bytes_streamed


class TestPhaseTimer:
    def test_accumulates_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.01)
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.total("a") >= 0.01
        assert timer.count("a") == 2
        assert timer.count("b") == 1
        assert set(timer.totals()) == {"a", "b"}
        assert timer.grand_total() >= timer.total("a")

    def test_manual_add_and_reset(self):
        timer = PhaseTimer()
        timer.add("x", 1.5)
        assert timer.total("x") == 1.5
        with pytest.raises(ValueError):
            timer.add("x", -1.0)
        timer.reset()
        assert timer.grand_total() == 0.0

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().total("never") == 0.0


class TestFunctionProfile:
    def test_returns_ranked_library_functions(self, kg, batch):
        model = SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        rows = profile_training_step(model, batch, steps=1, top=5)
        assert 0 < len(rows) <= 5
        shares = [r.share for r in rows]
        assert all(0 <= s <= 1 for s in shares)
        assert shares == sorted(shares, reverse=True)
        assert all(r.to_dict()["function"] for r in rows)

    def test_dense_profile_contains_scatter_or_gather(self, kg, batch):
        """Figure-2 direction: the dense path's hot functions include the
        embedding gather/scatter machinery."""
        model = DenseTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        rows = profile_training_step(model, batch, steps=2, top=10)
        names = " ".join(r.function for r in rows)
        assert "gather" in names or "backward" in names

    def test_steps_validation(self, kg, batch):
        model = SpTransE(kg.n_entities, kg.n_relations, DIM, rng=0)
        with pytest.raises(ValueError):
            profile_training_step(model, batch, steps=0)
