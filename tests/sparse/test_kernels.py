"""Parity tests for the compiled/fused hot-path kernel layer.

The contract (PR acceptance criterion): the numpy-fused kernels reproduce the
reference path **bit-identically**; the numba kernels (exercised only when
numba is importable) match within 1e-6 and preserve evaluation ranks.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.sparse import COOMatrix, available_backends, get_backend, spmm
from repro.sparse import backends as backends_mod
from repro.sparse import kernels
from repro.sparse.backends import _fused_spmm, _regular_pattern
from repro.sparse.spmm import _rowsparse_backward, rowsparse_backward_for
from repro.sparse.incidence import build_hrt_incidence


def _hrt_fixture(n_triples=64, n_entities=40, n_relations=6, d=12, seed=0):
    rng = np.random.default_rng(seed)
    triples = np.column_stack([
        rng.integers(0, n_entities, n_triples),
        rng.integers(0, n_relations, n_triples),
        rng.integers(0, n_entities, n_triples),
    ])
    A = build_hrt_incidence(triples, n_entities, n_relations, fmt="coo")
    X = rng.standard_normal((n_entities + n_relations, d))
    return A, X


class TestCompiledBackend:
    def test_registered(self):
        assert "compiled" in available_backends()
        assert get_backend("compiled").rowsparse_backward is not None

    def test_forward_bit_identical_to_fused(self):
        A, X = _hrt_fixture()
        out = get_backend("compiled")(A, X)
        ref = _fused_spmm(A, X)
        np.testing.assert_array_equal(out, ref)

    def test_forward_matches_scipy(self):
        A, X = _hrt_fixture(seed=3)
        np.testing.assert_allclose(get_backend("compiled")(A, X),
                                   get_backend("scipy")(A, X), rtol=1e-12)

    def test_irregular_pattern_falls_back(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((9, 7))
        dense[rng.random((9, 7)) < 0.6] = 0.0
        A = COOMatrix.from_dense(dense)
        X = rng.standard_normal((7, 4))
        assert _regular_pattern(A) is None
        np.testing.assert_allclose(get_backend("compiled")(A, X), dense @ X,
                                   rtol=1e-12)

    def test_blocked_kernel_bit_identical_across_block_sizes(self, monkeypatch):
        A, X = _hrt_fixture(n_triples=300, seed=5)
        coo = A if isinstance(A, COOMatrix) else A.tocoo()
        pattern = _regular_pattern(coo)
        assert pattern is not None
        cols, vals = pattern
        ref = kernels.blocked_fixed_spmm(cols, vals, X, X.dtype)
        monkeypatch.setattr(kernels, "BLOCK_BYTES", 1 << 8)  # force many tiny blocks
        tiled = kernels.blocked_fixed_spmm(cols, vals, X, X.dtype)
        np.testing.assert_array_equal(tiled, ref)


class TestRowSparseBackwardKernel:
    def test_bit_identical_to_reference(self):
        A, X = _hrt_fixture(seed=7)
        rng = np.random.default_rng(11)
        grad = rng.standard_normal((A.shape[0], X.shape[1]))
        fused_bwd = rowsparse_backward_for("compiled")
        ref = _rowsparse_backward(A, grad, X.shape[0])
        out = fused_bwd(A, grad, X.shape[0])
        np.testing.assert_array_equal(out.indices, ref.indices)
        np.testing.assert_array_equal(out.values, ref.values)
        assert out.shape == ref.shape

    def test_reference_backend_keeps_reference_backward(self):
        assert rowsparse_backward_for("scipy") is _rowsparse_backward

    def test_empty_matrix(self):
        A = COOMatrix(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                      np.empty(0), (4, 6))
        grad = np.ones((4, 3))
        out = rowsparse_backward_for("compiled")(A, grad, 6)
        assert out.indices.size == 0
        assert out.values.shape == (0, 3)

    def test_spmm_autograd_end_to_end(self):
        A, X = _hrt_fixture(seed=13)
        X_ref = Tensor(X.copy(), requires_grad=True)
        X_cmp = Tensor(X.copy(), requires_grad=True)
        spmm(A, X_ref, backend="fused", sparse_grad=True).sum().backward()
        spmm(A, X_cmp, backend="compiled", sparse_grad=True).sum().backward()
        np.testing.assert_array_equal(X_cmp.grad, X_ref.grad)


class TestPatternCache:
    def test_probe_runs_once_per_matrix(self, monkeypatch):
        A, X = _hrt_fixture(seed=17)
        coo = A if isinstance(A, COOMatrix) else A.tocoo()
        calls = []
        real_probe = backends_mod._probe_regular_pattern

        def counting_probe(matrix):
            calls.append(matrix)
            return real_probe(matrix)

        monkeypatch.setattr(backends_mod, "_probe_regular_pattern", counting_probe)
        for _ in range(5):
            get_backend("compiled")(coo, X)
        assert len(calls) == 1

    def test_irregular_result_also_cached(self, monkeypatch):
        rng = np.random.default_rng(2)
        dense = rng.standard_normal((6, 5))
        dense[rng.random((6, 5)) < 0.7] = 0.0
        coo = COOMatrix.from_dense(dense)
        calls = []
        real_probe = backends_mod._probe_regular_pattern

        def counting_probe(matrix):
            calls.append(matrix)
            return real_probe(matrix)

        monkeypatch.setattr(backends_mod, "_probe_regular_pattern", counting_probe)
        assert _regular_pattern(coo) is None
        assert _regular_pattern(coo) is None
        assert len(calls) == 1


class TestMarginKernels:
    def test_forward_matches_reference_hinge(self):
        rng = np.random.default_rng(4)
        pos, neg = rng.standard_normal(257), rng.standard_normal(257)
        raw, mask = kernels.margin_loss_forward(pos, neg, 0.5)
        ref = np.maximum(pos - neg + 0.5, 0.0)
        np.testing.assert_array_equal(raw, (pos - neg + 0.5) * mask)
        np.testing.assert_allclose(raw, ref, rtol=1e-15)

    def test_sum_matches_forward_sum(self):
        rng = np.random.default_rng(6)
        pos, neg = rng.standard_normal(100), rng.standard_normal(100)
        raw, mask_f = kernels.margin_loss_forward(pos, neg, 0.3)
        total, mask_s = kernels.margin_loss_sum(pos, neg, 0.3)
        np.testing.assert_array_equal(mask_f, mask_s)
        assert total == pytest.approx(raw.sum(), rel=1e-12)


@pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba not installed")
class TestNumbaKernels:
    def test_spmm_forward_within_tolerance(self):
        A, X = _hrt_fixture(seed=21)
        out = get_backend("compiled")(A, X)
        ref = get_backend("scipy")(A, X)
        np.testing.assert_allclose(out, ref, atol=1e-6, rtol=1e-6)

    def test_backward_within_tolerance(self):
        A, X = _hrt_fixture(seed=23)
        rng = np.random.default_rng(23)
        grad = rng.standard_normal((A.shape[0], X.shape[1]))
        out = rowsparse_backward_for("compiled")(A, grad, X.shape[0])
        ref = _rowsparse_backward(A, grad, X.shape[0])
        np.testing.assert_array_equal(out.indices, ref.indices)
        np.testing.assert_allclose(out.values, ref.values, atol=1e-6, rtol=1e-6)

    def test_eval_ranks_identical(self):
        from repro.models.transe import SpTransE

        ref = SpTransE(60, 4, 8, rng=0, backend="fused")
        cmp = SpTransE(60, 4, 8, rng=0, backend="compiled")
        heads = np.arange(10, dtype=np.int64)
        rels = np.zeros(10, dtype=np.int64)
        ranks_ref = np.argsort(ref.score_all_tails(heads, rels), axis=1)
        ranks_cmp = np.argsort(cmp.score_all_tails(heads, rels), axis=1)
        np.testing.assert_array_equal(ranks_ref, ranks_cmp)
