"""Tests for the semiring SpMM extension (paper Appendix D)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.sparse.semiring import (
    SEMIRINGS,
    Semiring,
    complex_semiring_spmm,
    get_semiring,
    register_semiring,
    semiring_spmm,
)

N_ENT, N_REL, DIM = 6, 3, 4


@pytest.fixture
def triples():
    return np.array([[0, 1, 3], [2, 0, 1], [5, 2, 4]], dtype=np.int64)


@pytest.fixture
def stacked():
    rng = np.random.default_rng(2)
    return Tensor(rng.standard_normal((N_ENT + N_REL, DIM)), requires_grad=True)


class TestRegistry:
    def test_builtin_semirings(self):
        assert {"plus_times", "times_times", "rotate"} <= set(SEMIRINGS)

    def test_get_semiring_passthrough(self):
        sr = get_semiring("plus_times")
        assert get_semiring(sr) is sr

    def test_unknown_semiring(self):
        with pytest.raises(KeyError):
            get_semiring("bogus")

    def test_register_custom_semiring(self):
        custom = Semiring("unit-test-min-plus",
                          combine=lambda h, r, t: np.minimum(np.minimum(h, r), t),
                          grads=lambda h, r, t, g: (g, g, g))
        register_semiring(custom, overwrite=True)
        assert get_semiring("unit-test-min-plus") is custom
        with pytest.raises(ValueError):
            register_semiring(custom)


class TestSemiringSpmm:
    def test_plus_times_matches_hrt(self, triples, stacked):
        out = semiring_spmm(triples, stacked, N_ENT, "plus_times")
        E = stacked.data
        expected = E[triples[:, 0]] + E[N_ENT + triples[:, 1]] - E[triples[:, 2]]
        np.testing.assert_allclose(out.data, expected)

    def test_times_times_matches_distmult(self, triples, stacked):
        out = semiring_spmm(triples, stacked, N_ENT, "times_times")
        E = stacked.data
        expected = E[triples[:, 0]] * E[N_ENT + triples[:, 1]] * E[triples[:, 2]]
        np.testing.assert_allclose(out.data, expected)

    def test_rotate_matches_formula(self, triples, stacked):
        out = semiring_spmm(triples, stacked, N_ENT, "rotate")
        E = stacked.data
        expected = E[triples[:, 0]] * E[N_ENT + triples[:, 1]] - E[triples[:, 2]]
        np.testing.assert_allclose(out.data, expected)

    @pytest.mark.parametrize("name", ["plus_times", "times_times", "rotate"])
    def test_gradcheck(self, name, triples, stacked):
        ok, err = gradcheck(lambda E: semiring_spmm(triples, E, N_ENT, name), [stacked])
        assert ok, err

    def test_relation_index_bounds(self, stacked):
        bad = np.array([[0, N_REL, 1]], dtype=np.int64)
        with pytest.raises(ValueError):
            semiring_spmm(bad, stacked, N_ENT)

    def test_entity_index_bounds(self, stacked):
        bad = np.array([[N_ENT, 0, 1]], dtype=np.int64)
        with pytest.raises(ValueError):
            semiring_spmm(bad, stacked, N_ENT)

    def test_accepts_plain_array(self, triples):
        E = np.random.default_rng(4).standard_normal((N_ENT + N_REL, DIM))
        out = semiring_spmm(triples, E, N_ENT, "plus_times")
        assert out.shape == (3, DIM)

    def test_duplicate_entities_in_row(self, stacked):
        triples = np.array([[2, 1, 2]], dtype=np.int64)
        out = semiring_spmm(triples, stacked, N_ENT, "times_times")
        E = stacked.data
        np.testing.assert_allclose(out.data, (E[2] * E[N_ENT + 1] * E[2])[None, :])


class TestComplexSemiring:
    def test_matches_explicit_complex_product(self, triples):
        rng = np.random.default_rng(7)
        re = Tensor(rng.standard_normal((N_ENT + N_REL, DIM)), requires_grad=True)
        im = Tensor(rng.standard_normal((N_ENT + N_REL, DIM)), requires_grad=True)
        out = complex_semiring_spmm(triples, re, im, N_ENT)

        h = re.data[triples[:, 0]] + 1j * im.data[triples[:, 0]]
        r = re.data[N_ENT + triples[:, 1]] + 1j * im.data[N_ENT + triples[:, 1]]
        t = re.data[triples[:, 2]] + 1j * im.data[triples[:, 2]]
        expected = np.real(h * r * np.conj(t))
        np.testing.assert_allclose(out.data, expected, rtol=1e-10)

    def test_gradients_flow_to_both_parts(self, triples):
        rng = np.random.default_rng(8)
        re = Tensor(rng.standard_normal((N_ENT + N_REL, DIM)), requires_grad=True)
        im = Tensor(rng.standard_normal((N_ENT + N_REL, DIM)), requires_grad=True)
        complex_semiring_spmm(triples, re, im, N_ENT).sum().backward()
        assert re.grad is not None and np.any(re.grad != 0)
        assert im.grad is not None and np.any(im.grad != 0)
