"""Parity tests closing the kernel-coverage gaps ``sptransx check`` found.

The ``kernel-parity`` rule requires every public ``kernels.py`` function to
be named by a tests/sparse/ test.  ``blocked_fixed_spmm`` and the margin
kernels already were; this module covers the rest with real parity
assertions, not just name-drops: ``fixed_spmm`` against the dense
reference and its own blocked twin, ``rowsparse_bwd`` against the
materialise-then-coalesce reference, ``block_rows`` invariants, and
``margin_loss_flops`` against the op count of the fused loss.
"""

import numpy as np
import pytest

from repro.sparse.kernels import (
    BLOCK_BYTES,
    block_rows,
    blocked_fixed_spmm,
    fixed_spmm,
    margin_loss_flops,
    margin_loss_forward,
    rowsparse_bwd,
)


def _fixed_pattern(rng, m=37, k=3, n=29, d=11):
    cols = rng.integers(0, n, size=(m, k)).astype(np.int64)
    vals = rng.standard_normal((m, k))
    X = rng.standard_normal((n, d))
    return cols, vals, X


def _dense_reference(cols, vals, X):
    m, k = cols.shape
    out = np.zeros((m, X.shape[1]), dtype=X.dtype)
    for i in range(m):
        for j in range(k):
            out[i] += vals[i, j] * X[cols[i, j]]
    return out


class TestFixedSpmm:
    def test_matches_dense_reference(self):
        rng = np.random.default_rng(7)
        cols, vals, X = _fixed_pattern(rng)
        out = fixed_spmm(cols, vals, X, np.float64)
        np.testing.assert_allclose(out, _dense_reference(cols, vals, X),
                                   rtol=1e-12, atol=1e-12)

    def test_bit_identical_to_blocked_twin(self):
        rng = np.random.default_rng(8)
        cols, vals, X = _fixed_pattern(rng, m=211, d=17)
        fused = fixed_spmm(cols, vals, X, np.float64)
        blocked = blocked_fixed_spmm(cols, vals, X, np.float64)
        if not __import__("repro.sparse.kernels", fromlist=["HAVE_NUMBA"]).HAVE_NUMBA:
            assert np.array_equal(fused, blocked)
        else:
            np.testing.assert_allclose(fused, blocked, rtol=1e-12, atol=1e-12)

    def test_one_dimensional_x(self):
        rng = np.random.default_rng(9)
        cols, vals, X = _fixed_pattern(rng, d=1)
        flat = fixed_spmm(cols, vals, X[:, 0], np.float64)
        assert flat.shape == (cols.shape[0],)
        np.testing.assert_allclose(flat, _dense_reference(cols, vals, X)[:, 0],
                                   rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_preserves_requested_dtype(self, dtype):
        rng = np.random.default_rng(10)
        cols, vals, X = _fixed_pattern(rng)
        assert fixed_spmm(cols, vals, X.astype(dtype), dtype).dtype == dtype


class TestRowsparseBwd:
    def _reference(self, cols, rows, vals, grad):
        contributions = vals[:, None] * grad[rows]
        unique = np.unique(cols)
        packed = np.zeros((unique.size, grad.shape[1]), dtype=grad.dtype)
        for u, c in enumerate(unique):
            packed[u] = contributions[cols == c].sum(axis=0)
        return unique, packed

    def test_matches_materialised_reference(self):
        rng = np.random.default_rng(11)
        nnz, n_rows, d = 97, 13, 5
        cols = rng.integers(0, 41, size=nnz).astype(np.int64)
        rows = rng.integers(0, n_rows, size=nnz).astype(np.int64)
        vals = rng.standard_normal(nnz)
        grad = rng.standard_normal((n_rows, d))
        unique, packed = rowsparse_bwd(cols, rows, vals, grad)
        ref_unique, ref_packed = self._reference(cols, rows, vals, grad)
        np.testing.assert_array_equal(unique, ref_unique)
        np.testing.assert_allclose(packed, ref_packed, rtol=1e-12, atol=1e-12)

    def test_empty_pattern(self):
        empty = np.empty(0, dtype=np.int64)
        grad = np.ones((3, 4), dtype=np.float64)
        unique, packed = rowsparse_bwd(empty, empty,
                                       np.empty(0, dtype=np.float64), grad)
        assert unique.size == 0
        assert packed.shape == (0, 4)

    def test_preserves_grad_dtype(self):
        rng = np.random.default_rng(12)
        cols = rng.integers(0, 5, size=20).astype(np.int64)
        rows = rng.integers(0, 4, size=20).astype(np.int64)
        vals = rng.standard_normal(20)
        grad = rng.standard_normal((4, 3)).astype(np.float32)
        _, packed = rowsparse_bwd(cols, rows, vals, grad)
        assert packed.dtype == np.float32


class TestBlockRows:
    def test_fits_block_byte_budget(self):
        for dim in (1, 8, 50, 4096):
            rows = block_rows(dim)
            assert rows >= 64
            if rows > 64:  # above the floor the block respects the budget
                assert rows * dim * 8 <= BLOCK_BYTES

    def test_floor_for_huge_rows(self):
        assert block_rows(10**9) == 64

    def test_itemsize_scales_inverse(self):
        assert block_rows(512, itemsize=4) == 2 * block_rows(512, itemsize=8)


class TestMarginLossFlops:
    def test_counts_five_ops_per_pair(self):
        # The fused loss runs sub + add + compare + mask-multiply + sum —
        # five scalar ops per pair, which is exactly what the analytic
        # count reports for any n.
        for n in (0, 1, 13, 1024):
            assert margin_loss_flops(n) == 5 * n

    def test_consistent_with_forward_shape(self):
        rng = np.random.default_rng(13)
        pos = rng.standard_normal(64)
        neg = rng.standard_normal(64)
        raw, mask = margin_loss_forward(pos, neg, 1.0)
        assert margin_loss_flops(pos.shape[0]) == 5 * raw.shape[0]
        assert mask.dtype == np.bool_
