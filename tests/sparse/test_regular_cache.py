"""The regular-pattern memo must stay O(1) per matrix and never go stale."""

import sys

import numpy as np

from repro.sparse import backends as backends_mod
from repro.sparse.backends import _IRREGULAR, _regular_pattern
from repro.sparse.coo import COOMatrix
from repro.sparse.incidence import IncidenceBuilder


def _regular_matrix(m=8, n=6, k=3, seed=0):
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(m, dtype=np.int64), k)
    cols = rng.integers(0, n, size=m * k).astype(np.int64)
    vals = rng.standard_normal(m * k)
    return COOMatrix(rows, cols, vals, (m, n))


class TestMemoPayload:
    def test_payload_is_scalar_metadata_not_arrays(self):
        coo = _regular_matrix(k=3)
        assert _regular_pattern(coo) is not None
        # The memo holds the per-row nnz, not reshaped views: creating many
        # transient matrices can never pin array storage through the cache.
        assert coo._regular_cache == 3
        assert not isinstance(coo._regular_cache, np.ndarray)
        assert sys.getsizeof(coo._regular_cache) < 64

    def test_irregular_payload_is_sentinel(self):
        coo = COOMatrix(np.array([0, 0, 1]), np.array([0, 1, 0]),
                        np.ones(3), (3, 2))
        assert _regular_pattern(coo) is None
        assert coo._regular_cache is _IRREGULAR

    def test_views_rebuilt_from_current_buffers(self):
        # Reshape-on-read means the memo can never serve stale storage even
        # if the values buffer is swapped after the first probe.
        coo = _regular_matrix(k=2)
        first_cols, first_vals = _regular_pattern(coo)
        coo.values = np.zeros_like(coo.values)
        _, second_vals = _regular_pattern(coo)
        assert second_vals.base is coo.values
        assert np.all(second_vals == 0.0)
        assert first_vals.shape == second_vals.shape

    def test_no_module_level_growth(self):
        # The memo lives on the instance (__slots__), so a sweep of
        # transient per-episode sub-incidence matrices leaves the backends
        # module's globals untouched.
        before = {
            name: v for name, v in vars(backends_mod).items()
            if isinstance(v, dict)
        }
        sizes_before = {name: len(v) for name, v in before.items()}
        triples = np.column_stack([
            np.arange(30) % 40,
            np.arange(30) % 4,
            (np.arange(30) * 7) % 40,
        ]).astype(np.int64)
        builder = IncidenceBuilder(n_entities=40, n_relations=4, fmt="coo")
        full = builder.hrt(triples)
        for start in range(0, 30, 5):
            sub = full.select_rows(np.arange(start, start + 5, dtype=np.int64))
            assert _regular_pattern(sub) is not None
        sizes_after = {
            name: len(v) for name, v in vars(backends_mod).items()
            if isinstance(v, dict) and name in sizes_before
        }
        assert sizes_after == sizes_before

    def test_probe_still_correct_through_select_rows(self):
        full = _regular_matrix(m=10, k=3, seed=4)
        sub = full.select_rows(np.array([1, 4, 7], dtype=np.int64))
        pattern = _regular_pattern(sub)
        assert pattern is not None
        cols, vals = pattern
        assert cols.shape == (3, 3)
        dense_sub = sub.to_dense()
        dense_full = full.to_dense()
        np.testing.assert_array_equal(dense_sub, dense_full[[1, 4, 7]])
