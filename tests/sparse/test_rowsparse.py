"""Tests for the row-sparse gradient container."""

import numpy as np
import pytest

from repro.sparse import RowSparseGrad, coalesce_rows


class TestCoalesceRows:
    def test_sums_duplicates(self):
        rows = np.array([3, 1, 3, 1, 0])
        values = np.arange(10.0).reshape(5, 2)
        unique, packed = coalesce_rows(rows, values)
        np.testing.assert_array_equal(unique, [0, 1, 3])
        np.testing.assert_allclose(packed[1], values[1] + values[3])
        np.testing.assert_allclose(packed[2], values[0] + values[2])
        np.testing.assert_allclose(packed[0], values[4])

    def test_already_unique_sorted(self):
        rows = np.array([0, 2, 5])
        values = np.ones((3, 4))
        unique, packed = coalesce_rows(rows, values)
        np.testing.assert_array_equal(unique, rows)
        np.testing.assert_allclose(packed, values)

    def test_empty(self):
        unique, packed = coalesce_rows(np.array([], dtype=np.int64),
                                       np.empty((0, 3)))
        assert unique.size == 0
        assert packed.shape == (0, 3)


class TestRowSparseGrad:
    def test_from_rows_coalesces(self):
        rsg = RowSparseGrad.from_rows(
            np.array([4, 0, 4]), np.ones((3, 2)), (6, 2)
        )
        np.testing.assert_array_equal(rsg.indices, [0, 4])
        np.testing.assert_allclose(rsg.values, [[1.0, 1.0], [2.0, 2.0]])
        assert rsg.n_rows == 2
        assert rsg.shape == (6, 2)

    def test_rejects_unsorted_or_duplicate_indices(self):
        with pytest.raises(ValueError):
            RowSparseGrad(np.array([2, 1]), np.ones((2, 3)), (4, 3))
        with pytest.raises(ValueError):
            RowSparseGrad(np.array([1, 1]), np.ones((2, 3)), (4, 3))

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            RowSparseGrad(np.array([5]), np.ones((1, 3)), (4, 3))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            RowSparseGrad(np.array([0]), np.ones((1, 2)), (4, 3))

    def test_to_dense_roundtrip(self):
        dense = np.zeros((5, 3))
        dense[1] = [1.0, 2.0, 3.0]
        dense[4] = [-1.0, 0.5, 0.0]
        rsg = RowSparseGrad.from_dense(dense)
        np.testing.assert_array_equal(rsg.indices, [1, 4])
        np.testing.assert_allclose(rsg.to_dense(), dense)

    def test_merge(self):
        a = RowSparseGrad(np.array([0, 2]), np.ones((2, 2)), (4, 2))
        b = RowSparseGrad(np.array([2, 3]), 2 * np.ones((2, 2)), (4, 2))
        merged = a.merge(b)
        np.testing.assert_allclose(merged.to_dense(),
                                   a.to_dense() + b.to_dense())

    def test_merge_shape_mismatch(self):
        a = RowSparseGrad(np.array([0]), np.ones((1, 2)), (4, 2))
        b = RowSparseGrad(np.array([0]), np.ones((1, 2)), (5, 2))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_add_to_dense_in_place(self):
        rsg = RowSparseGrad(np.array([1, 3]), np.ones((2, 2)), (4, 2))
        dense = np.full((4, 2), 10.0)
        out = rsg.add_to_dense(dense)
        assert out is dense
        np.testing.assert_allclose(dense[1], 11.0)
        np.testing.assert_allclose(dense[0], 10.0)

    def test_scale(self):
        rsg = RowSparseGrad(np.array([0]), np.ones((1, 2)), (3, 2))
        np.testing.assert_allclose(rsg.scale(2.5).values, 2.5)

    def test_three_dimensional_values(self):
        """TransR projection stacks have (R, k, d) parameters."""
        rsg = RowSparseGrad.from_rows(
            np.array([1, 1, 0]), np.ones((3, 2, 2)), (3, 2, 2)
        )
        dense = rsg.to_dense()
        assert dense.shape == (3, 2, 2)
        np.testing.assert_allclose(dense[1], 2.0)
        np.testing.assert_allclose(dense[2], 0.0)

    def test_density_and_nbytes(self):
        rsg = RowSparseGrad(np.array([0, 1]), np.ones((2, 8)), (10, 8))
        assert rsg.density == pytest.approx(0.2)
        assert rsg.nnz == 16
        assert rsg.nbytes == rsg.indices.nbytes + rsg.values.nbytes
