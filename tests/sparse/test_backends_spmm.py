"""Tests for SpMM backends and the autograd SpMM operator (Appendix G)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, gradcheck
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    available_backends,
    get_backend,
    register_backend,
    spmm,
    spmm_t,
)
from repro.sparse.backends import spmm_flops


@pytest.fixture
def sparse_and_dense():
    rng = np.random.default_rng(3)
    dense = rng.standard_normal((7, 5))
    dense[rng.random((7, 5)) < 0.5] = 0.0
    X = rng.standard_normal((5, 4))
    return COOMatrix.from_dense(dense), dense, X


class TestBackendRegistry:
    def test_builtin_backends_present(self):
        names = available_backends()
        assert {"scipy", "numpy", "fused"} <= set(names)

    def test_get_backend_passthrough(self):
        backend = get_backend("scipy")
        assert get_backend(backend) is backend

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            get_backend("does-not-exist")

    def test_register_and_overwrite_rules(self):
        def fake(A, X):
            return np.zeros((A.shape[0],) + X.shape[1:])

        register_backend("unit-test-backend", fake, "fake", overwrite=True)
        assert "unit-test-backend" in available_backends()
        with pytest.raises(ValueError):
            register_backend("unit-test-backend", fake)
        register_backend("unit-test-backend", fake, overwrite=True)

    def test_spmm_flops_formula(self, sparse_and_dense):
        A, _, X = sparse_and_dense
        assert spmm_flops(A, X) == 2 * A.nnz * X.shape[1]


class TestBackendCorrectness:
    @pytest.mark.parametrize("name", ["scipy", "numpy", "fused"])
    def test_matches_dense_product(self, name, sparse_and_dense):
        A, dense, X = sparse_and_dense
        backend = get_backend(name)
        np.testing.assert_allclose(backend(A, X), dense @ X, rtol=1e-10)

    @pytest.mark.parametrize("name", ["scipy", "numpy", "fused"])
    def test_accepts_csr_and_scipy_inputs(self, name, sparse_and_dense):
        A, dense, X = sparse_and_dense
        backend = get_backend(name)
        np.testing.assert_allclose(backend(A.tocsr(), X), dense @ X, rtol=1e-10)
        np.testing.assert_allclose(backend(sp.csr_matrix(dense), X), dense @ X, rtol=1e-10)

    @pytest.mark.parametrize("name", ["scipy", "numpy"])
    def test_vector_rhs(self, name, sparse_and_dense):
        A, dense, X = sparse_and_dense
        backend = get_backend(name)
        np.testing.assert_allclose(backend(A, X[:, 0]), dense @ X[:, 0], rtol=1e-10)

    def test_dimension_mismatch(self, sparse_and_dense):
        A, _, _ = sparse_and_dense
        with pytest.raises(ValueError):
            get_backend("scipy")(A, np.ones((3, 2)))

    def test_fused_backend_on_fixed_nnz_rows(self):
        # Build an incidence-like matrix: exactly two entries per row.
        rows = np.repeat(np.arange(5), 2)
        cols = np.array([0, 1, 2, 3, 1, 4, 0, 2, 3, 4])
        vals = np.tile([1.0, -1.0], 5)
        A = COOMatrix(rows, cols, vals, (5, 6))
        X = np.random.default_rng(0).standard_normal((6, 3))
        np.testing.assert_allclose(get_backend("fused")(A, X), A.to_dense() @ X, rtol=1e-10)

    def test_fused_backend_falls_back_on_irregular_rows(self, sparse_and_dense):
        A, dense, X = sparse_and_dense
        np.testing.assert_allclose(get_backend("fused")(A, X), dense @ X, rtol=1e-10)

    def test_fused_backend_empty_matrix(self):
        A = COOMatrix([], [], [], (3, 4))
        X = np.ones((4, 2))
        np.testing.assert_allclose(get_backend("fused")(A, X), np.zeros((3, 2)))

    def test_fused_sorted_fast_path_matches_sorted_input(self):
        """Incidence-style matrices (rows pre-sorted) must skip the sort and
        still produce the same result as a shuffled copy of the same matrix."""
        rng = np.random.default_rng(1)
        rows = np.repeat(np.arange(6), 3)
        cols = rng.integers(0, 9, rows.size)
        vals = rng.standard_normal(rows.size)
        sorted_A = COOMatrix(rows, cols, vals, (6, 9))
        perm = rng.permutation(rows.size)
        shuffled_A = COOMatrix(rows[perm], cols[perm], vals[perm], (6, 9))
        X = rng.standard_normal((9, 4))
        fused = get_backend("fused")
        np.testing.assert_allclose(fused(sorted_A, X), fused(shuffled_A, X),
                                   rtol=1e-12)
        np.testing.assert_allclose(fused(sorted_A, X), sorted_A.to_dense() @ X,
                                   rtol=1e-10)


class TestBackendDtypePreservation:
    """float32 inputs must stay float32 — no silent upcast to float64."""

    @pytest.fixture
    def incidence(self):
        rows = np.repeat(np.arange(4), 3)
        cols = np.array([0, 4, 1, 2, 4, 3, 1, 5, 0, 3, 4, 2])
        vals = np.tile([1.0, 1.0, -1.0], 4)
        return COOMatrix(rows, cols, vals, (4, 6))

    @pytest.mark.parametrize("name", ["scipy", "numpy", "fused"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_output_preserves_float_dtype(self, name, dtype, incidence):
        X = np.random.default_rng(0).standard_normal((6, 3)).astype(dtype)
        out = get_backend(name)(incidence, X)
        assert out.dtype == dtype

    @pytest.mark.parametrize("name", ["numpy", "fused"])
    def test_vector_rhs_preserves_dtype(self, name, incidence):
        x = np.ones(6, dtype=np.float32)
        assert get_backend(name)(incidence, x).dtype == np.float32

    def test_fused_empty_matrix_preserves_dtype(self):
        A = COOMatrix([], [], [], (3, 4))
        X = np.ones((4, 2), dtype=np.float32)
        out = get_backend("fused")(A, X)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, 0.0)

    @pytest.mark.parametrize("name", ["scipy", "numpy", "fused"])
    def test_float16_computes_at_float32_everywhere(self, name, incidence):
        """SciPy has no float16 sparse kernels, so the shared contract
        promotes half precision to float32 on every backend alike."""
        X = np.ones((6, 2), dtype=np.float16)
        out = get_backend(name)(incidence, X)
        assert out.dtype == np.float32

    @pytest.mark.parametrize("name", ["scipy", "numpy", "fused"])
    def test_integer_rhs_promotes_to_float64(self, name, incidence):
        X = np.ones((6, 2), dtype=np.int64)
        assert get_backend(name)(incidence, X).dtype == np.float64

    def test_float32_parity_across_backends(self, incidence):
        X = np.random.default_rng(2).standard_normal((6, 5)).astype(np.float32)
        results = {name: get_backend(name)(incidence, X)
                   for name in ("scipy", "numpy", "fused")}
        reference = incidence.to_dense().astype(np.float32) @ X
        for name, out in results.items():
            np.testing.assert_allclose(out, reference, rtol=1e-5,
                                       err_msg=f"backend {name}")


class TestSpmmAutograd:
    @pytest.mark.parametrize("backend", ["scipy", "numpy", "fused"])
    def test_forward_matches_dense(self, backend, sparse_and_dense):
        A, dense, X = sparse_and_dense
        out = spmm(A, Tensor(X), backend=backend)
        np.testing.assert_allclose(out.data, dense @ X, rtol=1e-10)

    def test_backward_is_transposed_spmm(self, sparse_and_dense):
        """Appendix G: dL/dX = A^T (dL/dC)."""
        A, dense, X = sparse_and_dense
        Xt = Tensor(X, requires_grad=True)
        out = spmm(A, Xt)
        upstream = np.random.default_rng(5).standard_normal(out.shape)
        (out * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(Xt.grad, dense.T @ upstream, rtol=1e-10)

    def test_gradcheck(self, sparse_and_dense):
        A, _, X = sparse_and_dense
        Xt = Tensor(X, requires_grad=True)
        ok, err = gradcheck(lambda t: spmm(A, t), [Xt])
        assert ok, err

    def test_cached_transpose_used(self, sparse_and_dense):
        A, dense, X = sparse_and_dense
        Xt = Tensor(X, requires_grad=True)
        out = spmm(A, Xt, A_t=A.T)
        out.sum().backward()
        np.testing.assert_allclose(Xt.grad, dense.T @ np.ones(out.shape), rtol=1e-10)

    def test_accepts_plain_ndarray_input(self, sparse_and_dense):
        A, dense, X = sparse_and_dense
        out = spmm(A, X)
        np.testing.assert_allclose(out.data, dense @ X, rtol=1e-10)

    def test_spmm_t(self, sparse_and_dense):
        A, dense, _ = sparse_and_dense
        Y = np.random.default_rng(6).standard_normal((dense.shape[0], 3))
        out = spmm_t(A, Tensor(Y))
        np.testing.assert_allclose(out.data, dense.T @ Y, rtol=1e-10)

    def test_no_grad_into_constant_input(self, sparse_and_dense):
        A, _, X = sparse_and_dense
        Xt = Tensor(X, requires_grad=False)
        out = spmm(A, Xt)
        assert not out.requires_grad

    def test_works_with_csr_operand(self, sparse_and_dense):
        A, dense, X = sparse_and_dense
        Xt = Tensor(X, requires_grad=True)
        out = spmm(A.tocsr(), Xt)
        out.sum().backward()
        np.testing.assert_allclose(Xt.grad, dense.T @ np.ones(out.shape), rtol=1e-10)
