"""Tests for the ht / hrt incidence-matrix builders (paper Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import CSRMatrix, COOMatrix, IncidenceBuilder, build_ht_incidence, build_hrt_incidence


@pytest.fixture
def triples():
    return np.array([
        [0, 1, 3],
        [2, 0, 1],
        [3, 2, 0],
        [1, 1, 2],
    ], dtype=np.int64)


N_ENT, N_REL = 5, 3


class TestHtIncidence:
    def test_shape_and_nnz(self, triples):
        A = build_ht_incidence(triples, N_ENT)
        assert A.shape == (4, N_ENT)
        assert A.nnz == 2 * len(triples)

    def test_values_are_plus_minus_one(self, triples):
        A = build_ht_incidence(triples, N_ENT, fmt="coo")
        assert set(np.unique(A.values)) == {-1.0, 1.0}

    def test_dense_structure(self, triples):
        A = build_ht_incidence(triples, N_ENT).to_dense()
        for i, (h, _, t) in enumerate(triples):
            expected = np.zeros(N_ENT)
            expected[h] += 1.0
            expected[t] -= 1.0
            np.testing.assert_allclose(A[i], expected)

    def test_product_equals_head_minus_tail(self, triples):
        rng = np.random.default_rng(0)
        E = rng.standard_normal((N_ENT, 6))
        A = build_ht_incidence(triples, N_ENT)
        expected = E[triples[:, 0]] - E[triples[:, 2]]
        np.testing.assert_allclose(A.matmul_dense(E), expected, rtol=1e-12)

    def test_self_loop_cancels(self):
        A = build_ht_incidence(np.array([[2, 0, 2]]), N_ENT)
        np.testing.assert_allclose(A.to_dense(), np.zeros((1, N_ENT)))

    def test_format_selection(self, triples):
        assert isinstance(build_ht_incidence(triples, N_ENT, fmt="csr"), CSRMatrix)
        assert isinstance(build_ht_incidence(triples, N_ENT, fmt="coo"), COOMatrix)
        with pytest.raises(ValueError):
            build_ht_incidence(triples, N_ENT, fmt="dense")

    def test_entity_bound_validation(self, triples):
        with pytest.raises(ValueError):
            build_ht_incidence(triples, 3)

    def test_empty_batch(self):
        A = build_ht_incidence(np.empty((0, 3), dtype=np.int64), N_ENT)
        assert A.shape == (0, N_ENT)
        assert A.nnz == 0


class TestHrtIncidence:
    def test_shape_and_nnz(self, triples):
        A = build_hrt_incidence(triples, N_ENT, N_REL)
        assert A.shape == (4, N_ENT + N_REL)
        assert A.nnz == 3 * len(triples)

    def test_relation_column_offset(self, triples):
        A = build_hrt_incidence(triples, N_ENT, N_REL).to_dense()
        for i, (h, r, t) in enumerate(triples):
            assert A[i, N_ENT + r] == 1.0

    def test_product_equals_h_plus_r_minus_t(self, triples):
        rng = np.random.default_rng(1)
        E = rng.standard_normal((N_ENT + N_REL, 6))
        A = build_hrt_incidence(triples, N_ENT, N_REL)
        expected = E[triples[:, 0]] + E[N_ENT + triples[:, 1]] - E[triples[:, 2]]
        np.testing.assert_allclose(A.matmul_dense(E), expected, rtol=1e-12)

    def test_relation_bound_validation(self, triples):
        with pytest.raises(ValueError):
            build_hrt_incidence(triples, N_ENT, 2)

    def test_rows_have_exactly_three_nonzeros(self, triples):
        A = build_hrt_incidence(triples, N_ENT, N_REL)
        np.testing.assert_array_equal(A.nnz_per_row(), np.full(len(triples), 3))


class TestIncidenceBuilder:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IncidenceBuilder(0, 3)
        with pytest.raises(ValueError):
            IncidenceBuilder(3, 0)
        with pytest.raises(ValueError):
            IncidenceBuilder(3, 3, fmt="dense")

    def test_ht_with_transpose(self, triples):
        builder = IncidenceBuilder(N_ENT, N_REL)
        A, At = builder.ht(triples, with_transpose=True)
        np.testing.assert_allclose(At.to_dense(), A.to_dense().T)

    def test_hrt_with_transpose(self, triples):
        builder = IncidenceBuilder(N_ENT, N_REL)
        A, At = builder.hrt(triples, with_transpose=True)
        np.testing.assert_allclose(At.to_dense(), A.to_dense().T)

    def test_stacked_dim(self):
        assert IncidenceBuilder(10, 4).stacked_dim == 14

    def test_describe_density_independent_of_structure(self, triples):
        builder = IncidenceBuilder(N_ENT, N_REL)
        stats = builder.describe(triples)
        assert stats["nnz_per_row"] == 3
        assert stats["nnz"] == 3 * len(triples)
        assert stats["density"] == pytest.approx(3 / (N_ENT + N_REL))


class TestIncidenceProperties:
    @given(
        n_entities=st.integers(min_value=3, max_value=20),
        n_relations=st.integers(min_value=1, max_value=6),
        n_triples=st.integers(min_value=1, max_value=30),
        dim=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_hrt_spmm_equals_gather_expression(self, n_entities, n_relations,
                                               n_triples, dim, seed):
        """The hrt SpMM must reproduce the gather-based h + r − t for any batch."""
        rng = np.random.default_rng(seed)
        triples = np.column_stack([
            rng.integers(0, n_entities, n_triples),
            rng.integers(0, n_relations, n_triples),
            rng.integers(0, n_entities, n_triples),
        ])
        E = rng.standard_normal((n_entities + n_relations, dim))
        A = build_hrt_incidence(triples, n_entities, n_relations)
        expected = E[triples[:, 0]] + E[n_entities + triples[:, 1]] - E[triples[:, 2]]
        np.testing.assert_allclose(A.matmul_dense(E), expected, rtol=1e-10, atol=1e-12)

    @given(
        n_entities=st.integers(min_value=2, max_value=20),
        n_triples=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_ht_row_sums_are_zero(self, n_entities, n_triples, seed):
        """+1 and −1 per row always cancel: A @ 1 = 0 regardless of the batch."""
        rng = np.random.default_rng(seed)
        triples = np.column_stack([
            rng.integers(0, n_entities, n_triples),
            np.zeros(n_triples, dtype=np.int64),
            rng.integers(0, n_entities, n_triples),
        ])
        A = build_ht_incidence(triples, n_entities)
        np.testing.assert_allclose(A.matvec(np.ones(n_entities)), np.zeros(n_triples),
                                   atol=1e-12)
