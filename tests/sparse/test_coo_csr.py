"""Tests for the COO and CSR sparse-matrix containers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture
def dense():
    rng = np.random.default_rng(0)
    mat = rng.standard_normal((6, 8))
    mat[rng.random((6, 8)) < 0.6] = 0.0
    return mat


class TestCOOConstruction:
    def test_from_dense_roundtrip(self, dense):
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_allclose(coo.to_dense(), dense)

    def test_from_scipy_roundtrip(self, dense):
        coo = COOMatrix.from_scipy(sp.coo_matrix(dense))
        np.testing.assert_allclose(coo.to_dense(), dense)

    def test_to_scipy(self, dense):
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_allclose(coo.to_scipy().toarray(), dense)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 1], [0], [1.0, 2.0], (2, 2))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 2], [0, 1], [1.0, 2.0], (2, 2))
        with pytest.raises(ValueError):
            COOMatrix([0, 1], [0, 5], [1.0, 2.0], (2, 2))

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([], [], [], (-1, 2))

    def test_empty_matrix(self):
        coo = COOMatrix([], [], [], (3, 4))
        assert coo.nnz == 0
        assert coo.density == 0.0
        np.testing.assert_allclose(coo.to_dense(), np.zeros((3, 4)))

    def test_duplicates_sum_in_to_dense(self):
        coo = COOMatrix([0, 0], [1, 1], [2.0, 3.0], (1, 2))
        np.testing.assert_allclose(coo.to_dense(), [[0.0, 5.0]])

    def test_properties(self, dense):
        coo = COOMatrix.from_dense(dense)
        assert coo.nnz == np.count_nonzero(dense)
        assert coo.density == pytest.approx(np.count_nonzero(dense) / dense.size)
        assert coo.nbytes > 0
        assert coo.nnz_per_row().sum() == coo.nnz

    def test_unhashable(self, dense):
        with pytest.raises(TypeError):
            hash(COOMatrix.from_dense(dense))


class TestCOOOperations:
    def test_transpose(self, dense):
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_allclose(coo.T.to_dense(), dense.T)

    def test_copy_is_deep(self, dense):
        coo = COOMatrix.from_dense(dense)
        other = coo.copy()
        other.values[:] = 0.0
        assert coo.values.any()

    def test_scale(self, dense):
        coo = COOMatrix.from_dense(dense)
        np.testing.assert_allclose(coo.scale(2.0).to_dense(), 2.0 * dense)

    def test_select_rows(self, dense):
        coo = COOMatrix.from_dense(dense)
        sub = coo.select_rows(np.array([1, 3, 5]))
        np.testing.assert_allclose(sub.to_dense(), dense[[1, 3, 5]])

    def test_select_rows_out_of_bounds(self, dense):
        with pytest.raises(IndexError):
            COOMatrix.from_dense(dense).select_rows(np.array([10]))

    def test_matvec(self, dense):
        coo = COOMatrix.from_dense(dense)
        x = np.arange(dense.shape[1], dtype=float)
        np.testing.assert_allclose(coo.matvec(x), dense @ x)

    def test_matvec_matrix_argument(self, dense):
        coo = COOMatrix.from_dense(dense)
        X = np.random.default_rng(1).standard_normal((dense.shape[1], 3))
        np.testing.assert_allclose(coo.matvec(X), dense @ X)

    def test_matvec_dimension_mismatch(self, dense):
        with pytest.raises(ValueError):
            COOMatrix.from_dense(dense).matvec(np.ones(dense.shape[1] + 1))

    def test_equality(self, dense):
        a = COOMatrix.from_dense(dense)
        b = COOMatrix.from_dense(dense)
        assert a == b


class TestCSR:
    def test_coo_csr_roundtrip(self, dense):
        coo = COOMatrix.from_dense(dense)
        csr = coo.tocsr()
        np.testing.assert_allclose(csr.to_dense(), dense)
        np.testing.assert_allclose(csr.tocoo().to_dense(), dense)

    def test_from_dense(self, dense):
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_from_scipy(self, dense):
        csr = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        np.testing.assert_allclose(csr.to_dense(), dense)
        np.testing.assert_allclose(csr.to_scipy().toarray(), dense)

    def test_invalid_indptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1], [0], [1.0], (2, 2))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRMatrix([1, 1, 1], [], [], (2, 2))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 2))

    def test_column_bounds(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1, 2], [0, 7], [1.0, 2.0], (2, 2))

    def test_matmul_dense(self, dense):
        csr = CSRMatrix.from_dense(dense)
        X = np.random.default_rng(2).standard_normal((dense.shape[1], 4))
        np.testing.assert_allclose(csr.matmul_dense(X), dense @ X)

    def test_matmul_dimension_mismatch(self, dense):
        csr = CSRMatrix.from_dense(dense)
        with pytest.raises(ValueError):
            csr.matmul_dense(np.ones((dense.shape[1] + 1, 2)))

    def test_matvec(self, dense):
        csr = CSRMatrix.from_dense(dense)
        x = np.arange(dense.shape[1], dtype=float)
        np.testing.assert_allclose(csr.matvec(x), dense @ x)

    def test_transpose(self, dense):
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.T.to_dense(), dense.T)

    def test_row_slice(self, dense):
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.row_slice(2, 5).to_dense(), dense[2:5])

    def test_row_slice_bounds(self, dense):
        csr = CSRMatrix.from_dense(dense)
        with pytest.raises(IndexError):
            csr.row_slice(0, dense.shape[0] + 1)

    def test_nnz_per_row(self, dense):
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.nnz_per_row(), (dense != 0).sum(axis=1))

    def test_equality_and_copy(self, dense):
        a = CSRMatrix.from_dense(dense)
        b = a.copy()
        assert a == b
        b.data[:] = 0.0
        assert not (a == b)

    def test_unhashable(self, dense):
        with pytest.raises(TypeError):
            hash(CSRMatrix.from_dense(dense))
