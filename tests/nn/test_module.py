"""Tests for the Module / Parameter abstractions."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 3)))
        self.bias = Parameter(np.zeros(3))

    def forward(self, x):
        return x @ self.weight + self.bias


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.first = Leaf()
        self.second = Leaf()
        self.scale = Parameter(np.array([2.0]))


class TestParameter:
    def test_requires_grad_by_default(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_always_float(self):
        p = Parameter(np.array([1, 2, 3]))
        assert np.issubdtype(p.dtype, np.floating)

    def test_named_on_registration(self):
        leaf = Leaf()
        assert leaf.weight.name == "weight"


class TestRegistration:
    def test_parameters_discovered(self):
        leaf = Leaf()
        names = dict(leaf.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules_discovered(self):
        comp = Composite()
        names = dict(comp.named_parameters())
        assert set(names) == {
            "scale", "first.weight", "first.bias", "second.weight", "second.bias"
        }

    def test_reassignment_removes_old_registration(self):
        leaf = Leaf()
        leaf.weight = "not a parameter"
        assert set(dict(leaf.named_parameters())) == {"bias"}

    def test_register_parameter_type_check(self):
        leaf = Leaf()
        with pytest.raises(TypeError):
            leaf.register_parameter("x", Tensor(np.zeros(2)))

    def test_modules_iteration(self):
        comp = Composite()
        assert len(list(comp.modules())) == 3

    def test_num_parameters_and_bytes(self):
        leaf = Leaf()
        assert leaf.num_parameters() == 9
        assert leaf.parameter_nbytes() == 9 * 8


class TestStateDict:
    def test_round_trip(self):
        a, b = Composite(), Composite()
        for p in a.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        leaf = Leaf()
        state = leaf.state_dict()
        state["weight"][...] = 99.0
        assert not np.any(leaf.weight.data == 99.0)

    def test_strict_missing_key(self):
        leaf = Leaf()
        with pytest.raises(KeyError):
            leaf.load_state_dict({"weight": np.ones((2, 3))})

    def test_non_strict_partial_load(self):
        leaf = Leaf()
        leaf.load_state_dict({"weight": np.full((2, 3), 7.0)}, strict=False)
        np.testing.assert_allclose(leaf.weight.data, 7.0)

    def test_shape_mismatch(self):
        leaf = Leaf()
        with pytest.raises(ValueError):
            leaf.load_state_dict({"weight": np.ones((3, 3)), "bias": np.zeros(3)})


class TestModes:
    def test_zero_grad(self):
        leaf = Leaf()
        leaf.forward(Tensor(np.ones((4, 2)))).sum().backward()
        assert leaf.weight.grad is not None
        leaf.zero_grad()
        assert leaf.weight.grad is None

    def test_train_eval_recursive(self):
        comp = Composite()
        comp.eval()
        assert not comp.first.training
        comp.train()
        assert comp.second.training

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
