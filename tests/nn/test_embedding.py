"""Tests for Embedding, StackedEmbedding, and MemoryMappedEmbedding."""

import numpy as np
import pytest

from repro.nn import Embedding, MemoryMappedEmbedding, StackedEmbedding


class TestEmbedding:
    def test_lookup_shape_and_values(self):
        emb = Embedding(10, 4, rng=0)
        idx = np.array([1, 1, 7])
        out = emb(idx)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data, emb.weight.data[idx])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)
        with pytest.raises(ValueError):
            Embedding(4, 0)

    def test_deterministic_init_with_seed(self):
        a, b = Embedding(10, 4, rng=3), Embedding(10, 4, rng=3)
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_gradient_flows_to_weight(self):
        emb = Embedding(5, 3, rng=0)
        emb(np.array([0, 0, 2])).sum().backward()
        assert emb.weight.grad is not None
        np.testing.assert_allclose(emb.weight.grad[0], np.full(3, 2.0))

    def test_renormalize_l2(self):
        emb = Embedding(5, 3, rng=0)
        emb.weight.data *= 10.0
        emb.renormalize(max_norm=1.0, p=2)
        norms = np.linalg.norm(emb.weight.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_renormalize_does_not_upscale_small_rows(self):
        emb = Embedding(5, 3, rng=0)
        emb.weight.data[:] = 0.01
        before = emb.weight.data.copy()
        emb.renormalize(max_norm=1.0, p=2)
        np.testing.assert_allclose(emb.weight.data, before)

    def test_renormalize_l1_and_invalid_p(self):
        emb = Embedding(5, 3, rng=0)
        emb.weight.data *= 10.0
        emb.renormalize(max_norm=1.0, p=1)
        assert np.all(np.abs(emb.weight.data).sum(axis=1) <= 1.0 + 1e-9)
        with pytest.raises(ValueError):
            emb.renormalize(p=3)


class TestStackedEmbedding:
    def test_block_views(self):
        emb = StackedEmbedding(6, 3, 4, rng=0)
        assert emb.entity_embeddings().shape == (6, 4)
        assert emb.relation_embeddings().shape == (3, 4)
        assert emb.num_rows == 9
        np.testing.assert_allclose(
            np.vstack([emb.entity_embeddings(), emb.relation_embeddings()]),
            emb.weight.data,
        )

    def test_gather_entities_and_relations(self):
        emb = StackedEmbedding(6, 3, 4, rng=1)
        ents = emb.gather_entities(np.array([0, 5]))
        rels = emb.gather_relations(np.array([0, 2]))
        np.testing.assert_allclose(ents.data, emb.weight.data[[0, 5]])
        np.testing.assert_allclose(rels.data, emb.weight.data[[6, 8]])

    def test_gather_bounds(self):
        emb = StackedEmbedding(6, 3, 4, rng=1)
        with pytest.raises(IndexError):
            emb.gather_entities(np.array([6]))
        with pytest.raises(IndexError):
            emb.gather_relations(np.array([3]))

    def test_renormalize_entities_leaves_relations(self):
        emb = StackedEmbedding(6, 3, 4, rng=2)
        emb.weight.data *= 10.0
        rel_before = emb.relation_embeddings().copy()
        emb.renormalize_entities(max_norm=1.0)
        assert np.all(np.linalg.norm(emb.entity_embeddings(), axis=1) <= 1.0 + 1e-9)
        np.testing.assert_allclose(emb.relation_embeddings(), rel_before)

    def test_load_pretrained(self):
        emb = StackedEmbedding(4, 2, 3, rng=0)
        ents = np.full((4, 3), 2.0)
        rels = np.full((2, 3), -1.0)
        emb.load_pretrained(entity_matrix=ents, relation_matrix=rels)
        np.testing.assert_allclose(emb.entity_embeddings(), ents)
        np.testing.assert_allclose(emb.relation_embeddings(), rels)

    def test_load_pretrained_shape_check(self):
        emb = StackedEmbedding(4, 2, 3, rng=0)
        with pytest.raises(ValueError):
            emb.load_pretrained(entity_matrix=np.zeros((3, 3)))
        with pytest.raises(ValueError):
            emb.load_pretrained(relation_matrix=np.zeros((2, 4)))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            StackedEmbedding(0, 2, 3)


class TestMemoryMappedEmbedding:
    def test_lookup_matches_memmap(self, tmp_path):
        path = str(tmp_path / "emb.bin")
        emb = MemoryMappedEmbedding(10, 2, 4, path=path, rng=0)
        rows = np.array([0, 3, 11])
        out = emb.lookup(rows)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out, np.asarray(emb._memmap)[rows])
        emb.close()

    def test_forward_returns_grad_leaf(self, tmp_path):
        emb = MemoryMappedEmbedding(6, 2, 3, path=str(tmp_path / "e.bin"), rng=0)
        t = emb.forward(np.array([1, 2]))
        assert t.requires_grad
        emb.close()

    def test_apply_row_update_sgd(self, tmp_path):
        emb = MemoryMappedEmbedding(6, 2, 3, path=str(tmp_path / "e.bin"), rng=0)
        rows = np.array([1, 1, 4])
        before = emb.lookup(np.array([1, 4]))
        grad = np.ones((3, 3))
        emb.apply_row_update(rows, grad, lr=0.1)
        after = emb.lookup(np.array([1, 4]))
        # Row 1 appears twice in the update, row 4 once.
        np.testing.assert_allclose(after[0], before[0] - 0.2)
        np.testing.assert_allclose(after[1], before[1] - 0.1)
        emb.close()

    def test_apply_row_update_shape_check(self, tmp_path):
        emb = MemoryMappedEmbedding(6, 2, 3, path=str(tmp_path / "e.bin"), rng=0)
        with pytest.raises(ValueError):
            emb.apply_row_update(np.array([0]), np.ones((2, 3)), lr=0.1)
        emb.close()

    def test_temporary_file_cleanup(self):
        emb = MemoryMappedEmbedding(4, 1, 2, rng=0)
        path = emb.path
        import os
        assert os.path.exists(path)
        emb.close()
        assert not os.path.exists(path)
