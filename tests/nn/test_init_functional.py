"""Tests for initializers and the dissimilarity dispatch."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import functional, init
from repro.nn.parameter import Parameter


class TestInitializers:
    def test_uniform_bounds(self):
        p = Parameter(np.empty((100, 10)))
        init.uniform_(p, -0.5, 0.5, rng=0)
        assert p.data.min() >= -0.5 and p.data.max() <= 0.5

    def test_normal_moments(self):
        p = Parameter(np.empty((200, 50)))
        init.normal_(p, mean=1.0, std=0.1, rng=0)
        assert abs(p.data.mean() - 1.0) < 0.01
        assert abs(p.data.std() - 0.1) < 0.01

    def test_xavier_uniform_bound(self):
        p = Parameter(np.empty((30, 20)))
        init.xavier_uniform_(p, rng=0)
        bound = np.sqrt(6.0 / 50)
        assert np.all(np.abs(p.data) <= bound + 1e-12)

    def test_xavier_normal_std(self):
        p = Parameter(np.empty((300, 200)))
        init.xavier_normal_(p, rng=0)
        assert abs(p.data.std() - np.sqrt(2.0 / 500)) < 0.005

    def test_xavier_rejects_scalars(self):
        with pytest.raises(ValueError):
            init.xavier_uniform_(Parameter(np.array(1.0)))

    def test_zeros(self):
        p = Parameter(np.ones((3, 3)))
        init.zeros_(p)
        assert np.all(p.data == 0)

    def test_identity_stack(self):
        p = Parameter(np.empty((4, 3, 5)))
        init.identity_stack_(p)
        expected = np.eye(3, 5)
        for r in range(4):
            np.testing.assert_allclose(p.data[r], expected)

    def test_identity_stack_requires_3d(self):
        with pytest.raises(ValueError):
            init.identity_stack_(Parameter(np.empty((3, 3))))

    def test_deterministic_given_seed(self):
        a, b = Parameter(np.empty((5, 5))), Parameter(np.empty((5, 5)))
        init.xavier_uniform_(a, rng=42)
        init.xavier_uniform_(b, rng=42)
        np.testing.assert_allclose(a.data, b.data)


class TestDissimilarityDispatch:
    def test_known_names(self):
        for name in ("L1", "L2", "squared_L2", "torus_L1", "torus_L2"):
            assert callable(functional.get_dissimilarity(name))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            functional.get_dissimilarity("L3")

    def test_callable_passthrough(self):
        fn = lambda x: x
        assert functional.get_dissimilarity(fn) is fn

    def test_l2_values(self):
        x = Tensor([[3.0, 4.0]])
        np.testing.assert_allclose(functional.l2_dissimilarity(x).data, [5.0], rtol=1e-6)

    def test_l1_values(self):
        x = Tensor([[3.0, -4.0]])
        np.testing.assert_allclose(functional.l1_dissimilarity(x).data, [7.0])

    def test_squared_l2_values(self):
        x = Tensor([[3.0, 4.0]])
        np.testing.assert_allclose(functional.squared_l2_dissimilarity(x).data, [25.0])

    def test_torus_values(self):
        x = Tensor([[0.9, 0.2]])
        np.testing.assert_allclose(functional.l1_torus_dissimilarity(x).data, [0.3],
                                   rtol=1e-10)
        np.testing.assert_allclose(functional.l2_torus_dissimilarity(x).data,
                                   [0.01 + 0.04], rtol=1e-10)
