"""PartitionedEmbedding mechanics: residency, write-back, storage lifecycle."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn import (
    DenseSliceTable,
    Embedding,
    MemoryMappedEmbedding,
    PartitionedEmbedding,
    StackedEmbedding,
    partitioned_tables,
)
from repro.nn.partitioned import PARTITION_MANIFEST, bucket_filename
from repro.optim import Adam
from repro.partition import EntityPartition
from repro.sparse.rowsparse import RowSparseGrad


N, R, D = 103, 7, 12


@pytest.fixture
def table(tmp_path):
    t = PartitionedEmbedding(N, R, D, partitions=4, rng=42,
                             directory=str(tmp_path / "buckets"), max_resident=2)
    yield t
    t.close()


class TestEntityPartition:
    def test_ranges_cover_all_rows(self):
        part = EntityPartition(N, 4)
        ranges = part.ranges()
        assert ranges[0][0] == 0 and ranges[-1][1] == N
        assert all(hi == lo_next for (_, hi), (lo_next, _) in zip(ranges, ranges[1:]))

    def test_bucket_of_matches_ranges(self):
        part = EntityPartition(N, 4)
        ids = np.arange(N)
        buckets = part.bucket_of(ids)
        for k, (lo, hi) in enumerate(part.ranges()):
            assert np.all(buckets[lo:hi] == k)

    def test_invalid_partitions_rejected(self):
        with pytest.raises(ValueError):
            EntityPartition(10, 0)
        with pytest.raises(ValueError):
            EntityPartition(10, 11)

    def test_layouts_with_empty_trailing_buckets_rejected(self):
        """n=5, P=4 would give ceil-sized buckets (2,2,1,<empty>) — rejected
        with a usable suggestion instead of a negative-size crash downstream."""
        with pytest.raises(ValueError, match="at most 3 partitions"):
            EntityPartition(5, 4)
        # the suggested count is valid and covers every row
        part = EntityPartition(5, 3)
        assert [part.bucket_rows(k) for k in range(3)] == [2, 2, 1]

    def test_uneven_final_bucket_supported(self):
        from repro.nn import PartitionedEmbedding

        table = PartitionedEmbedding(7, 2, 4, partitions=4, rng=0)
        assert [p.shape[0] for p in table.bucket_parameters()] == [2, 2, 2, 1]
        assert table.to_matrix().shape == (7, 4)
        table.close()


class TestInitParity:
    def test_matches_stacked_embedding_bitwise(self, table):
        """The partitioned init consumes the same Xavier stream as a stacked
        table of the same (N + R, d) shape, bucket by bucket."""
        stacked = StackedEmbedding(N, R, D, rng=42)
        assert np.array_equal(table.to_matrix(), stacked.entity_embeddings())
        assert np.array_equal(table.relations.data, stacked.relation_embeddings())


class TestResidency:
    def test_lru_bound_holds(self, table):
        for k in (0, 1, 2, 3, 0, 2):
            table._fault(k)
            assert len(table.resident_buckets()) <= 2
        assert table.stats()["peak_resident"] <= 2

    def test_read_rows_across_buckets(self, table):
        stacked = StackedEmbedding(N, R, D, rng=42)
        ids = np.array([0, 101, 30, 77, 0])
        assert np.array_equal(table.read_rows(ids),
                              stacked.entity_embeddings()[ids])

    def test_writes_survive_eviction(self, table):
        table.write_rows(np.array([0, 102]), np.full((2, D), 3.5))
        for k in range(4):  # churn every bucket through the 2-slot LRU
            table._fault(k)
        assert np.array_equal(table.read_rows(np.array([0, 102])),
                              np.full((2, D), 3.5))
        assert table.stats()["writebacks"] >= 1

    def test_iter_blocks_covers_every_row_in_order(self, table):
        starts, total = [], 0
        for start, block in table.iter_blocks(block_rows=10):
            starts.append(start)
            total += block.shape[0]
        assert total == N
        assert starts == sorted(starts)

    def test_bucket_parameter_metadata_without_fault(self, table):
        param = table.bucket_parameters()[3]
        faults_before = table.stats()["faults"]
        assert param.shape == (table.partition.bucket_rows(3), D)
        assert param.nbytes == param.size * 8
        assert table.stats()["faults"] == faults_before

    def test_data_access_faults_bucket_in(self, table):
        param = table.bucket_parameters()[1]
        assert not param.resident
        _ = param.data
        assert param.resident


class TestStorageLifecycle:
    def test_manifest_roundtrip_and_attach(self, table, tmp_path):
        target = tmp_path / "exported"
        target.mkdir()
        table.flush()
        import shutil

        for k in range(4):
            shutil.copyfile(os.path.join(table.directory, bucket_filename(k)),
                            target / bucket_filename(k))
        table.write_manifest(str(target))
        assert (target / PARTITION_MANIFEST).exists()

        before = table.to_matrix()
        other = PartitionedEmbedding(N, R, D, partitions=4, rng=0,
                                     max_resident=2)
        other.attach_storage(str(target), read_only=True)
        assert np.array_equal(other.to_matrix(), before)
        with pytest.raises(RuntimeError):
            other.write_rows(np.array([0]), np.zeros((1, D)))
        with pytest.raises(RuntimeError):
            other.renormalize_()
        other.close()
        # read-only attach must not have mutated the exported files
        again = PartitionedEmbedding(N, R, D, partitions=4, rng=0)
        again.attach_storage(str(target))
        assert np.array_equal(again.to_matrix(), before)
        again.close()

    def test_attach_rejects_mismatched_geometry(self, table, tmp_path):
        other = PartitionedEmbedding(N, R, D, partitions=2, rng=0)
        table.write_manifest(table.directory)
        with pytest.raises(ValueError):
            other.attach_storage(table.directory)
        other.close()

    def test_rehome_isolates_storage(self, table, tmp_path):
        original_dir = table.directory
        new_dir = table.rehome(str(tmp_path / "rehomed"))
        assert new_dir != original_dir
        table.write_rows(np.array([0]), np.full((1, D), 9.0))
        table.flush()
        # the original file is untouched by post-rehome writes
        original = np.load(os.path.join(original_dir, bucket_filename(0)))
        assert not np.array_equal(original[0], np.full(D, 9.0))

    def test_renormalize_matches_stacked(self, table):
        stacked = StackedEmbedding(N, R, D, rng=42)
        stacked.renormalize_entities(max_norm=0.25, p=2)
        table.renormalize_(max_norm=0.25, p=2)
        assert np.array_equal(table.to_matrix(), stacked.entity_embeddings())


class TestOptimizerStatePaging:
    def test_adam_state_pages_with_bucket(self, table):
        param = table.bucket_parameters()[0]
        optimizer = Adam([param, table.relations], lr=0.1)
        table.attach_optimizer(optimizer)
        grad = RowSparseGrad(np.array([0, 1]), np.ones((2, D)), param.shape)
        param.accumulate_grad(grad)
        optimizer.step()
        m_before = optimizer.state[id(param)]["m"].copy()
        # churn bucket 0 out of the resident set: its state must page out
        for k in (1, 2, 3):
            table._fault(k)
        assert id(param) not in optimizer.state
        # touching the state again restores the persisted buffers
        restored = optimizer._param_state(param)
        assert np.array_equal(restored["m"], m_before)
        assert "row_t" in restored and "t" in restored


class TestDenseTableConformance:
    def test_embedding_implements_table(self):
        emb = Embedding(20, 6, rng=1)
        assert emb.n_rows == 20 and emb.n_partitions == 1
        block_rows = [b.shape[0] for _, b in emb.iter_blocks(block_rows=7)]
        assert sum(block_rows) == 20
        ref = emb.weight.data[[3, 5]].copy()
        assert np.array_equal(emb.read_rows(np.array([3, 5])), ref)
        emb.write_rows(np.array([0]), np.zeros((1, 6)))
        assert np.array_equal(emb.weight.data[0], np.zeros(6))

    def test_memmap_implements_table(self):
        emb = MemoryMappedEmbedding(15, 3, 4, rng=1)
        try:
            assert emb.n_rows == 18
            total = sum(b.shape[0] for _, b in emb.iter_blocks(block_rows=5))
            assert total == 18
            emb.write_rows(np.array([2]), np.full((1, 4), 2.0))
            assert np.array_equal(emb.read_rows(np.array([2])), np.full((1, 4), 2.0))
        finally:
            emb.close()

    def test_stacked_exposes_slice_tables(self):
        stacked = StackedEmbedding(10, 4, 6, rng=1)
        ent, rel = stacked.entity_table(), stacked.relation_table()
        assert isinstance(ent, DenseSliceTable)
        assert ent.n_rows == 10 and rel.n_rows == 4
        assert np.array_equal(rel.read_rows(np.array([0])),
                              stacked.relation_embeddings()[[0]])
        # writes go through to the parameter
        ent.write_rows(np.array([1]), np.zeros((1, 6)))
        assert np.array_equal(stacked.entity_embeddings()[1], np.zeros(6))

    def test_partitioned_tables_finder(self, table):
        class Holder:
            def modules(self):
                yield self
                yield table

        assert partitioned_tables(Holder()) == [table]
