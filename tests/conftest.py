"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import KGDataset, TripletBatch, UniformNegativeSampler, generate_synthetic_kg
from repro.utils.seeding import new_rng


@pytest.fixture
def rng():
    """Deterministic generator used by tests that need raw randomness."""
    return new_rng(12345)


@pytest.fixture
def small_kg() -> KGDataset:
    """A tiny synthetic KG (60 entities, 6 relations, 300 triples)."""
    return generate_synthetic_kg(60, 6, 300, rng=7, name="tiny")


@pytest.fixture
def split_kg() -> KGDataset:
    """A synthetic KG with validation and test splits for evaluation tests."""
    return generate_synthetic_kg(
        80, 5, 600, rng=11, name="tiny-split", valid_fraction=0.1, test_fraction=0.1
    )


@pytest.fixture
def small_batch(small_kg) -> TripletBatch:
    """One positive/negative batch of 64 triples from the small KG."""
    sampler = UniformNegativeSampler(small_kg.n_entities, rng=3)
    positives = small_kg.split.train[:64]
    return TripletBatch(positives=positives, negatives=sampler.corrupt(positives))


@pytest.fixture
def random_triples(small_kg) -> np.ndarray:
    """A (32, 3) slice of training triples."""
    return small_kg.split.train[:32]
