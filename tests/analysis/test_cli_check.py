"""End-to-end tests for the ``sptransx check`` CLI and ``--diff`` mode."""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import run_checks
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_project(root: Path, files: dict) -> Path:
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root

BAD_FILES = {
    "src/repro/sparse/mod.py": "import numpy as np\nx = np.empty(3)\n",
}
GOOD_FILES = {
    "src/repro/sparse/mod.py": (
        "import numpy as np\nx = np.empty(3, dtype=np.float64)\n"
    ),
}


class TestCheckCommand:
    def test_known_bad_fixture_exits_nonzero(self, tmp_path, capsys):
        make_project(tmp_path, BAD_FILES)
        assert main(["check", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "dtype-ctor" in out
        assert "src/repro/sparse/mod.py:2" in out

    def test_known_good_fixture_exits_zero(self, tmp_path, capsys):
        make_project(tmp_path, GOOD_FILES)
        assert main(["check", "--root", str(tmp_path)]) == 0
        assert "no invariant violations" in capsys.readouterr().out

    def test_real_repo_is_clean(self, capsys):
        # The acceptance bar: the shipped tree passes its own checker.
        assert main(["check", "--root", str(REPO_ROOT)]) == 0

    def test_json_format(self, tmp_path, capsys):
        make_project(tmp_path, BAD_FILES)
        assert main(["check", "--root", str(tmp_path),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == 1
        assert payload["findings"][0]["rule"] == "dtype-ctor"
        assert payload["findings"][0]["line"] == 2

    def test_rules_restriction(self, tmp_path, capsys):
        make_project(tmp_path, BAD_FILES)
        assert main(["check", "--root", str(tmp_path),
                     "--rules", "lock-discipline"]) == 0

    def test_unknown_rule_rejected(self, tmp_path):
        make_project(tmp_path, GOOD_FILES)
        with pytest.raises(SystemExit):
            main(["check", "--root", str(tmp_path), "--rules", "no-such-rule"])

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("dtype-ctor", "fork-module-lock", "lock-discipline",
                     "kernel-parity", "registry-roundtrip"):
            assert rule in out

    def test_explicit_paths_restrict_file_checkers(self, tmp_path, capsys):
        files = dict(BAD_FILES)
        files["src/repro/nn/other.py"] = (
            "import numpy as np\ny = np.zeros(2)\n"
        )
        make_project(tmp_path, files)
        assert main(["check", "--root", str(tmp_path),
                     "src/repro/nn/other.py"]) == 1
        out = capsys.readouterr().out
        assert "nn/other.py" in out
        assert "sparse/mod.py" not in out


def _git(root: Path, *argv: str) -> None:
    subprocess.run(
        ["git", "-C", str(root), "-c", "user.name=t",
         "-c", "user.email=t@example.com", *argv],
        check=True,
        capture_output=True,
    )


@pytest.fixture
def git_project(tmp_path):
    """A committed fixture repo: serving/ violation at HEAD, sparse/ clean."""
    make_project(tmp_path, {
        "src/repro/sparse/mod.py": (
            "import numpy as np\nx = np.empty(3, dtype=np.float64)\n"
        ),
        "src/repro/serving/engine.py": (
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        ),
    })
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestDiffMode:
    def test_diff_restricts_to_changed_files(self, git_project):
        # Make sparse/mod.py dirty with a fresh violation; the pre-existing
        # serving/ violation is untouched since HEAD so its *file-scoped*
        # finding (lock-discipline) must not re-report.  Interprocedural
        # rules are project-scoped and re-run whole (like kernel-parity),
        # so lock-state still sees the serving race.
        (git_project / "src/repro/sparse/mod.py").write_text(
            "import numpy as np\nx = np.empty(3)\n", encoding="utf-8"
        )
        findings = run_checks(git_project, diff_ref="HEAD")
        assert {f.rule for f in findings} == {"dtype-ctor", "lock-state"}
        assert not any(
            f.rule == "lock-discipline" for f in findings
        )
        full = run_checks(git_project)
        assert {f.rule for f in full} == {
            "dtype-ctor", "lock-discipline", "lock-state",
        }

    def test_clean_diff_reports_nothing(self, git_project):
        assert run_checks(git_project, diff_ref="HEAD") == []

    def test_changed_test_file_retriggers_project_checker(self, git_project):
        # kernel-parity is project-level; touching only tests/sparse/ must
        # still re-run it (trigger_prefixes), catching a deleted parity test.
        make_project(git_project, {
            "src/repro/sparse/kernels.py": "def spmm(x):\n    return x\n",
            "tests/sparse/test_k.py": "def test_spmm():\n    assert spmm\n",
        })
        _git(git_project, "add", "-A")
        _git(git_project, "commit", "-q", "-m", "kernel + parity test")
        (git_project / "tests/sparse/test_k.py").write_text(
            "def test_nothing():\n    pass\n", encoding="utf-8"
        )
        findings = run_checks(git_project, diff_ref="HEAD")
        parity = [f for f in findings if f.rule == "kernel-parity"]
        assert len(parity) == 1
        assert "spmm" in parity[0].message

    def test_diff_cli_flag(self, git_project, capsys):
        (git_project / "src/repro/sparse/mod.py").write_text(
            "import numpy as np\nx = np.empty(3)\n", encoding="utf-8"
        )
        assert main(["check", "--root", str(git_project),
                     "--diff", "HEAD"]) == 1
        assert "dtype-ctor" in capsys.readouterr().out

    def test_bad_ref_is_a_clean_error(self, git_project):
        with pytest.raises(SystemExit):
            main(["check", "--root", str(git_project),
                  "--diff", "no-such-ref"])


class TestReporters:
    def test_github_format_emits_error_annotations(self, tmp_path, capsys):
        make_project(tmp_path, BAD_FILES)
        assert main(["check", "--root", str(tmp_path),
                     "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=src/repro/sparse/mod.py,line=2,col=5," in out
        assert "title=dtype-ctor::" in out
        assert "sptransx check: 1 violation" in out

    def test_github_format_clean_run(self, tmp_path, capsys):
        make_project(tmp_path, GOOD_FILES)
        assert main(["check", "--root", str(tmp_path),
                     "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out

    def test_fingerprint_survives_line_shift(self, tmp_path, capsys):
        # Baselines must match findings across rebases: the fingerprint
        # hashes rule + path + snippet, never the line number.
        def fingerprint():
            main(["check", "--root", str(tmp_path), "--format", "json"])
            payload = json.loads(capsys.readouterr().out)
            (finding,) = payload["findings"]
            return finding["line"], finding["fingerprint"]

        make_project(tmp_path, BAD_FILES)
        line_a, fp_a = fingerprint()
        shifted = "import numpy as np\n\n\nx = np.empty(3)\n"
        make_project(tmp_path, {"src/repro/sparse/mod.py": shifted})
        line_b, fp_b = fingerprint()
        assert line_a != line_b
        assert fp_a == fp_b
