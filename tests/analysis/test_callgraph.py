"""Tests for the interprocedural engine: call graph + CFG/dataflow.

The fixtures are miniature projects in the real ``src/repro`` layout, so
keys come out exactly as checkers see them (``"serving/engine.py::C.m"``).
The last test class documents the *known-unresolvable* shapes: dynamic
dispatch must land in ``CallGraph.unresolved`` — never produce a wrong
edge — so checkers degrade gracefully (no edge ⇒ no claim).
"""

import ast
import textwrap
from pathlib import Path

from repro.analysis import CallGraph, Project, walk_shallow
from repro.analysis.dataflow import (
    ForwardAnalysis,
    Transfer,
    build_cfg,
)


def make_graph(tmp_path: Path, files: dict) -> CallGraph:
    """Write ``{package_relpath: source}`` and build the call graph."""
    for relpath, text in files.items():
        path = tmp_path / "src/repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return CallGraph.for_project(Project(tmp_path))


def callees(graph: CallGraph, key: str) -> set:
    return {site.callee for site in graph.calls_in(key) if site.callee}


class TestDirectCalls:
    def test_same_module_function_call(self, tmp_path):
        graph = make_graph(tmp_path, {"util/a.py": """\
            def helper():
                return 1

            def main():
                return helper()
        """})
        assert callees(graph, "util/a.py::main") == {"util/a.py::helper"}
        back = graph.callers_of("util/a.py::helper")
        assert [site.caller for site in back] == ["util/a.py::main"]

    def test_self_method_call_resolves(self, tmp_path):
        graph = make_graph(tmp_path, {"serving/engine.py": """\
            class Engine:
                def run(self):
                    self._step()

                def _step(self):
                    pass
        """})
        assert callees(graph, "serving/engine.py::Engine.run") == {
            "serving/engine.py::Engine._step"
        }

    def test_self_call_through_base_class(self, tmp_path):
        graph = make_graph(tmp_path, {"serving/engine.py": """\
            class Base:
                def save(self):
                    pass

            class Engine(Base):
                def run(self):
                    self.save()
        """})
        # MRO walk: Engine has no save(), the edge lands on Base.save.
        assert callees(graph, "serving/engine.py::Engine.run") == {
            "serving/engine.py::Base.save"
        }

    def test_constructor_call_marks_instantiates(self, tmp_path):
        graph = make_graph(tmp_path, {"serving/cache.py": """\
            class LRUCache:
                def __init__(self, cap):
                    self.cap = cap

            def build():
                return LRUCache(8)
        """})
        (site,) = graph.calls_in("serving/cache.py::build")
        assert site.instantiates == "serving/cache.py::LRUCache"
        assert site.callee == "serving/cache.py::LRUCache.__init__"


class TestCrossModule:
    FILES = {
        "data/store.py": """\
            class Store:
                def get(self, key):
                    return key

            def open_store(path):
                return Store()
        """,
        "serving/engine.py": """\
            from repro.data.store import Store, open_store

            def load(path):
                return open_store(path)

            class Engine:
                def __init__(self):
                    self.store = Store()

                def lookup(self, key):
                    return self.store.get(key)
        """,
    }

    def test_from_import_symbol_call(self, tmp_path):
        graph = make_graph(tmp_path, self.FILES)
        assert callees(graph, "serving/engine.py::load") == {
            "data/store.py::open_store"
        }

    def test_ctor_typed_attribute_method_call(self, tmp_path):
        # self.store = Store() in __init__ types the attribute, so
        # self.store.get() resolves across the module boundary.
        graph = make_graph(tmp_path, self.FILES)
        assert callees(graph, "serving/engine.py::Engine.lookup") == {
            "data/store.py::Store.get"
        }

    def test_module_alias_attribute_call(self, tmp_path):
        graph = make_graph(tmp_path, {
            "data/store.py": self.FILES["data/store.py"],
            "serving/engine.py": """\
                import repro.data.store as store_mod

                def load(path):
                    return store_mod.open_store(path)
            """,
        })
        assert callees(graph, "serving/engine.py::load") == {
            "data/store.py::open_store"
        }

    def test_import_closure_includes_ancestor_inits(self, tmp_path):
        graph = make_graph(tmp_path, {
            "data/__init__.py": "",
            "data/store.py": "X = 1\n",
            "serving/engine.py": "from repro.data import store\n",
        })
        imported = graph.modules["serving/engine.py"].symbols.imported_modules
        # Importing repro.data.store executes repro/data/__init__.py too.
        assert imported == {"data/store.py", "data/__init__.py"}


class TestScopes:
    def test_nested_function_calls_not_attributed_to_outer(self, tmp_path):
        graph = make_graph(tmp_path, {"util/a.py": """\
            def target():
                pass

            def outer():
                def inner():
                    target()
                return inner
        """})
        # inner() runs later (callback/thread), so its call edge belongs
        # to the closure's own entry, not to outer().
        assert callees(graph, "util/a.py::outer") == set()
        assert callees(graph, "util/a.py::outer.<locals>.inner") == {
            "util/a.py::target"
        }

    def test_module_body_is_its_own_function(self, tmp_path):
        graph = make_graph(tmp_path, {"util/a.py": """\
            def setup():
                pass

            setup()
        """})
        assert callees(graph, "util/a.py::<module>") == {"util/a.py::setup"}
        # iter_functions() yields definitions only, never module bodies.
        quals = {fn.qualname for fn in graph.iter_functions()}
        assert quals == {"setup"}

    def test_walk_shallow_stops_at_nested_defs(self):
        tree = ast.parse(textwrap.dedent("""\
            def outer():
                a = 1
                def inner():
                    b = 2
        """)).body[0]
        names = {node.id for node in walk_shallow(tree)
                 if isinstance(node, ast.Name)}
        assert "a" in names
        assert "b" not in names  # inner's body is a different scope
        # ...but the nested def itself is yielded, so a visitor can see it.
        assert any(isinstance(node, ast.FunctionDef) and node.name == "inner"
                   for node in walk_shallow(tree))


class TestKnownUnresolvable:
    """Dynamic shapes the graph must refuse to resolve (documented limits)."""

    def test_registry_dispatch_is_unresolved(self, tmp_path):
        graph = make_graph(tmp_path, {"models/registry.py": """\
            _REGISTRY = {}

            def lookup(name):
                return _REGISTRY[name]

            def build(name):
                return lookup(name)()
        """})
        sites = graph.calls_in("models/registry.py::build")
        outer = [s for s in sites if s.name == "lookup()"]
        assert len(outer) == 1
        # lookup(name) resolves; calling its *result* cannot.
        assert outer[0].callee is None
        assert outer[0] in graph.unresolved

    def test_getattr_and_callable_values_are_unresolved(self, tmp_path):
        graph = make_graph(tmp_path, {"util/a.py": """\
            def run(obj, fn):
                getattr(obj, "step")()
                fn()
        """})
        assert callees(graph, "util/a.py::run") == set()
        assert len(graph.unresolved) >= 2

    def test_display_falls_back_to_key(self, tmp_path):
        graph = make_graph(tmp_path, {"util/a.py": "def f():\n    pass\n"})
        assert graph.display("util/a.py::f") == "f()"
        assert graph.display("no/such.py::g") == "no/such.py::g"


# --------------------------------------------------------------------- #
# CFG / dataflow
# --------------------------------------------------------------------- #
def parse_func(source: str) -> ast.FunctionDef:
    return ast.parse(textwrap.dedent(source)).body[0]


class _AssignedNames(Transfer):
    """Toy may-analysis: the set of names assigned on some path."""

    def initial(self):
        return frozenset()

    def copy(self, state):
        return state

    def join(self, a, b):
        return a | b

    def transfer(self, node, state):
        if node.kind == "stmt" and isinstance(node.stmt, ast.Assign):
            extra = {t.id for t in node.stmt.targets
                     if isinstance(t, ast.Name)}
            return state | frozenset(extra)
        return state


class TestCFG:
    def test_branches_rejoin_at_exit(self):
        func = parse_func("""\
            def f(flag):
                if flag:
                    a = 1
                else:
                    b = 2
                c = 3
        """)
        analysis = ForwardAnalysis(build_cfg(func), _AssignedNames()).run()
        # Path-insensitive join: both branch facts reach the exit.
        assert analysis.exit_state() == frozenset({"a", "b", "c"})

    def test_with_produces_enter_and_exit_nodes(self):
        func = parse_func("""\
            def f(path):
                with open(path) as fh:
                    data = fh.read()
        """)
        kinds = [node.kind for node in build_cfg(func).nodes]
        assert kinds.count("with-enter") == 1
        assert kinds.count("with-exit") == 1

    def test_early_return_routes_through_finally(self):
        func = parse_func("""\
            def f(flag):
                try:
                    if flag:
                        return 1
                finally:
                    cleanup = 1
                after = 1
        """)
        analysis = ForwardAnalysis(build_cfg(func), _AssignedNames()).run()
        # The return path runs a *copy* of the finally body, so `cleanup`
        # is assigned on every path out — including the early return.
        assert "cleanup" in analysis.exit_state()

    def test_explicit_raise_flows_to_raise_exit(self):
        func = parse_func("""\
            def f():
                bad = 1
                raise ValueError(bad)
        """)
        analysis = ForwardAnalysis(build_cfg(func), _AssignedNames()).run()
        assert analysis.exit_state() is None  # no normal path out
        assert analysis.raise_state() == frozenset({"bad"})

    def test_loop_reaches_fixpoint(self):
        func = parse_func("""\
            def f(items):
                for item in items:
                    if item:
                        found = 1
                done = 1
        """)
        analysis = ForwardAnalysis(build_cfg(func), _AssignedNames()).run()
        assert analysis.exit_state() == frozenset({"found", "done"})

    def test_except_handler_sees_partial_body(self):
        func = parse_func("""\
            def f():
                try:
                    a = 1
                    b = 2
                except ValueError:
                    c = 3
        """)
        analysis = ForwardAnalysis(build_cfg(func), _AssignedNames()).run()
        # An exception may surface between the two assigns; the handler
        # join therefore includes the a-only prefix state.
        assert analysis.exit_state() == frozenset({"a", "b", "c"})
