"""Fixture-driven tests for the ``sptransx check`` static-analysis rules.

Each fixture is a miniature project in a tmpdir using the same
``src/repro`` + ``tests/`` layout as the real repo, so the tests exercise
the actual driver (discovery, scoping, suppression filtering) — not just
the visitors.
"""

from pathlib import Path

import pytest

from repro.analysis import Finding, iter_checkers, iter_rules, run_checks


def make_project(tmp_path: Path, files: dict) -> Path:
    """Write ``{relpath: source}`` into a repo-shaped tmpdir."""
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return tmp_path


def rules_of(findings) -> set:
    return {f.rule for f in findings}


class TestFramework:
    def test_all_fourteen_rules_registered(self):
        rule_ids = {rule for rule, _ in iter_rules()}
        assert rule_ids == {
            "dtype-ctor",
            "dtype-promotion",
            "fork-module-lock",
            "fork-sqlite",
            "fork-atexit",
            "fork-taint",
            "lock-discipline",
            "lock-state",
            "kernel-parity",
            "registry-model",
            "registry-roundtrip",
            "resource-lifecycle",
            "suppression-unused",
            "ann-recall",
        }

    def test_every_checker_describes_itself(self):
        for checker in iter_checkers():
            assert checker.name and checker.rule_ids and checker.description

    def test_empty_project_is_clean(self, tmp_path):
        assert run_checks(tmp_path) == []

    def test_findings_sorted_and_serialisable(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/b.py": "import numpy as np\nx = np.empty(3)\n",
            "src/repro/sparse/a.py": "import numpy as np\ny = np.zeros(3)\n",
        })
        findings = run_checks(tmp_path)
        assert [f.path for f in findings] == [
            "src/repro/sparse/a.py", "src/repro/sparse/b.py",
        ]
        payload = findings[0].to_dict()
        assert payload["rule"] == "dtype-ctor"
        assert payload["line"] == 2


class TestDtypeChecker:
    def test_bare_ctor_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "def f(n):\n"
                "    return np.empty(n)\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["dtype-ctor"])
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "np.empty" in findings[0].message

    def test_explicit_dtype_passes(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "def f(n, dt):\n"
                "    a = np.empty(n, dtype=dt)\n"
                "    b = np.zeros((n, 2), dtype=np.float64)\n"
                "    c = np.arange(n, dtype=np.int64)\n"
                "    return a, b, c\n"
            ),
        })
        assert run_checks(tmp_path, rules=["dtype-ctor"]) == []

    def test_astype_builtin_float_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/nn/mod.py": (
                "def f(x):\n"
                "    return x.astype(float)\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["dtype-promotion"])
        assert len(findings) == 1
        assert "astype(float)" in findings[0].message

    def test_dtype_builtin_kwarg_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/losses/mod.py": (
                "import numpy as np\n"
                "x = np.zeros(4, dtype=float)\n"
            ),
        })
        assert rules_of(run_checks(tmp_path)) == {"dtype-promotion"}

    def test_float_literal_array_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/evaluation/mod.py": (
                "import numpy as np\n"
                "x = np.array([1.0, 2.0])\n"
            ),
        })
        assert rules_of(run_checks(tmp_path)) == {"dtype-promotion"}

    def test_out_of_scope_module_ignored(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/utils/mod.py": "import numpy as np\nx = np.empty(3)\n",
        })
        assert run_checks(tmp_path, rules=["dtype-ctor"]) == []


class TestForkSafetyChecker:
    def _trainer(self, body: str = "") -> str:
        return "from repro.training import helpers\n" + body

    def test_module_level_lock_in_import_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/training/multiprocess.py": self._trainer(),
            "src/repro/training/helpers.py": (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["fork-module-lock"])
        assert len(findings) == 1
        assert findings[0].path == "src/repro/training/helpers.py"

    def test_aliased_lock_import_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/training/multiprocess.py": (
                "from threading import RLock as L\n"
                "_GUARD = L()\n"
            ),
        })
        assert rules_of(run_checks(tmp_path)) == {"fork-module-lock"}

    def test_sqlite_connect_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/training/multiprocess.py": (
                "import sqlite3\n"
                "def open_store(path):\n"
                "    return sqlite3.connect(path)\n"
            ),
        })
        assert rules_of(run_checks(tmp_path)) == {"fork-sqlite"}

    def test_atexit_register_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/training/multiprocess.py": (
                "import atexit\n"
                "def install(handler):\n"
                "    atexit.register(handler)\n"
            ),
        })
        assert rules_of(run_checks(tmp_path)) == {"fork-atexit"}

    def test_instance_lock_passes(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/training/multiprocess.py": (
                "import threading\n"
                "class T:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
            ),
        })
        assert run_checks(tmp_path) == []

    def test_unimported_module_not_in_scope(self, tmp_path):
        # The lock lives in a module the trainer never imports: not in the
        # fork closure, so fork-safety has nothing to say about it.
        make_project(tmp_path, {
            "src/repro/training/multiprocess.py": "x = 1\n",
            "src/repro/serving/helpers.py": (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
            ),
        })
        assert run_checks(tmp_path, rules=["fork-module-lock"]) == []


_LOCKED_CLASS = """\
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        {bump_body}

    def _reset_locked(self):
        self.count = 0
"""


class TestLockDisciplineChecker:
    def test_unlocked_mutation_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/serving/engine.py": _LOCKED_CLASS.format(
                bump_body="self.count += 1"
            ),
        })
        findings = run_checks(tmp_path, rules=["lock-discipline"])
        assert len(findings) == 1
        assert "Engine.bump" in findings[0].message
        assert "self._lock" in findings[0].message

    def test_locked_mutation_passes(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/serving/engine.py": _LOCKED_CLASS.format(
                bump_body="with self._lock:\n            self.count += 1"
            ),
        })
        assert run_checks(tmp_path, rules=["lock-discipline"]) == []

    def test_locked_suffix_method_exempt(self, tmp_path):
        # _reset_locked mutates self.count bare, but the suffix marks the
        # caller-holds-lock convention.
        make_project(tmp_path, {
            "src/repro/serving/engine.py": _LOCKED_CLASS.format(
                bump_body="with self._lock:\n            self._reset_locked()"
            ),
        })
        assert run_checks(tmp_path, rules=["lock-discipline"]) == []

    def test_nested_callback_loses_the_lock(self, tmp_path):
        body = (
            "with self._lock:\n"
            "            def cb():\n"
            "                self.count += 1\n"
            "            return cb"
        )
        make_project(tmp_path, {
            "src/repro/serving/engine.py": _LOCKED_CLASS.format(bump_body=body),
        })
        assert rules_of(run_checks(tmp_path)) == {"lock-discipline"}

    def test_class_without_lock_ignored(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/serving/stats.py": (
                "class Stats:\n"
                "    def __init__(self):\n"
                "        self.count = 0\n"
                "    def bump(self):\n"
                "        self.count += 1\n"
            ),
        })
        assert run_checks(tmp_path, rules=["lock-discipline"]) == []

    def test_outside_serving_ignored(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/utils/engine.py": _LOCKED_CLASS.format(
                bump_body="self.count += 1"
            ),
        })
        assert run_checks(tmp_path, rules=["lock-discipline"]) == []


class TestKernelParityChecker:
    FILES = {
        "src/repro/sparse/backends.py": (
            "def register_backend(name, fn=None):\n"
            "    pass\n"
            'register_backend("fast", None)\n'
            'register_backend("slow", None)\n'
        ),
        "src/repro/sparse/kernels.py": (
            "def covered_kernel(x):\n"
            "    return x\n"
            "def orphan_kernel(x):\n"
            "    return x\n"
            "def _private(x):\n"
            "    return x\n"
        ),
        "tests/sparse/test_parity.py": (
            'BACKEND = "fast"\n'
            "def test_covered_kernel():\n"
            "    assert covered_kernel\n"
        ),
    }

    def test_uncovered_backend_and_kernel_flagged(self, tmp_path):
        make_project(tmp_path, dict(self.FILES))
        findings = run_checks(tmp_path, rules=["kernel-parity"])
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 2
        assert '"slow"' in messages
        assert "orphan_kernel" in messages
        assert "_private" not in messages

    def test_full_coverage_passes(self, tmp_path):
        files = dict(self.FILES)
        files["tests/sparse/test_more.py"] = (
            'B = "slow"\n'
            "def test_orphan_kernel():\n"
            "    assert orphan_kernel\n"
        )
        make_project(tmp_path, files)
        assert run_checks(tmp_path, rules=["kernel-parity"]) == []

    def test_substring_name_does_not_count(self, tmp_path):
        # "fastest" must not cover backend "fast"-style word matching for
        # kernels: the kernel name needs a word-boundary match.
        files = dict(self.FILES)
        files["tests/sparse/test_parity.py"] = (
            'BACKEND = "fast"\n'
            'OTHER = "slow"\n'
            "def test_x():\n"
            "    assert covered_kernel and orphan_kernelish\n"
        )
        make_project(tmp_path, files)
        findings = run_checks(tmp_path, rules=["kernel-parity"])
        assert len(findings) == 1
        assert "orphan_kernel" in findings[0].message


class TestAnnRecallChecker:
    FILES = {
        "src/repro/ann/ivf.py": (
            "def register_index(kind):\n"
            "    def deco(cls):\n"
            "        return cls\n"
            "    return deco\n"
            '@register_index("ivf")\n'
            "class IVFIndex:\n"
            "    pass\n"
        ),
        "tests/ann/test_ivf.py": (
            'KIND = "ivf"\n'
            "def test_recall():\n"
            "    assert KIND\n"
        ),
    }

    def test_untested_index_kind_flagged(self, tmp_path):
        files = dict(self.FILES)
        files["src/repro/ann/hnsw.py"] = (
            "from repro.ann.ivf import register_index\n"
            '@register_index("hnsw")\n'
            "class HNSWIndex:\n"
            "    pass\n"
        )
        make_project(tmp_path, files)
        findings = run_checks(tmp_path, rules=["ann-recall"])
        assert len(findings) == 1
        assert '"hnsw"' in findings[0].message
        assert findings[0].path == "src/repro/ann/hnsw.py"

    def test_tested_index_kind_passes(self, tmp_path):
        make_project(tmp_path, dict(self.FILES))
        assert run_checks(tmp_path, rules=["ann-recall"]) == []

    def test_tests_outside_ann_suite_do_not_count(self, tmp_path):
        files = dict(self.FILES)
        files["tests/ann/test_ivf.py"] = "def test_nothing():\n    pass\n"
        files["tests/serving/test_other.py"] = 'KIND = "ivf"\n'
        make_project(tmp_path, files)
        findings = run_checks(tmp_path, rules=["ann-recall"])
        assert len(findings) == 1
        assert '"ivf"' in findings[0].message


_MODEL_FILES = {
    "src/repro/models/base.py": (
        "class KGEModel:\n"
        "    pass\n"
        "class SparseKGEModel(KGEModel):\n"
        "    pass\n"
    ),
    "src/repro/models/good.py": (
        "from repro.registry import register_model\n"
        "from repro.models.base import SparseKGEModel\n"
        '@register_model("good")\n'
        "class GoodModel(SparseKGEModel):\n"
        "    pass\n"
    ),
}


class TestRegistryChecker:
    def test_unregistered_concrete_model_flagged(self, tmp_path):
        files = dict(_MODEL_FILES)
        files["src/repro/models/bad.py"] = (
            "from repro.models.base import SparseKGEModel\n"
            "class BadModel(SparseKGEModel):\n"
            "    pass\n"
        )
        make_project(tmp_path, files)
        findings = run_checks(tmp_path, rules=["registry-model"])
        assert len(findings) == 1
        assert "BadModel" in findings[0].message

    def test_registered_and_transitive_pass(self, tmp_path):
        files = dict(_MODEL_FILES)
        files["src/repro/models/derived.py"] = (
            "from repro.registry import register_model\n"
            "from repro.models.good import GoodModel\n"
            '@register_model("derived")\n'
            "class DerivedModel(GoodModel):\n"
            "    pass\n"
        )
        make_project(tmp_path, files)
        assert run_checks(tmp_path, rules=["registry-model"]) == []

    def test_private_and_unrelated_classes_ignored(self, tmp_path):
        files = dict(_MODEL_FILES)
        files["src/repro/models/misc.py"] = (
            "from repro.models.base import SparseKGEModel\n"
            "class _Mixin(SparseKGEModel):\n"
            "    pass\n"
            "class PlainHelper:\n"
            "    pass\n"
        )
        make_project(tmp_path, files)
        assert run_checks(tmp_path, rules=["registry-model"]) == []

    def test_missing_field_in_serializer_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/registry.py": (
                "class ModelSpec:\n"
                "    model: str = ''\n"
                "    dim: int = 0\n"
                "    def to_dict(self):\n"
                "        return {'model': self.model, 'dim': self.dim}\n"
                "    @classmethod\n"
                "    def from_dict(cls, d):\n"
                "        return cls(model=d['model'])\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["registry-roundtrip"])
        assert len(findings) == 1
        assert "ModelSpec.dim" in findings[0].message
        assert "from_dict" in findings[0].message

    def test_dynamic_serializer_passes(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/training/config.py": (
                "from dataclasses import asdict\n"
                "class TrainingConfig:\n"
                "    epochs: int = 1\n"
                "    sanitize: bool = False\n"
                "    def to_dict(self):\n"
                "        return asdict(self)\n"
                "    @classmethod\n"
                "    def from_dict(cls, d):\n"
                "        return cls(**d)\n"
            ),
        })
        assert run_checks(tmp_path, rules=["registry-roundtrip"]) == []


class TestSuppressions:
    BAD = "import numpy as np\nx = np.empty(3)\n"

    def test_line_suppression(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "x = np.empty(3)  # repro: ignore[dtype-ctor]\n"
            ),
        })
        assert run_checks(tmp_path) == []

    def test_line_suppression_is_rule_specific(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "x = np.empty(3)  # repro: ignore[lock-discipline]\n"
            ),
        })
        # The dtype finding survives (wrong rule named), and the ignore
        # comment itself is reported stale.
        assert rules_of(run_checks(tmp_path)) == {
            "dtype-ctor", "suppression-unused",
        }
        assert rules_of(run_checks(tmp_path, rules=["dtype-ctor"])) == {
            "dtype-ctor",
        }

    def test_bare_ignore_suppresses_all_rules(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "x = np.empty(3, dtype=float)  # repro: ignore\n"
            ),
        })
        assert run_checks(tmp_path) == []

    def test_file_suppression(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "# repro: ignore-file[dtype-ctor]\n"
                "import numpy as np\n"
                "x = np.empty(3)\n"
                "y = np.zeros(4)\n"
            ),
        })
        assert run_checks(tmp_path) == []

    def test_suppression_does_not_leak_to_other_lines(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "x = np.empty(3)  # repro: ignore[dtype-ctor]\n"
                "y = np.empty(4)\n"
            ),
        })
        findings = run_checks(tmp_path)
        assert len(findings) == 1
        assert findings[0].line == 3


_BATCHER = """\
import threading

class Batcher:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []
        self._thread = threading.Thread(target=self._run)

    def _run(self):
        while True:
            self._drain()

    def _drain(self):
        {drain_body}

    def _flush_locked(self):
        self._pending = []
"""


class TestLockStateChecker:
    def test_two_deep_helper_chain_reports_full_chain(self, tmp_path):
        # Thread entry -> private helper -> _locked helper, nobody takes
        # the lock: the finding must carry the whole evidence chain.
        make_project(tmp_path, {
            "src/repro/training/batcher.py": _BATCHER.format(
                drain_body="self._flush_locked()"
            ),
        })
        findings = run_checks(tmp_path, rules=["lock-state"])
        assert len(findings) == 1
        assert (
            "Batcher._run() -> Batcher._drain() -> Batcher._flush_locked()"
            in findings[0].message
        )
        assert "self._pending" in findings[0].message
        assert "self._lock" in findings[0].message

    def test_lock_taken_midway_clears_the_chain(self, tmp_path):
        body = "with self._lock:\n            self._flush_locked()"
        make_project(tmp_path, {
            "src/repro/training/batcher.py": _BATCHER.format(drain_body=body),
        })
        assert run_checks(tmp_path, rules=["lock-state"]) == []

    def test_package_wide_unlike_lock_discipline(self, tmp_path):
        # Same race, outside serving/: lexical lock-discipline is scoped to
        # serving/, the interprocedural rule is package-wide.
        make_project(tmp_path, {
            "src/repro/training/batcher.py": _BATCHER.format(
                drain_body="self._flush_locked()"
            ),
        })
        assert run_checks(tmp_path, rules=["lock-discipline"]) == []
        assert len(run_checks(tmp_path, rules=["lock-state"])) == 1

    CROSS = """\
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}

    def evict(self):
        with self._lock:
            self._evict_locked()

    def _evict_locked(self):
        self._data = {}

class Engine:
    def __init__(self):
        self.cache = Cache()

    def reload(self):
        self.cache._evict_locked()
"""

    def test_cross_object_locked_call_without_lock(self, tmp_path):
        # Engine owns no lock at all, but reload() jumps straight into
        # Cache's caller-holds-the-lock helper: that *is* the race.
        # Cache.evict() itself (lock held) must stay clean.
        make_project(tmp_path, {"src/repro/serving/cache.py": self.CROSS})
        findings = run_checks(tmp_path, rules=["lock-state"])
        assert len(findings) == 1
        assert "Engine.reload() -> Cache._evict_locked()" in findings[0].message
        assert "self._data" in findings[0].message

    def test_unresolved_dispatch_makes_no_claim(self, tmp_path):
        # The helper is reached through a callable value; no edge, no claim.
        make_project(tmp_path, {
            "src/repro/training/batcher.py": _BATCHER.format(
                drain_body="fn = self._flush_locked\n        fn()"
            ),
        })
        assert run_checks(tmp_path, rules=["lock-state"]) == []


class TestResourceLifecycleChecker:
    def test_close_on_one_branch_only_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/data/io.py": (
                "import sqlite3\n"
                "\n"
                "def count_rows(path, flag):\n"
                "    conn = sqlite3.connect(path)\n"
                "    if flag:\n"
                "        conn.close()\n"
                "    return 0\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["resource-lifecycle"])
        assert len(findings) == 1
        assert "sqlite connection" in findings[0].message
        assert "count_rows()" in findings[0].message

    def test_interprocedural_acquirer_taints_caller(self, tmp_path):
        # make() returns an open handle, so calling it *is* an acquisition;
        # the leak is charged to the caller that drops it.
        make_project(tmp_path, {
            "src/repro/data/io.py": (
                "import sqlite3\n"
                "\n"
                "def make(path):\n"
                "    return sqlite3.connect(path)\n"
                "\n"
                "def use(path):\n"
                "    conn = make(path)\n"
                "    return conn.execute('select 1')\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["resource-lifecycle"])
        assert len(findings) == 1
        assert "call to make()" in findings[0].message
        assert "use()" in findings[0].message

    def test_with_del_and_escape_all_pass(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/data/io.py": (
                "import sqlite3\n"
                "import numpy as np\n"
                "\n"
                "def read_all(path):\n"
                "    with open(path) as fh:\n"
                "        return fh.read()\n"
                "\n"
                "def head(path):\n"
                "    block = np.load(path, mmap_mode='r')\n"
                "    out = block[:4].copy()\n"
                "    del block\n"
                "    return out\n"
                "\n"
                "def hand_off(path, sink):\n"
                "    conn = sqlite3.connect(path)\n"
                "    sink(conn)\n"
            ),
        })
        assert run_checks(tmp_path, rules=["resource-lifecycle"]) == []

    def test_anonymous_acquisition_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/data/io.py": (
                "def peek(path):\n"
                "    open(path).read()\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["resource-lifecycle"])
        assert len(findings) == 1
        assert "never bound" in findings[0].message

    def test_self_store_without_release_method_flagged(self, tmp_path):
        holder = (
            "import sqlite3\n"
            "\n"
            "class Holder:\n"
            "    def __init__(self, path):\n"
            "        self.conn = sqlite3.connect(path)\n"
        )
        make_project(tmp_path, {"src/repro/data/store.py": holder})
        findings = run_checks(tmp_path, rules=["resource-lifecycle"])
        assert len(findings) == 1
        assert "no close()/__exit__/__del__" in findings[0].message
        make_project(tmp_path, {
            "src/repro/data/store.py": holder + (
                "\n"
                "    def close(self):\n"
                "        self.conn.close()\n"
            ),
        })
        assert run_checks(tmp_path, rules=["resource-lifecycle"]) == []


class TestForkTaintChecker:
    ENTRY = "src/repro/training/multiprocess.py"

    def test_lock_two_hops_down_reported_with_import_chain(self, tmp_path):
        # fork-module-lock stops at direct imports; the taint rule walks
        # the whole closure and names the path that carries the hazard.
        make_project(tmp_path, {
            self.ENTRY: "from repro.training import mid\n",
            "src/repro/training/mid.py": "from repro.training import deep\n",
            "src/repro/training/deep.py": (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
            ),
        })
        assert run_checks(tmp_path, rules=["fork-module-lock"]) == []
        findings = run_checks(tmp_path, rules=["fork-taint"])
        assert len(findings) == 1
        assert "training/mid.py -> training/deep.py" in findings[0].message

    def test_import_time_call_chain_reported(self, tmp_path):
        # CONN = make() at module level runs sqlite3.connect before the
        # fork; the finding carries the call chain, not just the import.
        # (Distance 2: inside direct imports fork-sqlite already covers
        # the whole file, and fork-taint stays silent.)
        make_project(tmp_path, {
            self.ENTRY: "from repro.training import mid\n",
            "src/repro/training/mid.py": "from repro.training import deep\n",
            "src/repro/training/deep.py": (
                "import sqlite3\n"
                "\n"
                "def make():\n"
                "    return sqlite3.connect('state.db')\n"
                "\n"
                "CONN = make()\n"
            ),
        })
        findings = run_checks(tmp_path, rules=["fork-taint"])
        assert len(findings) == 1
        assert "call chain <module> -> make()" in findings[0].message

    def test_post_fork_function_body_not_flagged(self, tmp_path):
        # A connect inside a function that nothing calls at import time
        # runs post-fork in the worker — the documented-safe pattern.
        make_project(tmp_path, {
            self.ENTRY: "from repro.training import deep\n",
            "src/repro/training/deep.py": (
                "import sqlite3\n"
                "\n"
                "def worker(path):\n"
                "    conn = sqlite3.connect(path)\n"
                "    conn.close()\n"
            ),
        })
        assert run_checks(tmp_path, rules=["fork-taint"]) == []


class TestSuppressionUnusedChecker:
    def test_stale_line_ignore_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "x = np.empty(3, dtype=np.float64)  # repro: ignore[dtype-ctor]\n"
            ),
        })
        findings = run_checks(tmp_path)
        assert rules_of(findings) == {"suppression-unused"}
        assert "suppresses nothing" in findings[0].message

    def test_stale_file_ignore_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "# repro: ignore-file[lock-discipline]\n"
                "X = 1\n"
            ),
        })
        assert rules_of(run_checks(tmp_path)) == {"suppression-unused"}

    def test_used_ignore_not_flagged(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "x = np.empty(3)  # repro: ignore[dtype-ctor]\n"
            ),
        })
        assert run_checks(tmp_path) == []

    def test_docstring_example_is_not_a_suppression(self, tmp_path):
        # Only real comment tokens count; prose mentioning the marker
        # must neither suppress nor be reported stale.
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                '"""Suppress with ``# repro: ignore[dtype-ctor]``."""\n'
                "X = 1\n"
            ),
        })
        assert run_checks(tmp_path) == []

    def test_rules_restriction_is_conservative(self, tmp_path):
        # dtype-ctor did not run, so its ignore cannot be judged stale.
        make_project(tmp_path, {
            "src/repro/sparse/mod.py": (
                "import numpy as np\n"
                "x = np.empty(3, dtype=np.float64)  # repro: ignore[dtype-ctor]\n"
            ),
        })
        assert run_checks(tmp_path, rules=["suppression-unused"]) == []
