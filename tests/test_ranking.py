"""The shared ranking helpers (repro.ranking) and their model/serving wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ranking
from repro.models.base import KGEModel


class TestTopK:
    def test_matches_argsort(self, rng):
        scores = rng.standard_normal(200)
        assert np.array_equal(ranking.top_k(scores, 10),
                              np.argsort(scores, kind="stable")[:10])

    def test_k_larger_than_n_returns_full_order(self, rng):
        scores = rng.standard_normal(7)
        assert np.array_equal(ranking.top_k(scores, 50),
                              np.argsort(scores, kind="stable"))

    def test_k_zero(self):
        assert ranking.top_k(np.array([1.0, 2.0]), 0).size == 0

    def test_model_staticmethod_is_the_shared_helper(self):
        assert KGEModel._top_k is ranking.top_k
        assert KGEModel.l2_distance_matrix is ranking.l2_distance_matrix


class TestL2DistanceMatrix:
    def test_matches_bruteforce(self, rng):
        q = rng.standard_normal((5, 8))
        t = rng.standard_normal((30, 8))
        brute = np.sqrt(((q[:, None, :] - t[None, :, :]) ** 2).sum(axis=-1) + 1e-12)
        assert np.allclose(ranking.l2_distance_matrix(q, t), brute, atol=1e-9)


class TestCandidateExpansion:
    def test_matches_direct_scoring(self, small_kg):
        from repro.models.transe import SpTransE

        model = SpTransE(small_kg.n_entities, small_kg.n_relations, 8, rng=2)
        heads = np.array([0, 3])
        relations = np.array([1, 4])
        generic = ranking.candidate_expansion_scores(
            heads, relations, position="tail", n_entities=model.n_entities,
            score_triples=model.score_triples, chunk_size=512)
        closed_form = model.score_all_tails(heads, relations)
        assert np.allclose(generic, closed_form, atol=1e-9)


class TestNearestRows:
    def test_blocked_matches_whole_matrix(self, rng):
        table = rng.standard_normal((50, 6))
        query = table[7]
        dist = ranking.l2_distance_matrix(query[None, :], table)[0]
        dist[7] = np.inf
        expected = ranking.top_k(dist, 5)

        def blocks(block_rows=12):
            for start in range(0, 50, block_rows):
                yield start, table[start:start + block_rows]

        idx, d = ranking.nearest_rows(query, blocks(), 5, exclude=7)
        assert np.array_equal(idx, expected)
        assert np.all(np.diff(d) >= 0)

    def test_exclude_never_returned(self, rng):
        table = rng.standard_normal((20, 4))
        idx, _ = ranking.nearest_rows(table[3], [(0, table)], 20, exclude=3)
        assert 3 not in idx.tolist()

    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
    def test_distance_dtype_follows_table(self, rng, dtype):
        # Regression: the query used to be widened to float64 unconditionally,
        # so fp16/fp32 tables came back with float64 distances in violation of
        # the dtype-promotion invariant (l2_distance_matrix contract).
        table = rng.standard_normal((24, 4)).astype(dtype)
        _, dist = ranking.nearest_rows(table[5], [(0, table[:12]), (12, table[12:])],
                                       4, exclude=5)
        assert dist.dtype == np.dtype(dtype)

    def test_integer_query_still_works(self):
        table = np.arange(12, dtype=np.float64).reshape(6, 2)
        query = np.array([4, 5], dtype=np.int64)  # non-float: cast to float64
        idx, dist = ranking.nearest_rows(query, [(0, table)], 2)
        assert idx[0] == 2 and dist.dtype == np.float64

    def test_empty_blocks(self):
        idx, dist = ranking.nearest_rows(np.zeros(3, dtype=np.float32), [], 4)
        assert idx.size == 0 and dist.size == 0 and dist.dtype == np.float64


class TestBlockedRankingOnModels:
    @pytest.mark.parametrize("dissimilarity", ["L1", "L2"])
    def test_partitioned_blocked_equals_dense(self, small_kg, dissimilarity):
        from repro.models.transe import SpTransE

        dense = SpTransE(small_kg.n_entities, small_kg.n_relations, 8, rng=2,
                         dissimilarity=dissimilarity)
        part = SpTransE(small_kg.n_entities, small_kg.n_relations, 8, rng=2,
                        dissimilarity=dissimilarity, partitions=3)
        heads = np.array([0, 7, 12])
        relations = np.array([1, 0, 3])
        assert np.allclose(dense.score_all_tails(heads, relations),
                           part.score_all_tails(heads, relations), atol=1e-9)
        assert np.allclose(dense.score_all_heads(relations, heads),
                           part.score_all_heads(relations, heads), atol=1e-9)
        part.embeddings.close()


class TestL2DistanceDtype:
    """The tiled kernel must never silently upcast fp16/fp32 inputs to fp64."""

    def test_float32_preserved(self, rng):
        q = rng.standard_normal((4, 8)).astype(np.float32)
        t = rng.standard_normal((20, 8)).astype(np.float32)
        assert ranking.l2_distance_matrix(q, t).dtype == np.float32

    def test_float16_preserved(self, rng):
        q = rng.standard_normal((2, 4)).astype(np.float16)
        t = rng.standard_normal((10, 4)).astype(np.float16)
        assert ranking.l2_distance_matrix(q, t).dtype == np.float16

    def test_mixed_precision_promotes(self, rng):
        q = rng.standard_normal((2, 4))
        t = rng.standard_normal((10, 4)).astype(np.float16)
        assert ranking.l2_distance_matrix(q, t).dtype == np.float64

    def test_integer_inputs_compute_in_float64(self):
        q = np.arange(8).reshape(2, 4)
        t = np.arange(12).reshape(3, 4)
        assert ranking.l2_distance_matrix(q, t).dtype == np.float64

    def test_tiling_is_bit_identical_to_one_tile(self, rng, monkeypatch):
        q = rng.standard_normal((3, 16))
        t = rng.standard_normal((500, 16))
        whole = ranking.l2_distance_matrix(q, t)
        monkeypatch.setattr(ranking, "RANK_TILE_ELEMENTS", 64)
        tiled = ranking.l2_distance_matrix(q, t)
        np.testing.assert_array_equal(tiled, whole)


class TestCandidateExpansionDtype:
    def test_output_follows_score_dtype(self):
        def score_triples(triples, chunk_size=0):
            return np.zeros(triples.shape[0], dtype=np.float32)

        out = ranking.candidate_expansion_scores(
            np.array([0, 1]), np.array([0, 0]), position="tail",
            n_entities=6, score_triples=score_triples, chunk_size=8)
        assert out.dtype == np.float32
        assert out.shape == (2, 6)
