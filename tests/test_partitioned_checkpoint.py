"""Partitioned checkpoints/artifacts: bucket files, manifest, serve hand-off."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.data.synthetic import make_dataset_like
from repro.experiment import DataSpec, EvalSpec, Experiment, ExperimentSpec, load_artifact
from repro.models.transe import SpTransE
from repro.nn.partitioned import PARTITION_MANIFEST
from repro.registry import ModelSpec, build_model, spec_from_model
from repro.serving import InferenceEngine
from repro.training.checkpoint import (
    load_checkpoint,
    load_model,
    model_from_checkpoint,
    save_checkpoint,
)
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer


@pytest.fixture(scope="module")
def kg():
    return make_dataset_like("FB15K", scale=0.003, rng=1)


@pytest.fixture(scope="module")
def trained(kg, tmp_path_factory):
    """A trained partitioned model checkpointed into an artifact-shaped dir."""
    directory = tmp_path_factory.mktemp("part-ckpt")
    model = SpTransE(kg.n_entities, kg.n_relations, 12, rng=3, partitions=3)
    config = TrainingConfig(epochs=2, batch_size=256, sparse_grads=True,
                            learning_rate=0.01, seed=0)
    trainer = Trainer(model, kg, config)
    trainer.train()
    path = save_checkpoint(str(directory / "checkpoint.npz"), model,
                           trainer.optimizer, epoch=2)
    return model, path, directory


class TestModelSpecPartitions:
    def test_spec_roundtrip(self):
        spec = ModelSpec(model="transe", formulation="sparse", n_entities=50,
                         n_relations=4, embedding_dim=8, partitions=4)
        assert ModelSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["partitions"] == 4

    def test_partitions_one_normalises_to_none(self):
        spec = ModelSpec(model="transe", formulation="sparse", n_entities=50,
                         n_relations=4, embedding_dim=8, partitions=1)
        assert spec.partitions is None
        assert "partitions" not in spec.to_dict()

    def test_build_and_recover(self):
        spec = ModelSpec(model="transe", formulation="sparse", n_entities=50,
                         n_relations=4, embedding_dim=8, partitions=4)
        model = build_model(spec, rng=0)
        assert model.n_partitions == 4
        recovered = spec_from_model(model)
        assert recovered.partitions == 4
        model.embeddings.close()

    def test_unsupported_model_rejects_partitions(self):
        spec = ModelSpec(model="distmult", formulation="sparse", n_entities=50,
                         n_relations=4, embedding_dim=8, partitions=4)
        with pytest.raises(ValueError, match="partition"):
            build_model(spec)


class TestPartitionedCheckpointLayout:
    def test_npz_excludes_buckets_and_manifest_recorded(self, trained):
        model, path, directory = trained
        with np.load(path, allow_pickle=False) as data:
            bucket_keys = [k for k in data.files if "bucket" in k]
            assert not bucket_keys
            assert "model::embeddings.relations" in data.files
        checkpoint = load_checkpoint(path)
        assert checkpoint.partition_manifest is not None
        assert checkpoint.partition_manifest["partitions"] == 3

    def test_bucket_files_and_manifest_written(self, trained):
        _, _, directory = trained
        weights = directory / "weights"
        names = sorted(os.listdir(weights))
        assert [f"entities.bucket{k}.npy" for k in range(3)] == \
            [n for n in names if n.startswith("entities.") and n.endswith(".npy")
             and ".state." not in n]
        manifest = json.loads((weights / PARTITION_MANIFEST).read_text())
        assert manifest["partitions"] == 3
        assert sum(b["rows"] for b in manifest["buckets"]) == manifest["n_entities"]

    def test_reload_reproduces_scores(self, trained, kg):
        model, path, _ = trained
        reloaded = model_from_checkpoint(load_checkpoint(path))
        triples = kg.split.train[:64]
        assert np.array_equal(model.score_triples(triples),
                              reloaded.score_triples(triples))
        assert reloaded.n_partitions == 3
        assert reloaded.embeddings.read_only

    def test_load_model_mmap_path(self, trained, kg):
        """mmap=True routes through the weight files + lazy bucket attach."""
        model, path, _ = trained
        lazy = load_model(path, mmap=True)
        assert lazy.embeddings.stats()["faults"] == 0  # nothing faulted yet
        triples = kg.split.train[:16]
        assert np.array_equal(model.score_triples(triples),
                              lazy.score_triples(triples))
        assert lazy.embeddings.stats()["faults"] > 0


class TestPartitionedExperimentArtifact:
    @pytest.fixture(scope="class")
    def artifact(self, kg, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("part-artifact"))
        data = DataSpec(dataset="FB15K", scale=0.003, seed=1,
                        test_fraction=0.05, storage="sqlite")
        spec = ExperimentSpec(
            name="part-artifact", data=data,
            model=ModelSpec(model="transe", formulation="sparse",
                            n_entities=kg.n_entities, n_relations=kg.n_relations,
                            embedding_dim=12, sparse_grads=True, partitions=4),
            training=TrainingConfig(epochs=2, batch_size=256, sparse_grads=True),
            eval=EvalSpec(protocols=()),
        )
        result = Experiment(spec, artifact_dir=directory, dataset=kg).run()
        return directory, result

    def test_spec_json_roundtrips_partitions(self, artifact):
        directory, _ = artifact
        spec = ExperimentSpec.from_file(os.path.join(directory, "spec.json"))
        assert spec.model.partitions == 4

    def test_engine_serves_partitioned_artifact_lazily(self, artifact):
        directory, result = artifact
        engine = InferenceEngine.from_artifact(directory)
        assert engine.model.n_partitions == 4
        answer = engine.top_k_tails(1, 0, k=5)
        assert len(answer.entities) == 5
        direct = InferenceEngine(result.model).top_k_tails(1, 0, k=5)
        assert answer.entities == direct.entities
        # the serving table is LRU-bounded, not densified
        assert engine.model.embeddings.stats()["max_resident"] == 2
        nearest = engine.nearest_entities(2, k=3)
        assert len(nearest.entities) == 3

    def test_artifact_reload_via_load_artifact(self, artifact, kg):
        directory, result = artifact
        reloaded = load_artifact(directory).load_model()
        triples = kg.split.train[:32]
        assert np.array_equal(result.model.score_triples(triples),
                              reloaded.score_triples(triples))

    def test_resume_of_partitioned_run_is_rejected(self, artifact):
        directory, result = artifact
        spec = ExperimentSpec.from_file(os.path.join(directory, "spec.json"))
        with pytest.raises(ValueError, match="partitioned"):
            Experiment(spec.replace(name="resumed"), resume=directory).run()


class TestLegacyFallback:
    def test_unpartitioned_artifact_still_loads(self, kg, tmp_path):
        """No partition.json → the dense single-bucket legacy layout."""
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        Trainer(model, kg, TrainingConfig(epochs=1, batch_size=256)).train()
        path = save_checkpoint(str(tmp_path / "dense.npz"), model)
        from repro.training.checkpoint import save_weight_files

        save_weight_files(str(tmp_path), model)
        assert not os.path.exists(tmp_path / "weights" / PARTITION_MANIFEST)
        lazy = load_model(path, mmap=True)
        triples = kg.split.train[:16]
        assert np.array_equal(model.score_triples(triples),
                              lazy.score_triples(triples))


class TestMultiprocessPartitioned:
    def test_two_workers_match_single_worker(self, kg):
        """Bucket-granular gradient exchange keeps replicas in lockstep."""
        def run(workers):
            data = DataSpec(dataset="FB15K", scale=0.003, seed=1,
                            test_fraction=0.05, storage="sqlite")
            spec = ExperimentSpec(
                name=f"mp-{workers}", data=data,
                model=ModelSpec(model="transe", formulation="sparse",
                                n_entities=kg.n_entities,
                                n_relations=kg.n_relations, embedding_dim=8,
                                sparse_grads=True, partitions=3),
                training=TrainingConfig(epochs=1, batch_size=256,
                                        sparse_grads=True, num_workers=workers),
                eval=EvalSpec(protocols=()),
            )
            return Experiment(spec, dataset=kg).run()

        single = run(1)
        double = run(2)  # the trainer's digest sync check runs internally
        assert np.allclose(single.model.entity_embedding_matrix(),
                           double.model.entity_embedding_matrix(), atol=1e-12)
