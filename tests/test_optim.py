"""Tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.parameter import Parameter
from repro.optim import (
    SGD,
    Adagrad,
    Adam,
    ExponentialLR,
    Optimizer,
    ReduceLROnPlateau,
    StepLR,
)


def quadratic_loss(param: Parameter) -> Tensor:
    """Simple convex objective ||p - 3||^2."""
    return ((param - 3.0) ** 2).sum()


def run_steps(optimizer: Optimizer, param: Parameter, steps: int) -> float:
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
    return float(quadratic_loss(param).item())


class TestOptimizerBase:
    def test_empty_parameter_list(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_parameter_rejected(self):
        with pytest.raises(TypeError):
            SGD([Tensor(np.zeros(3), requires_grad=True)], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(3))], lr=0.0)

    def test_zero_grad_clears(self):
        p = Parameter(np.zeros(3))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.zero_grad()
        assert p.grad is None

    def test_step_skips_parameters_without_grad(self):
        p, q = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        opt = SGD([p, q], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(q.data, 0.0)
        assert opt.step_count == 1

    def test_set_lr_validation(self):
        opt = SGD([Parameter(np.zeros(2))], lr=0.1)
        opt.set_lr(0.2)
        assert opt.lr == 0.2
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)


class TestSGD:
    def test_single_step_formula(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()    # grad = 2(p-3) = -4
        opt.step()
        np.testing.assert_allclose(p.data, [1.4])

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        assert run_steps(SGD([p], lr=0.1), p, 100) < 1e-6

    def test_momentum_accelerates(self):
        p1, p2 = Parameter(np.zeros(4)), Parameter(np.zeros(4))
        plain = run_steps(SGD([p1], lr=0.01), p1, 50)
        heavy = run_steps(SGD([p2], lr=0.01, momentum=0.9), p2, 50)
        assert heavy < plain

    def test_weight_decay_shrinks_solution(self):
        p = Parameter(np.zeros(4))
        run_steps(SGD([p], lr=0.1, weight_decay=1.0), p, 200)
        assert np.all(p.data < 3.0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.1, weight_decay=-1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        assert run_steps(Adam([p], lr=0.1), p, 300) < 1e-4

    def test_first_step_magnitude_is_lr(self):
        # With bias correction the first Adam step is approximately lr * sign(grad).
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.05)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(p.data, [0.05], rtol=1e-5)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=0.1, betas=(1.0, 0.9))
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=0.1, eps=0.0)

    def test_state_is_per_parameter(self):
        p, q = Parameter(np.zeros(2)), Parameter(np.ones(3))
        opt = Adam([p, q], lr=0.1)
        (quadratic_loss(p) + quadratic_loss(q)).backward()
        opt.step()
        assert len(opt.state) == 2


class TestAdagrad:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        assert run_steps(Adagrad([p], lr=1.0), p, 300) < 1e-3

    def test_accumulator_monotone(self):
        p = Parameter(np.zeros(2))
        opt = Adagrad([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        first = opt.state[id(p)]["sum_sq"].copy()
        opt.zero_grad()
        quadratic_loss(p).backward()
        opt.step()
        assert np.all(opt.state[id(p)]["sum_sq"] >= first)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Adagrad([Parameter(np.zeros(2))], lr=0.1, eps=0.0)
        with pytest.raises(ValueError):
            Adagrad([Parameter(np.zeros(2))], lr=0.1, initial_accumulator=-1.0)


class TestSchedulers:
    def test_step_lr(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_plateau_reduces_after_patience(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        for loss in [1.0, 0.9, 0.9, 0.9]:
            sched.step(loss)
        assert opt.lr == pytest.approx(0.5)

    def test_plateau_requires_metric(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1.0)
        sched = ReduceLROnPlateau(opt)
        with pytest.raises(ValueError):
            sched.step()

    def test_plateau_respects_min_lr(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1e-3)
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=0, min_lr=1e-4)
        for _ in range(10):
            sched.step(1.0)
        assert opt.lr >= 1e-4

    def test_scheduler_validation(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            ExponentialLR(opt, gamma=1.5)
        with pytest.raises(ValueError):
            ReduceLROnPlateau(opt, mode="sideways")
        with pytest.raises(TypeError):
            StepLR("not an optimizer", step_size=1)

    def test_history_recorded(self):
        opt = SGD([Parameter(np.zeros(2))], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.9)
        sched.step()
        assert len(sched.history) == 2
