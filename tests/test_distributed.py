"""Tests for the simulated data-parallel trainer (Appendix F substitute)."""

import numpy as np
import pytest

from repro.data import generate_synthetic_kg
from repro.models import SpTransE
from repro.training import CommunicationModel, DataParallelTrainer, TrainingConfig
from repro.training.distributed import ScalingResult, scaling_sweep


@pytest.fixture
def kg():
    return generate_synthetic_kg(60, 6, 480, rng=0)


@pytest.fixture
def config():
    return TrainingConfig(epochs=2, batch_size=240, learning_rate=0.01, seed=0)


class TestCommunicationModel:
    def test_single_worker_is_free(self):
        assert CommunicationModel().allreduce_time(1, 10**9) == 0.0

    def test_cost_increases_with_volume(self):
        comm = CommunicationModel()
        assert comm.allreduce_time(8, 10**9) > comm.allreduce_time(8, 10**6)

    def test_cost_increases_with_workers_for_fixed_volume(self):
        comm = CommunicationModel(latency_s=1e-3)
        assert comm.allreduce_time(64, 10**6) > comm.allreduce_time(4, 10**6)

    def test_ring_volume_term_saturates(self):
        comm = CommunicationModel(latency_s=0.0)
        t4 = comm.allreduce_time(4, 10**9)
        t64 = comm.allreduce_time(64, 10**9)
        # 2(W-1)/W approaches 2, so the bandwidth term grows by < 35% from 4 to 64.
        assert t64 < 1.35 * t4


class TestDataParallelTrainer:
    def test_validation(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        with pytest.raises(ValueError):
            DataParallelTrainer(model, kg, 0, config)

    def test_loss_decreases(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 16, rng=0)
        result = DataParallelTrainer(model, kg, 4, config.replace(epochs=5)).train()
        assert result.losses[-1] < result.losses[0]

    def test_result_fields(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = DataParallelTrainer(model, kg, 4, config).train()
        assert isinstance(result, ScalingResult)
        assert result.n_workers == 4
        assert result.measured_compute_time > 0
        assert result.estimated_communication_time > 0
        assert result.estimated_total_time == pytest.approx(
            result.measured_compute_time + result.estimated_communication_time
        )
        as_dict = result.to_dict()
        assert as_dict["n_workers"] == 4.0

    def test_equivalent_to_single_worker_large_batch(self, kg):
        """Gradient averaging across shards must reproduce single-worker training
        on the full batch (the DDP guarantee)."""
        cfg = TrainingConfig(epochs=1, batch_size=480, learning_rate=0.05,
                             optimizer="sgd", seed=0, shuffle=False, normalize_every=0)
        single = SpTransE(kg.n_entities, kg.n_relations, 8, rng=3)
        multi = SpTransE(kg.n_entities, kg.n_relations, 8, rng=3)

        from repro.training import Trainer

        Trainer(single, kg, cfg).train()
        DataParallelTrainer(multi, kg, 4, cfg).train()
        np.testing.assert_allclose(
            single.embeddings.weight.data, multi.embeddings.weight.data,
            rtol=1e-6, atol=1e-9,
        )

    def test_gradient_bytes_accounts_every_parameter(self, kg, config):
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        trainer = DataParallelTrainer(model, kg, 2, config)
        assert trainer.gradient_nbytes == sum(p.nbytes for p in model.parameters())

    def test_more_workers_than_batch_rows_still_works(self, kg):
        cfg = TrainingConfig(epochs=1, batch_size=3, seed=0)
        model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
        result = DataParallelTrainer(model, kg.subsample(6, rng=0), 8, cfg).train()
        assert np.isfinite(result.losses[0])


class TestScalingSweep:
    def test_sweep_produces_one_result_per_worker_count(self, kg, config):
        results = scaling_sweep(
            lambda: SpTransE(kg.n_entities, kg.n_relations, 8, rng=0),
            kg, [1, 2, 4], config=config.replace(epochs=1),
        )
        assert [r.n_workers for r in results] == [1, 2, 4]

    def test_compute_time_shrinks_with_workers(self, kg):
        """The Appendix-F shape: per-step compute falls as batches shard."""
        cfg = TrainingConfig(epochs=1, batch_size=480, learning_rate=0.01, seed=0)
        results = scaling_sweep(
            lambda: SpTransE(kg.n_entities, kg.n_relations, 32, rng=0),
            kg, [1, 8], config=cfg,
        )
        assert results[1].measured_compute_time < results[0].measured_compute_time

    def test_each_run_starts_from_a_fresh_model(self, kg, config):
        """The factory must be called once per worker count, so no run sees
        another run's trained parameters."""
        built = []

        def factory():
            model = SpTransE(kg.n_entities, kg.n_relations, 8, rng=0)
            built.append(model)
            return model

        scaling_sweep(factory, kg, [1, 2, 4], config=config.replace(epochs=1))
        assert len(built) == 3
        assert len({id(m) for m in built}) == 3

    def test_identical_losses_across_worker_counts(self, kg):
        """Gradient averaging reproduces large-batch training, so every
        worker count follows the same loss trajectory (DDP's guarantee)."""
        cfg = TrainingConfig(epochs=2, batch_size=480, learning_rate=0.01,
                             seed=0, shuffle=False)
        results = scaling_sweep(
            lambda: SpTransE(kg.n_entities, kg.n_relations, 8, rng=0),
            kg, [1, 4], config=cfg,
        )
        np.testing.assert_allclose(results[0].losses, results[1].losses, rtol=1e-4)

    def test_communication_estimate_grows_with_workers(self, kg, config):
        comm = CommunicationModel(latency_s=1e-3)
        results = scaling_sweep(
            lambda: SpTransE(kg.n_entities, kg.n_relations, 8, rng=0),
            kg, [2, 16], config=config.replace(epochs=1), comm_model=comm,
        )
        assert (results[1].estimated_communication_time
                > results[0].estimated_communication_time)

    def test_result_to_dict_round_trips_through_json(self, kg, config):
        import json

        [result] = scaling_sweep(
            lambda: SpTransE(kg.n_entities, kg.n_relations, 8, rng=0),
            kg, [2], config=config.replace(epochs=1),
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["n_workers"] == 2.0
        assert payload["total_time_s"] >= payload["communication_time_s"]
